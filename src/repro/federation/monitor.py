"""The federated monitor: one queryable system over N machine monitors.

A :class:`FederatedMonitor` sits on top of a
:class:`~repro.federation.registry.MachineRegistry` and turns N
independent :class:`~repro.service.monitor.FleetMonitor` instances into a
single ingest/alert/query surface:

1. :meth:`ingest_and_alert` fans one chunk per machine out over a
   persistent :class:`~repro.util.parallel.ShardExecutor` whose resident
   objects are the *machine monitors themselves* — the same machinery the
   per-machine monitors use one level down for their shards.  Each machine
   runs its own sharded ingest + alert evaluation; only snapshots and
   alerts travel back.
2. Per-machine products merge into federated equivalents:
   :class:`FederatedSnapshot` (per-machine and fleet-wide ``max_drift``),
   :class:`FederatedSpectrum` (``total_power_by_shard`` keyed
   ``machine/shard``) and fleet z-score maps.
3. Alerts route through a shared
   :class:`~repro.federation.routing.AlertRouter`: machine-stamped,
   federation-level cooldown/dedup, global + per-machine sinks, and
   fleet-wide rules (:class:`~repro.federation.routing.FleetWideRule`)
   that no single machine can express.

Backends compose freely with one caveat: a ``process`` federation backend
hosts its machines in daemon worker processes, which the OS forbids from
spawning children — machines shipped to a process federation must
therefore use ``serial`` or ``thread`` shard executors themselves.
Every backend combination produces bit-for-bit identical products
(asserted by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..align.zscore_map import NodeZScores
from ..hwlog.events import HardwareLog
from ..obs import (
    OBS,
    worker_drain_metrics,
    worker_drain_trace,
    worker_enable_metrics,
)
from ..obs.flight import FLIGHT
from ..obs.health import HealthScore, aggregate, percentile, score_shard
from ..util.growbuf import RingBuffer
from ..service.alerts import Alert
from ..service.monitor import FleetMonitor, FleetSnapshot, FleetSpectrum
from ..util.parallel import ShardExecutor, make_shard_executor
from ..util.timer import now
from .chunklog import ChunkLog
from .registry import MachineRegistry
from .routing import AlertRouter, FederatedAlertContext

__all__ = ["FederatedMonitor", "FederatedSnapshot", "FederatedSpectrum"]


@dataclass
class FederatedSnapshot:
    """Merged diagnostics for one federated ingest round."""

    step: int
    n_machines: int
    machine_snapshots: dict[str, FleetSnapshot]
    #: Per-machine health plus a ``"federation"`` aggregate.  Derived from
    #: wall-clock round latency, so it is comparison-exempt: federated
    #: snapshot equality (restart and parity tests) must stay a statement
    #: about the model state only.
    health: dict[str, "HealthScore"] | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def total_modes(self) -> int:
        return sum(snap.total_modes for snap in self.machine_snapshots.values())

    @property
    def drift_by_machine(self) -> dict[str, float]:
        """Largest per-shard drift per machine this round."""
        return {
            machine: snap.max_drift
            for machine, snap in self.machine_snapshots.items()
        }

    @property
    def max_drift(self) -> float:
        """Largest drift across the whole federation this round."""
        return max(self.drift_by_machine.values(), default=0.0)

    @property
    def degraded_shards(self) -> dict[str, tuple[str, ...]]:
        """Quarantined shards per machine (machines with none are omitted).

        A supervised machine (see
        :class:`~repro.resilience.ResiliencePolicy`) keeps answering
        rounds after quarantining a failing shard; this surfaces that
        degradation at the federation level so operators see which
        machines are running on reduced coverage.
        """
        return {
            machine: snap.degraded_shards
            for machine, snap in self.machine_snapshots.items()
            if snap.degraded_shards
        }


@dataclass
class FederatedSpectrum:
    """Fleet-level power/frequency table merged across machines and shards.

    The same scalar-column merge as
    :class:`~repro.service.monitor.FleetSpectrum`, with one more origin
    column: every mode carries both the shard and the machine it came
    from, and shard-keyed aggregates use ``machine/shard`` keys so shards
    with the same local name on different machines stay distinct.
    """

    frequencies: np.ndarray
    power: np.ndarray
    levels: np.ndarray
    shard_ids: np.ndarray  # object array, one local shard id per mode
    machine_ids: np.ndarray  # object array, one machine name per mode

    @property
    def n_modes(self) -> int:
        return int(self.frequencies.size)

    def dominant_frequency(self) -> float:
        """Frequency (Hz) of the highest-power mode federation-wide."""
        if self.n_modes == 0:
            return float("nan")
        return float(self.frequencies[int(np.argmax(self.power))])

    def _grouped_power(self, keys: np.ndarray) -> dict[str, float]:
        # Masked .sum() (not a running accumulator): the same pairwise
        # summation FleetSpectrum.total_power_by_shard uses, so federated
        # aggregates are bit-for-bit the standalone per-machine ones.
        out: dict[str, float] = {}
        as_str = keys.astype(str)
        for key in np.unique(as_str):
            out[str(key)] = float(self.power[as_str == key].sum())
        return out

    def total_power_by_shard(self) -> dict[str, float]:
        """Summed mode power keyed ``machine/shard``."""
        keys = np.array(
            [f"{m}/{s}" for m, s in zip(self.machine_ids, self.shard_ids)],
            dtype=object,
        )
        return self._grouped_power(keys)

    def total_power_by_machine(self) -> dict[str, float]:
        """Summed mode power per machine (coarse site fingerprint)."""
        return self._grouped_power(np.asarray(self.machine_ids, dtype=object))


# --------------------------------------------------------------------------- #
# Machine commands: top-level functions so the process backend can pickle
# them by reference; called as fn(resident_monitor, *args) in the worker.
# --------------------------------------------------------------------------- #
def _machine_ingest(monitor: FleetMonitor, values: np.ndarray) -> FleetSnapshot:
    return monitor.ingest(values)


def _machine_ingest_and_alert(
    monitor: FleetMonitor, values: np.ndarray, hwlog: HardwareLog | None, window: int
) -> tuple[FleetSnapshot, list[Alert]]:
    return monitor.ingest_and_alert(values, hwlog=hwlog, window=window)


def _machine_node_zscores(
    monitor: FleetMonitor, time_range, reducer: str
) -> NodeZScores | None:
    if time_range is not None:
        # Machines advance at their own pace (staggered rounds, joiners):
        # clamp the fleet-level window to this machine's timeline and skip
        # machines with nothing in it.
        lo, hi = time_range
        hi = min(int(hi), monitor.step)
        lo = max(0, min(int(lo), hi))
        if hi <= lo:
            return None
        time_range = (lo, hi)
    return monitor.node_zscores(time_range=time_range, reducer=reducer)


def _machine_fleet_spectrum(monitor: FleetMonitor) -> FleetSpectrum:
    return monitor.fleet_spectrum()


def _machine_step(monitor: FleetMonitor) -> int:
    return monitor.step


def _machine_add_sensors(
    monitor: FleetMonitor, sensor_names, node_of_row, history, policy, machine
):
    return monitor.add_sensors(
        sensor_names, node_of_row, history=history, policy=policy, machine=machine
    )


def _machine_refresh_deep(monitor: FleetMonitor) -> int:
    return monitor.refresh_deep_levels()


def _return_machine(monitor: FleetMonitor) -> FleetMonitor:
    return monitor


class FederatedMonitor:
    """One ingest/alert/query surface over every registered machine.

    Parameters
    ----------
    registry:
        A :class:`MachineRegistry` (or a plain ``name -> FleetMonitor``
        mapping, wrapped into one).  Membership may change between rounds:
        the fan-out pool is rebuilt transparently on the next call after a
        register/deregister (process-resident machine state is pulled back
        first, so nothing is lost).
    router:
        The shared :class:`AlertRouter` (default: one with no sinks and a
        default :class:`FleetWideRule`).  Pass ``router=None`` explicitly
        configured instances to attach sinks and fleet rules.
    executor:
        Machine fan-out backend: ``None``/``"serial"`` (default),
        ``"thread"``, ``"process"``, or a fresh
        :class:`~repro.util.parallel.ShardExecutor`.  Started lazily,
        held open across rounds; close with :meth:`close` or the context
        manager.
    max_workers:
        Worker count for thread/process fan-out (default: one per
        machine, capped at the CPU count).
    chunk_log:
        Optional shared :class:`~repro.federation.chunklog.ChunkLog`.
        When set, every fanned-out chunk is recorded, enabling
        :meth:`catch_up` — a machine restored from an older checkpoint
        (or registered mid-run) replays the logged tail before rejoining
        alert evaluation.
    """

    def __init__(
        self,
        registry: MachineRegistry | Mapping[str, FleetMonitor],
        *,
        router: AlertRouter | None = None,
        executor: str | ShardExecutor | None = None,
        max_workers: int | None = None,
        chunk_log: ChunkLog | None = None,
    ) -> None:
        if not isinstance(registry, MachineRegistry):
            registry = MachineRegistry(registry)
        if len(registry) == 0:
            raise ValueError("FederatedMonitor needs at least one registered machine")
        self.registry = registry
        self.chunk_log = chunk_log
        self.router = router if router is not None else AlertRouter()
        self._executor_spec: str | ShardExecutor | None = executor
        self._max_workers = max_workers
        self._executor: ShardExecutor | None = None
        self._executor_version: int | None = None
        #: What each pool worker is resident for: name -> the exact object
        #: last shipped to (or landed from) the pool.  Landing a pulled
        #: copy is only legal while the registry still holds that object —
        #: a machine re-registered under the same name must never be
        #: clobbered by the replaced machine's resident state.
        self._shipped: dict[str, FleetMonitor] = {}
        self._step = max(
            (monitor.step for monitor in registry.monitors().values()), default=0
        )
        #: Always-on per-machine round-latency samples feeding the health
        #: score (bounded; never part of pickled/compared state semantics).
        self._round_latency: dict[str, RingBuffer] = {}
        self._last_health: dict[str, HealthScore] | None = None
        #: Lazily created background writer for mode="async" federated
        #: saves; flush_checkpoints() is the durability/error barrier.
        self._checkpoint_writer = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_machines(self) -> int:
        return len(self.registry)

    @property
    def machine_names(self) -> tuple[str, ...]:
        return self.registry.names

    @property
    def step(self) -> int:
        """Federated timeline position (max machine step seen so far)."""
        return self._step

    @property
    def executor(self) -> ShardExecutor | None:
        """The live fan-out executor (None until first use / after close)."""
        return self._executor

    @property
    def _resident_remote(self) -> bool:
        return self._executor is not None and self._executor.backend == "process"

    @property
    def machines(self) -> dict[str, FleetMonitor]:
        """Name -> monitor.  Serial/thread fan-out returns the live
        objects; process fan-out pulls fresh copies from the workers and
        lands them back in the registry (so checkpoints and direct access
        observe current state)."""
        if self._resident_remote:
            for name, monitor in self._executor.pull().items():
                self._land_pulled(name, monitor)
        return self.registry.monitors()

    def machine(self, name: str) -> FleetMonitor:
        """One machine's monitor (see :attr:`machines` for semantics)."""
        if name not in self.registry:
            raise KeyError(f"unknown machine {name!r}")
        if self._executor is not None and self._ensure_executor().backend == "process":
            # One pickle round trip for this machine only, not a full pull.
            monitor = self._executor.call(name, _return_machine)
            self._land_pulled(name, monitor)
            return monitor
        return self.registry.get(name)

    def _land_pulled(self, name: str, monitor: FleetMonitor) -> None:
        """Install a worker's resident copy back into the registry — but
        only while the registry still holds the object the pool was
        started with (deregistered or replaced machines keep their own,
        newer state)."""
        if name in self.registry and self.registry.get(name) is self._shipped.get(name):
            self.registry.install(name, monitor)
            self._shipped[name] = monitor

    # ------------------------------------------------------------------ #
    # Executor lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> ShardExecutor:
        """Start the fan-out pool lazily; rebuild it on membership change."""
        if (
            self._executor is not None
            and self._executor_version != self.registry.version
        ):
            # Machines were (de)registered since the pool started: land
            # resident state back, tear the pool down and fall through to
            # a fresh start with the current membership.
            self._land_and_drop_executor()
        if self._executor is None:
            self._executor = make_shard_executor(
                self._executor_spec, max_workers=self._max_workers
            )
            shipped = self.registry.monitors()
            self._executor.start(shipped)
            self._executor_version = self.registry.version
            self._shipped = shipped
            if OBS.enabled:
                # Mirror the parent provider into process workers so the
                # machines' core/service metrics accumulate remotely (see
                # FleetMonitor._ensure_executor for the single-machine
                # version of the same round trip).
                for name in self._executor.remote_worker_shards():
                    self._executor.call(name, worker_enable_metrics)
                # Calibrate each worker's monotonic clock against the
                # coordinator's so merged trace timelines line up.
                self._executor.calibrate_clocks()
        return self._executor

    def collect_metrics(self):
        """Merge process-worker metric registries into the session provider
        and return its registry (drain-with-reset: repeat calls never
        double-count).  Invoked automatically when the pool lands."""
        if (
            OBS.enabled
            and self._executor is not None
            and not self._executor.closed
        ):
            for name in self._executor.remote_worker_shards():
                OBS.metrics.merge(self._executor.call(name, worker_drain_metrics))
                events = self._executor.call(name, worker_drain_trace)
                if events:
                    # Worker spans re-emit through the parent tracer so one
                    # JSON-lines file carries the whole federation round.
                    OBS.tracer.ingest_events(events)
        return OBS.metrics

    def _land_and_drop_executor(self) -> None:
        try:
            if OBS.enabled:
                self.collect_metrics()
            if self._resident_remote and not self._executor.closed:
                for name, monitor in self._executor.pull().items():
                    self._land_pulled(name, monitor)
        finally:
            self._executor.close()
            self._executor = None
            self._shipped = {}

    def _ensure_checkpoint_writer(self):
        """The federation's background checkpoint writer (created lazily)."""
        if self._checkpoint_writer is None or self._checkpoint_writer.closed:
            from ..io.delta import AsyncCheckpointWriter

            self._checkpoint_writer = AsyncCheckpointWriter(
                name="federated-checkpoint-writer"
            )
        return self._checkpoint_writer

    def flush_checkpoints(self) -> None:
        """Barrier: wait for pending asynchronous federated checkpoint
        commits, re-raising the first deferred write error.  No-op when no
        async save ever ran."""
        if self._checkpoint_writer is not None:
            self._checkpoint_writer.flush()

    def close(self) -> None:
        """Shut the fan-out pool down, landing machine state in-process.

        Machine monitors themselves stay open (the registry owns them);
        close those via ``registry.close()``.  Also drains the background
        checkpoint writer, surfacing any deferred write error after the
        pool teardown ran.  Idempotent.
        """
        writer, self._checkpoint_writer = self._checkpoint_writer, None
        try:
            if writer is not None:
                writer.close(flush=True)
        finally:
            if self._executor is not None:
                self._land_and_drop_executor()
                if isinstance(self._executor_spec, ShardExecutor):
                    # The instance was consumed by the closed pool; fall
                    # back to its backend name for any later restart.
                    self._executor_spec = self._executor_spec.backend

    def __enter__(self) -> "FederatedMonitor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def _validated_chunks(
        self, chunks: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Validate a round's chunks; rounds may be *partial*.

        Every chunk must belong to a registered machine, but machines may
        skip rounds (staggered sites, a machine catching up after a
        restore) — absent machines simply do not advance this round.
        """
        names = set(self.registry.names)
        unknown = sorted(set(chunks) - names)
        if unknown:
            raise ValueError(f"chunks reference unknown machines {unknown}")
        if not chunks:
            raise ValueError("a federated round needs at least one machine's chunk")
        # Registry order, not caller order: deterministic fan-out/merge.
        return {name: chunks[name] for name in self.registry.names if name in chunks}

    def _finish_round(
        self, snapshots: dict[str, FleetSnapshot]
    ) -> FederatedSnapshot:
        self._step = max(
            self._step, max(snap.step for snap in snapshots.values())
        )
        snapshot = FederatedSnapshot(
            step=self._step,
            n_machines=len(snapshots),
            machine_snapshots=snapshots,
        )
        snapshot.health = self._compute_health(snapshots)
        if OBS.enabled:
            # Deterministic degradation accounting (membership only):
            # quarantined shard count across the round's machines.
            OBS.gauge(
                "federation.degraded_shards",
                float(sum(len(v) for v in snapshot.degraded_shards.values())),
            )
            for entity, score in snapshot.health.items():
                if entity == "federation":
                    OBS.gauge("federation.health.score", score.score)
                else:
                    OBS.gauge(
                        "federation.health.score", score.score, machine=entity
                    )
        return snapshot

    def _note_round_latency(self, name: str, seconds: float) -> None:
        """Record one machine's slice of a round (always on: feeds health
        and the flight recorder even when the obs provider is off)."""
        ring = self._round_latency.get(name)
        if ring is None:
            ring = self._round_latency[name] = RingBuffer(64)
        ring.append(float(seconds))
        FLIGHT.record_delta(
            "federation.machine_round.seconds",
            seconds,
            scope=f"machine:{name}",
            machine=name,
        )

    def _compute_health(
        self, snapshots: dict[str, FleetSnapshot]
    ) -> dict[str, HealthScore]:
        """Per-machine health plus a ``"federation"`` aggregate.

        A machine that scored itself this round (its
        :class:`FleetSnapshot` carries a ``health["fleet"]`` aggregate —
        quarantine roster, shard latency vs. its own resilience budget,
        deep-level staleness) contributes that score directly; machines
        whose snapshots predate health scoring are scored here from the
        federation-side round latency alone (no budget → latency-neutral).
        """
        per_machine: dict[str, HealthScore] = {}
        for name, snap in snapshots.items():
            fleet_score = None
            if getattr(snap, "health", None):
                fleet_score = snap.health.get("fleet")
            if fleet_score is not None:
                per_machine[name] = fleet_score
                continue
            ring = self._round_latency.get(name)
            samples = ring.items() if ring is not None else []
            per_machine[name] = score_shard(
                p95_seconds=percentile(samples, 0.95) if samples else None,
                budget_seconds=None,
            )
        health = dict(per_machine)
        health["federation"] = aggregate(per_machine.values())
        self._last_health = health
        return health

    @property
    def health(self) -> dict[str, HealthScore] | None:
        """Most recent per-machine (plus ``"federation"``) health scores,
        or ``None`` before the first round."""
        return self._last_health

    def _record_round(
        self,
        chunks: Mapping[str, np.ndarray],
        snapshots: Mapping[str, FleetSnapshot],
    ) -> None:
        if self.chunk_log is None:
            return
        for name, chunk in chunks.items():
            chunk = np.asarray(chunk)
            self.chunk_log.record(
                name, snapshots[name].step - chunk.shape[1], chunk
            )

    def _record_round_metrics(self, chunks: Mapping[str, np.ndarray]) -> None:
        """Deterministic round accounting (membership only, no timings)."""
        OBS.inc("federation.rounds")
        if len(chunks) < len(self.registry.names):
            OBS.inc("federation.partial_rounds")
        OBS.gauge("federation.round_machines", float(len(chunks)))

    def ingest(self, chunks: Mapping[str, np.ndarray]) -> FederatedSnapshot:
        """Feed one ``(P_m, T)`` block per participating machine; no alerts.

        Machines fan out over the persistent executor and ingest
        concurrently (each one sharding further internally); per-machine
        :class:`FleetSnapshot` products merge into one
        :class:`FederatedSnapshot`.  Rounds may be partial: machines
        absent from ``chunks`` skip the round and keep their position.
        """
        chunks = self._validated_chunks(chunks)
        executor = self._ensure_executor()
        t_round = now()
        with OBS.span("federation.round", n_machines=len(chunks)):
            snapshots = executor.map(
                _machine_ingest,
                {name: (chunk,) for name, chunk in chunks.items()},
            )
        elapsed = now() - t_round
        for name in chunks:
            # map() gathers in one barrier, so each machine's sample is the
            # round time — an upper bound consistent with the overlapped
            # per-machine samples ingest_and_alert records.
            self._note_round_latency(name, elapsed)
        self._record_round(chunks, snapshots)
        if OBS.enabled:
            self._record_round_metrics(chunks)
        return self._finish_round({name: snapshots[name] for name in chunks})

    def ingest_and_alert(
        self,
        chunks: Mapping[str, np.ndarray],
        *,
        hwlogs: Mapping[str, HardwareLog] | None = None,
        window: int = 200,
    ) -> tuple[FederatedSnapshot, list[Alert]]:
        """Ingest one chunk per machine and route the round's alerts.

        Each machine runs its own overlapped
        :meth:`~repro.service.monitor.FleetMonitor.ingest_and_alert`
        (per-machine rules, per-machine cooldown) in the fan-out pool;
        the per-machine alert streams then pass through the shared
        :class:`AlertRouter` — machine-stamped, federation-deduped,
        delivered to global/per-machine sinks — and the fleet-wide rules
        run against the merged picture.  Rounds may be partial (machines
        may skip); fleet rules still see the full registered membership,
        so skipping a round neither drops a machine's drift memory nor
        counts it as drifting.  Returns the federated snapshot and the
        routed alerts, in delivery order.
        """
        chunks = self._validated_chunks(chunks)
        hwlogs = dict(hwlogs) if hwlogs else {}
        unknown_logs = sorted(set(hwlogs) - set(self.registry.names))
        if unknown_logs:
            raise ValueError(f"hwlogs reference unknown machines {unknown_logs}")
        executor = self._ensure_executor()
        with OBS.span("federation.round", n_machines=len(chunks)):
            t_round = now()
            tasks = [
                (
                    name,
                    executor.submit(
                        name,
                        _machine_ingest_and_alert,
                        chunk,
                        hwlogs.get(name),
                        window,
                    ),
                )
                for name, chunk in chunks.items()
            ]
            results = {}
            for name, task in tasks:
                results[name] = task.result()
                # Latency of machine ``name``'s slice of the round,
                # measured from dispatch: the fan-out overlaps, so each
                # sample is "time until this machine's result landed".
                landed = now() - t_round
                self._note_round_latency(name, landed)
                if OBS.enabled:
                    OBS.observe(
                        "federation.machine_round.seconds",
                        landed,
                        machine=name,
                    )
        snapshots = {name: results[name][0] for name in results}
        self._record_round(chunks, snapshots)
        if OBS.enabled:
            self._record_round_metrics(chunks)
        snapshot = self._finish_round(snapshots)
        context = FederatedAlertContext(
            step=self._step,
            updates={
                name: {
                    shard_id: shard_snap.update
                    for shard_id, shard_snap in fleet_snap.shard_snapshots.items()
                }
                for name, fleet_snap in snapshot.machine_snapshots.items()
            },
            window=window,
            machines=self.registry.names,
        )
        routed = self.router.route(
            {name: results[name][1] for name in results}, context
        )
        for alert in routed:
            FLIGHT.record_alert(alert)
        return snapshot, routed

    # ------------------------------------------------------------------ #
    # Elastic topology: new sensors / shards inside a member machine
    # ------------------------------------------------------------------ #
    def add_sensors(
        self,
        name: str,
        sensor_names,
        node_of_row,
        *,
        history: np.ndarray | None = None,
        policy=None,
        machine=None,
    ):
        """Stream new sensors into one member machine's live monitor.

        Ships the :meth:`FleetMonitor.add_sensors` command to the
        *resident* monitor (worker pools keep running on every backend);
        existing shards absorb their rows, new shards join the machine's
        executor pool, and the machine's next chunks must carry its grown
        row count.  Returns the machine's
        :class:`~repro.service.monitor.TopologyUpdate`.
        """
        if name not in self.registry:
            raise KeyError(f"unknown machine {name!r}")
        if self._executor is None:
            return _machine_add_sensors(
                self.registry.get(name),
                sensor_names,
                node_of_row,
                history,
                policy,
                machine,
            )
        return self._ensure_executor().call(
            name,
            _machine_add_sensors,
            sensor_names,
            node_of_row,
            history,
            policy,
            machine,
        )

    # ------------------------------------------------------------------ #
    # Elastic membership: mid-run registration and stale-restore catch-up
    # ------------------------------------------------------------------ #
    def register_machine(
        self, name: str, monitor: FleetMonitor, *, catch_up: bool = True
    ) -> int:
        """Register a machine mid-run; the fan-out pool rebuilds lazily.

        With a chunk log configured the newcomer is caught up on any
        chunks already logged under its name (normally none for a truly
        new machine).  Returns the number of chunks replayed.
        """
        self.registry.register(name, monitor)
        if catch_up and self.chunk_log is not None:
            return self.catch_up(name)
        return 0

    def deregister_machine(self, name: str) -> FleetMonitor:
        """Deregister a machine and drop its chunk-log history."""
        monitor = self.registry.deregister(name)
        if self.chunk_log is not None:
            self.chunk_log.forget(name)
        return monitor

    def reattach_machine(
        self, name: str, monitor: FleetMonitor, *, catch_up: bool = True
    ) -> int:
        """Swap in a restored monitor for ``name`` and catch it up.

        This is the stale-restore flow: a machine that crashed is rebuilt
        from its newest (possibly older) retained checkpoint, reattached
        here, and — before it rejoins alert evaluation — replays every
        chunk the shared log recorded past its restored position, so its
        next round ingests from the live stream edge.  The registry swap
        bumps the membership version, so the fan-out pool rebuilds with
        the new object on next use.  Returns the number of chunks
        replayed.
        """
        if name in self.registry:
            self.registry.deregister(name)
        self.registry.register(name, monitor)
        if catch_up and self.chunk_log is not None:
            return self.catch_up(name)
        return 0

    def catch_up(self, name: str) -> int:
        """Replay logged chunks into a lagging machine (no alert evaluation).

        Replays straight into the registry's monitor in-process — the
        fan-out pool rebuilds from the registry on next use (the
        membership version changed when the machine was (re)attached), so
        resident workers never hold the stale object.  Alert engines are
        deliberately not consulted during replay: the federation already
        routed (and deduplicated) this history when it happened live.
        """
        if self.chunk_log is None:
            raise RuntimeError("catch_up requires a chunk_log on the federation")
        if self._executor is not None:
            # Workers may hold newer resident state (process backend) and
            # must not keep serving the object being replaced: land state
            # back and let the pool rebuild from the registry on next use.
            self._land_and_drop_executor()
        monitor = self.registry.get(name)
        replayed = 0
        for entry in self.chunk_log.entries_since(name, monitor.step):
            values = entry.values
            if entry.start < monitor.step:
                # Partially covered entry (restore mid-chunk): replay only
                # the unseen tail.
                values = values[:, monitor.step - entry.start :]
            if values.shape[1] == 0:
                continue
            monitor.ingest(values)
            replayed += 1
        if OBS.enabled and replayed:
            OBS.inc(
                "federation.catchup.replayed_chunks", replayed, machine=name
            )
        return replayed

    def refresh_deep_levels(self) -> int:
        """Force every machine's queued deep-level work through.

        Fans :meth:`FleetMonitor.refresh_deep_levels` out over the
        federation (no-op per machine under ``deep_levels="inline"``);
        returns the total number of tree nodes added fleet-wide.  Call at
        a quiescent point — after the last round, before final federated
        products — when machines ran with ``deep_levels="deferred"``.
        """
        return sum(self._query_all(_machine_refresh_deep).values())

    # ------------------------------------------------------------------ #
    # Federated analysis products
    # ------------------------------------------------------------------ #
    def _query_all(self, fn, *args) -> dict:
        """Fan a machine command out; answer in-process before first use.

        Once a pool exists it stays authoritative (``_ensure_executor``
        transparently rebuilds it after membership changes, landing
        process-resident state first).
        """
        if self._executor is None:
            return {
                name: fn(monitor, *args)
                for name, monitor in self.registry.monitors().items()
            }
        return self._ensure_executor().broadcast(fn, *args)

    def node_zscores(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> dict[str, NodeZScores]:
        """Per-machine fleet-merged node z-scores, keyed by machine name.

        Node indices are machine-local (two machines both have a node 0),
        so scores stay keyed per machine; :meth:`zscore_map` flattens them
        under ``machine/node`` keys when one global map is wanted.
        Machines whose own timeline has no data in ``time_range``
        (staggered joiners lagging the fleet edge) are omitted.
        """
        results = self._query_all(_machine_node_zscores, time_range, reducer)
        return {name: scores for name, scores in results.items() if scores is not None}

    def rack_values(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> dict[str, dict[int, float]]:
        """``machine -> {node: zscore}`` — one rack view per machine."""
        return {
            name: scores.as_dict()
            for name, scores in self.node_zscores(
                time_range=time_range, reducer=reducer
            ).items()
        }

    def zscore_map(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> dict[str, float]:
        """One flat federated z-score map keyed ``machine/node``."""
        out: dict[str, float] = {}
        for name, values in self.rack_values(
            time_range=time_range, reducer=reducer
        ).items():
            for node, z in values.items():
                out[f"{name}/{node}"] = z
        return out

    def fleet_spectrum(self) -> FederatedSpectrum:
        """Merged power/frequency table across every machine and shard."""
        per_machine = self._query_all(_machine_fleet_spectrum)
        freqs, power, levels, shard_ids, machine_ids = [], [], [], [], []
        for name in self.registry.names:
            spectrum = per_machine[name]
            freqs.append(spectrum.frequencies)
            power.append(spectrum.power)
            levels.append(spectrum.levels)
            shard_ids.append(spectrum.shard_ids)
            machine_ids.append(np.full(spectrum.n_modes, name, dtype=object))
        return FederatedSpectrum(
            frequencies=np.concatenate(freqs) if freqs else np.zeros(0),
            power=np.concatenate(power) if power else np.zeros(0),
            levels=np.concatenate(levels) if levels else np.zeros(0, dtype=int),
            shard_ids=(
                np.concatenate(shard_ids) if shard_ids else np.zeros(0, dtype=object)
            ),
            machine_ids=(
                np.concatenate(machine_ids)
                if machine_ids
                else np.zeros(0, dtype=object)
            ),
        )

    def machine_steps(self) -> dict[str, int]:
        """Per-machine stream positions (authoritative, via the pool)."""
        return self._query_all(_machine_step)

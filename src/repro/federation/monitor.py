"""The federated monitor: one queryable system over N machine monitors.

A :class:`FederatedMonitor` sits on top of a
:class:`~repro.federation.registry.MachineRegistry` and turns N
independent :class:`~repro.service.monitor.FleetMonitor` instances into a
single ingest/alert/query surface:

1. :meth:`ingest_and_alert` fans one chunk per machine out over a
   persistent :class:`~repro.util.parallel.ShardExecutor` whose resident
   objects are the *machine monitors themselves* — the same machinery the
   per-machine monitors use one level down for their shards.  Each machine
   runs its own sharded ingest + alert evaluation; only snapshots and
   alerts travel back.
2. Per-machine products merge into federated equivalents:
   :class:`FederatedSnapshot` (per-machine and fleet-wide ``max_drift``),
   :class:`FederatedSpectrum` (``total_power_by_shard`` keyed
   ``machine/shard``) and fleet z-score maps.
3. Alerts route through a shared
   :class:`~repro.federation.routing.AlertRouter`: machine-stamped,
   federation-level cooldown/dedup, global + per-machine sinks, and
   fleet-wide rules (:class:`~repro.federation.routing.FleetWideRule`)
   that no single machine can express.

Backends compose freely with one caveat: a ``process`` federation backend
hosts its machines in daemon worker processes, which the OS forbids from
spawning children — machines shipped to a process federation must
therefore use ``serial`` or ``thread`` shard executors themselves.
Every backend combination produces bit-for-bit identical products
(asserted by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..align.zscore_map import NodeZScores
from ..hwlog.events import HardwareLog
from ..service.alerts import Alert
from ..service.monitor import FleetMonitor, FleetSnapshot, FleetSpectrum
from ..util.parallel import ShardExecutor, make_shard_executor
from .registry import MachineRegistry
from .routing import AlertRouter, FederatedAlertContext

__all__ = ["FederatedMonitor", "FederatedSnapshot", "FederatedSpectrum"]


@dataclass
class FederatedSnapshot:
    """Merged diagnostics for one federated ingest round."""

    step: int
    n_machines: int
    machine_snapshots: dict[str, FleetSnapshot]

    @property
    def total_modes(self) -> int:
        return sum(snap.total_modes for snap in self.machine_snapshots.values())

    @property
    def drift_by_machine(self) -> dict[str, float]:
        """Largest per-shard drift per machine this round."""
        return {
            machine: snap.max_drift
            for machine, snap in self.machine_snapshots.items()
        }

    @property
    def max_drift(self) -> float:
        """Largest drift across the whole federation this round."""
        return max(self.drift_by_machine.values(), default=0.0)


@dataclass
class FederatedSpectrum:
    """Fleet-level power/frequency table merged across machines and shards.

    The same scalar-column merge as
    :class:`~repro.service.monitor.FleetSpectrum`, with one more origin
    column: every mode carries both the shard and the machine it came
    from, and shard-keyed aggregates use ``machine/shard`` keys so shards
    with the same local name on different machines stay distinct.
    """

    frequencies: np.ndarray
    power: np.ndarray
    levels: np.ndarray
    shard_ids: np.ndarray  # object array, one local shard id per mode
    machine_ids: np.ndarray  # object array, one machine name per mode

    @property
    def n_modes(self) -> int:
        return int(self.frequencies.size)

    def dominant_frequency(self) -> float:
        """Frequency (Hz) of the highest-power mode federation-wide."""
        if self.n_modes == 0:
            return float("nan")
        return float(self.frequencies[int(np.argmax(self.power))])

    def _grouped_power(self, keys: np.ndarray) -> dict[str, float]:
        # Masked .sum() (not a running accumulator): the same pairwise
        # summation FleetSpectrum.total_power_by_shard uses, so federated
        # aggregates are bit-for-bit the standalone per-machine ones.
        out: dict[str, float] = {}
        as_str = keys.astype(str)
        for key in np.unique(as_str):
            out[str(key)] = float(self.power[as_str == key].sum())
        return out

    def total_power_by_shard(self) -> dict[str, float]:
        """Summed mode power keyed ``machine/shard``."""
        keys = np.array(
            [f"{m}/{s}" for m, s in zip(self.machine_ids, self.shard_ids)],
            dtype=object,
        )
        return self._grouped_power(keys)

    def total_power_by_machine(self) -> dict[str, float]:
        """Summed mode power per machine (coarse site fingerprint)."""
        return self._grouped_power(np.asarray(self.machine_ids, dtype=object))


# --------------------------------------------------------------------------- #
# Machine commands: top-level functions so the process backend can pickle
# them by reference; called as fn(resident_monitor, *args) in the worker.
# --------------------------------------------------------------------------- #
def _machine_ingest(monitor: FleetMonitor, values: np.ndarray) -> FleetSnapshot:
    return monitor.ingest(values)


def _machine_ingest_and_alert(
    monitor: FleetMonitor, values: np.ndarray, hwlog: HardwareLog | None, window: int
) -> tuple[FleetSnapshot, list[Alert]]:
    return monitor.ingest_and_alert(values, hwlog=hwlog, window=window)


def _machine_node_zscores(
    monitor: FleetMonitor, time_range, reducer: str
) -> NodeZScores:
    return monitor.node_zscores(time_range=time_range, reducer=reducer)


def _machine_fleet_spectrum(monitor: FleetMonitor) -> FleetSpectrum:
    return monitor.fleet_spectrum()


def _machine_step(monitor: FleetMonitor) -> int:
    return monitor.step


def _return_machine(monitor: FleetMonitor) -> FleetMonitor:
    return monitor


class FederatedMonitor:
    """One ingest/alert/query surface over every registered machine.

    Parameters
    ----------
    registry:
        A :class:`MachineRegistry` (or a plain ``name -> FleetMonitor``
        mapping, wrapped into one).  Membership may change between rounds:
        the fan-out pool is rebuilt transparently on the next call after a
        register/deregister (process-resident machine state is pulled back
        first, so nothing is lost).
    router:
        The shared :class:`AlertRouter` (default: one with no sinks and a
        default :class:`FleetWideRule`).  Pass ``router=None`` explicitly
        configured instances to attach sinks and fleet rules.
    executor:
        Machine fan-out backend: ``None``/``"serial"`` (default),
        ``"thread"``, ``"process"``, or a fresh
        :class:`~repro.util.parallel.ShardExecutor`.  Started lazily,
        held open across rounds; close with :meth:`close` or the context
        manager.
    max_workers:
        Worker count for thread/process fan-out (default: one per
        machine, capped at the CPU count).
    """

    def __init__(
        self,
        registry: MachineRegistry | Mapping[str, FleetMonitor],
        *,
        router: AlertRouter | None = None,
        executor: str | ShardExecutor | None = None,
        max_workers: int | None = None,
    ) -> None:
        if not isinstance(registry, MachineRegistry):
            registry = MachineRegistry(registry)
        if len(registry) == 0:
            raise ValueError("FederatedMonitor needs at least one registered machine")
        self.registry = registry
        self.router = router if router is not None else AlertRouter()
        self._executor_spec: str | ShardExecutor | None = executor
        self._max_workers = max_workers
        self._executor: ShardExecutor | None = None
        self._executor_version: int | None = None
        #: What each pool worker is resident for: name -> the exact object
        #: last shipped to (or landed from) the pool.  Landing a pulled
        #: copy is only legal while the registry still holds that object —
        #: a machine re-registered under the same name must never be
        #: clobbered by the replaced machine's resident state.
        self._shipped: dict[str, FleetMonitor] = {}
        self._step = max(
            (monitor.step for monitor in registry.monitors().values()), default=0
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_machines(self) -> int:
        return len(self.registry)

    @property
    def machine_names(self) -> tuple[str, ...]:
        return self.registry.names

    @property
    def step(self) -> int:
        """Federated timeline position (max machine step seen so far)."""
        return self._step

    @property
    def executor(self) -> ShardExecutor | None:
        """The live fan-out executor (None until first use / after close)."""
        return self._executor

    @property
    def _resident_remote(self) -> bool:
        return self._executor is not None and self._executor.backend == "process"

    @property
    def machines(self) -> dict[str, FleetMonitor]:
        """Name -> monitor.  Serial/thread fan-out returns the live
        objects; process fan-out pulls fresh copies from the workers and
        lands them back in the registry (so checkpoints and direct access
        observe current state)."""
        if self._resident_remote:
            for name, monitor in self._executor.pull().items():
                self._land_pulled(name, monitor)
        return self.registry.monitors()

    def machine(self, name: str) -> FleetMonitor:
        """One machine's monitor (see :attr:`machines` for semantics)."""
        if name not in self.registry:
            raise KeyError(f"unknown machine {name!r}")
        if self._executor is not None and self._ensure_executor().backend == "process":
            # One pickle round trip for this machine only, not a full pull.
            monitor = self._executor.call(name, _return_machine)
            self._land_pulled(name, monitor)
            return monitor
        return self.registry.get(name)

    def _land_pulled(self, name: str, monitor: FleetMonitor) -> None:
        """Install a worker's resident copy back into the registry — but
        only while the registry still holds the object the pool was
        started with (deregistered or replaced machines keep their own,
        newer state)."""
        if name in self.registry and self.registry.get(name) is self._shipped.get(name):
            self.registry.install(name, monitor)
            self._shipped[name] = monitor

    # ------------------------------------------------------------------ #
    # Executor lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> ShardExecutor:
        """Start the fan-out pool lazily; rebuild it on membership change."""
        if (
            self._executor is not None
            and self._executor_version != self.registry.version
        ):
            # Machines were (de)registered since the pool started: land
            # resident state back, tear the pool down and fall through to
            # a fresh start with the current membership.
            self._land_and_drop_executor()
        if self._executor is None:
            self._executor = make_shard_executor(
                self._executor_spec, max_workers=self._max_workers
            )
            shipped = self.registry.monitors()
            self._executor.start(shipped)
            self._executor_version = self.registry.version
            self._shipped = shipped
        return self._executor

    def _land_and_drop_executor(self) -> None:
        try:
            if self._resident_remote and not self._executor.closed:
                for name, monitor in self._executor.pull().items():
                    self._land_pulled(name, monitor)
        finally:
            self._executor.close()
            self._executor = None
            self._shipped = {}

    def close(self) -> None:
        """Shut the fan-out pool down, landing machine state in-process.

        Machine monitors themselves stay open (the registry owns them);
        close those via ``registry.close()``.  Idempotent.
        """
        if self._executor is None:
            return
        self._land_and_drop_executor()
        if isinstance(self._executor_spec, ShardExecutor):
            # The instance was consumed by the closed pool; fall back to
            # its backend name for any later restart.
            self._executor_spec = self._executor_spec.backend

    def __enter__(self) -> "FederatedMonitor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def _validated_chunks(
        self, chunks: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        names = set(self.registry.names)
        given = set(chunks)
        if given != names:
            missing = sorted(names - given)
            unknown = sorted(given - names)
            problems = []
            if missing:
                problems.append(f"missing chunks for {missing}")
            if unknown:
                problems.append(f"unknown machines {unknown}")
            raise ValueError(
                "federated ingest needs exactly one chunk per registered "
                "machine: " + "; ".join(problems)
            )
        # Registry order, not caller order: deterministic fan-out/merge.
        return {name: chunks[name] for name in self.registry.names}

    def _finish_round(
        self, snapshots: dict[str, FleetSnapshot]
    ) -> FederatedSnapshot:
        self._step = max(
            self._step, max(snap.step for snap in snapshots.values())
        )
        return FederatedSnapshot(
            step=self._step,
            n_machines=len(snapshots),
            machine_snapshots=snapshots,
        )

    def ingest(self, chunks: Mapping[str, np.ndarray]) -> FederatedSnapshot:
        """Feed one ``(P_m, T)`` block per machine; no alert evaluation.

        Machines fan out over the persistent executor and ingest
        concurrently (each one sharding further internally); per-machine
        :class:`FleetSnapshot` products merge into one
        :class:`FederatedSnapshot`.
        """
        chunks = self._validated_chunks(chunks)
        executor = self._ensure_executor()
        snapshots = executor.map(
            _machine_ingest, {name: (chunk,) for name, chunk in chunks.items()}
        )
        return self._finish_round({name: snapshots[name] for name in chunks})

    def ingest_and_alert(
        self,
        chunks: Mapping[str, np.ndarray],
        *,
        hwlogs: Mapping[str, HardwareLog] | None = None,
        window: int = 200,
    ) -> tuple[FederatedSnapshot, list[Alert]]:
        """Ingest one chunk per machine and route the round's alerts.

        Each machine runs its own overlapped
        :meth:`~repro.service.monitor.FleetMonitor.ingest_and_alert`
        (per-machine rules, per-machine cooldown) in the fan-out pool;
        the per-machine alert streams then pass through the shared
        :class:`AlertRouter` — machine-stamped, federation-deduped,
        delivered to global/per-machine sinks — and the fleet-wide rules
        run against the merged drift picture.  Returns the federated
        snapshot and the routed alerts, in delivery order.
        """
        chunks = self._validated_chunks(chunks)
        hwlogs = dict(hwlogs) if hwlogs else {}
        unknown_logs = sorted(set(hwlogs) - set(self.registry.names))
        if unknown_logs:
            raise ValueError(f"hwlogs reference unknown machines {unknown_logs}")
        executor = self._ensure_executor()
        tasks = [
            (
                name,
                executor.submit(
                    name,
                    _machine_ingest_and_alert,
                    chunk,
                    hwlogs.get(name),
                    window,
                ),
            )
            for name, chunk in chunks.items()
        ]
        results = {name: task.result() for name, task in tasks}
        snapshot = self._finish_round({name: results[name][0] for name in results})
        context = FederatedAlertContext(
            step=self._step,
            updates={
                name: {
                    shard_id: shard_snap.update
                    for shard_id, shard_snap in fleet_snap.shard_snapshots.items()
                }
                for name, fleet_snap in snapshot.machine_snapshots.items()
            },
            window=window,
        )
        routed = self.router.route(
            {name: results[name][1] for name in results}, context
        )
        return snapshot, routed

    # ------------------------------------------------------------------ #
    # Federated analysis products
    # ------------------------------------------------------------------ #
    def _query_all(self, fn, *args) -> dict:
        """Fan a machine command out; answer in-process before first use.

        Once a pool exists it stays authoritative (``_ensure_executor``
        transparently rebuilds it after membership changes, landing
        process-resident state first).
        """
        if self._executor is None:
            return {
                name: fn(monitor, *args)
                for name, monitor in self.registry.monitors().items()
            }
        return self._ensure_executor().broadcast(fn, *args)

    def node_zscores(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> dict[str, NodeZScores]:
        """Per-machine fleet-merged node z-scores, keyed by machine name.

        Node indices are machine-local (two machines both have a node 0),
        so scores stay keyed per machine; :meth:`zscore_map` flattens them
        under ``machine/node`` keys when one global map is wanted.
        """
        return self._query_all(_machine_node_zscores, time_range, reducer)

    def rack_values(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> dict[str, dict[int, float]]:
        """``machine -> {node: zscore}`` — one rack view per machine."""
        return {
            name: scores.as_dict()
            for name, scores in self.node_zscores(
                time_range=time_range, reducer=reducer
            ).items()
        }

    def zscore_map(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> dict[str, float]:
        """One flat federated z-score map keyed ``machine/node``."""
        out: dict[str, float] = {}
        for name, values in self.rack_values(
            time_range=time_range, reducer=reducer
        ).items():
            for node, z in values.items():
                out[f"{name}/{node}"] = z
        return out

    def fleet_spectrum(self) -> FederatedSpectrum:
        """Merged power/frequency table across every machine and shard."""
        per_machine = self._query_all(_machine_fleet_spectrum)
        freqs, power, levels, shard_ids, machine_ids = [], [], [], [], []
        for name in self.registry.names:
            spectrum = per_machine[name]
            freqs.append(spectrum.frequencies)
            power.append(spectrum.power)
            levels.append(spectrum.levels)
            shard_ids.append(spectrum.shard_ids)
            machine_ids.append(np.full(spectrum.n_modes, name, dtype=object))
        return FederatedSpectrum(
            frequencies=np.concatenate(freqs) if freqs else np.zeros(0),
            power=np.concatenate(power) if power else np.zeros(0),
            levels=np.concatenate(levels) if levels else np.zeros(0, dtype=int),
            shard_ids=(
                np.concatenate(shard_ids) if shard_ids else np.zeros(0, dtype=object)
            ),
            machine_ids=(
                np.concatenate(machine_ids)
                if machine_ids
                else np.zeros(0, dtype=object)
            ),
        )

    def machine_steps(self) -> dict[str, int]:
        """Per-machine stream positions (authoritative, via the pool)."""
        return self._query_all(_machine_step)

"""Case study 2 (Sec. V-B): whole machine, hot vs cool windows, spectrum overlay.

Reproduces the analysis flow behind Figs. 6 and 7:

* all nodes of the machine over 16 hours (two 8-hour windows);
* initial fit on the first window, streaming updates in 1,000-step chunks
  over the second (the paper: 21.12 s initial, ~20.45 s updates, 7 levels,
  Frobenius error 3423.85 at full scale);
* per-window baselines: 45-60 degC for the hot first window, 30-45 degC for
  the cooler second one, matching the paper's choice of scoring each window
  relative to the machine state at that time;
* two rack views (Fig. 6(a)/(b)) with persistent hardware-error nodes
  outlined, and an overlaid hot-vs-cool spectrum (Fig. 7).

Run with ``python examples/case_study_2.py [scale]`` (default scale 0.05).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.core import BaselineModel, BaselineSpec, MrDMDConfig, MrDMDSpectrum
from repro.align import map_zscores_to_nodes
from repro.hwlog import HardwareEventType
from repro.pipeline import OnlineAnalysisPipeline, PipelineConfig, build_case_study_2
from repro.viz import RackLayout, RackView, SpectrumPlot

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main(scale: float = 0.05) -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    scenario = build_case_study_2(scale=scale, n_timesteps=1_920)
    stream = scenario.stream
    half = scenario.initial_steps
    print(f"case study 2 @ scale {scale}: {scenario.machine.n_nodes} nodes, "
          f"{stream.n_timesteps} snapshots ({stream.n_timesteps * stream.dt / 3600:.1f} h)")

    config = PipelineConfig(
        mrdmd=MrDMDConfig(max_levels=7),
        baseline_range=scenario.window_baselines[0],
        keep_data=True,
    )
    pipeline = OnlineAnalysisPipeline.from_stream(stream, config)

    t0 = time.perf_counter()
    pipeline.ingest(scenario.initial_block())
    initial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    chunk = 480
    remaining = scenario.streaming_block()
    for lo in range(0, remaining.shape[1], chunk):
        pipeline.ingest(remaining[:, lo : lo + chunk])
    update_seconds = time.perf_counter() - t0
    error = pipeline.model.reconstruction_error()
    print(f"initial fit {initial_seconds:.2f}s, streaming updates {update_seconds:.2f}s, "
          f"Frobenius error {error:.2f} (paper at full scale: 21.12s / ~20.45s / 3423.85)")

    # Per-window scoring with per-window baselines (Fig. 6a/b).
    reconstruction = pipeline.reconstruction()
    layout = RackLayout.from_machine(scenario.machine)
    node_names = scenario.machine.node_names()
    persistent_error_nodes = _persistent_error_nodes(scenario)
    spectra = []
    for idx, (window, baseline_range) in enumerate(
        zip([(0, half), (half, stream.n_timesteps)], scenario.window_baselines)
    ):
        window_data = reconstruction[:, window[0] : window[1]]
        model = BaselineModel.from_data(window_data, BaselineSpec(value_range=baseline_range))
        scores = model.score(window_data)
        node_scores = map_zscores_to_nodes(scores, stream.node_indices)
        label = "hot window (first 8 h)" if idx == 0 else "cool window (second 8 h)"
        view = RackView(layout, title=f"Case study 2: {label}, baseline {baseline_range} degC")
        path = os.path.join(OUTPUT_DIR, f"case2_fig6{'ab'[idx]}_rack_zscores.svg")
        view.save_svg(
            path,
            node_scores.as_dict(),
            secondary_outlined_nodes=[int(n) for n in persistent_error_nodes],
            node_names=node_names,
        )
        frac_hot = float(np.mean(np.abs(node_scores.zscores) > 2.0))
        print(f"window {idx + 1}: wrote {path}; fraction of nodes |z|>2: {frac_hot:.2f}")

        # Per-window spectrum from a dedicated batch decomposition of the window.
        window_pipeline = OnlineAnalysisPipeline(
            stream.dt,
            PipelineConfig(mrdmd=MrDMDConfig(max_levels=6), baseline_range=baseline_range),
            node_of_row=stream.node_indices,
        )
        window_pipeline.ingest(stream.values[:, window[0] : window[1]])
        spectra.append(window_pipeline.spectrum(label=label))

    fig7_path = os.path.join(OUTPUT_DIR, "case2_fig7_spectrum_overlay.svg")
    SpectrumPlot().save_svg(fig7_path, spectra, title="Case study 2: hot vs cool spectra")
    hot_centroid = spectra[0].centroid_frequency()
    cool_centroid = spectra[1].centroid_frequency()
    print(f"wrote {fig7_path}; power-weighted centroid frequency hot={hot_centroid:.3e} Hz "
          f"vs cool={cool_centroid:.3e} Hz")

    report = pipeline.alignment_report(hwlog=scenario.hwlog, joblog=scenario.joblog)
    print(report.render())


def _persistent_error_nodes(scenario) -> np.ndarray:
    """Nodes reporting hardware errors in both 8-hour windows (Fig. 6 outlines)."""
    half = scenario.initial_steps
    first = {e.node for e in scenario.hwlog.events_in_window(0, half)}
    second = {e.node for e in scenario.hwlog.events_in_window(half, scenario.n_timesteps)}
    return np.asarray(sorted(first & second), dtype=int)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)

"""Table I analogue: initial-fit vs partial-fit completion times.

The paper's Table I reports, for the SC (environment) log and the GPU
metrics dataset, the time to fit an initial block of N=1,000 series with
T in {2,000, 5,000, 10,000, 16,000} time points and the time to then add
1,000 more time points incrementally.  The headline shape: initial-fit time
grows with T while partial-fit time stays roughly flat.

This example reproduces those rows at a configurable (smaller) scale and
prints them in the same layout.  Absolute seconds differ from the paper
(different hardware, reduced sizes); the monotone growth of the initial fit
and the flatness of the partial fit are the reproduced claims.

Run with ``python examples/table1_report.py [n_series]``.
"""

from __future__ import annotations

import sys
import time

from repro.core import IncrementalMrDMD, MrDMDConfig
from repro.telemetry import TelemetryGenerator, polaris_machine, theta_machine
from repro.util import TimingTable


def run_dataset(name: str, generator: TelemetryGenerator, dt: float, n_series: int,
                time_points: list[int], levels: int, chunk: int) -> TimingTable:
    table = TimingTable(columns=["Dataset", "N", "T", "Initial Fit (s)", "Partial Fit (s)"])
    for total in time_points:
        data = generator.generate_matrix(n_series, total + chunk)
        config = MrDMDConfig(max_levels=levels)
        model = IncrementalMrDMD(dt=dt, config=config)
        t0 = time.perf_counter()
        model.fit(data[:, :total])
        initial_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        model.partial_fit(data[:, total : total + chunk])
        partial_seconds = time.perf_counter() - t0
        table.add_row(name, n_series, total + chunk, initial_seconds, partial_seconds)
    return table


def main(n_series: int = 200) -> None:
    time_points = [1_000, 2_000, 4_000, 8_000]
    chunk = 1_000

    theta = theta_machine(racks_per_row=2, node_limit=min(n_series, 256))
    sc_log = run_dataset(
        "SC Log",
        TelemetryGenerator(theta, seed=31, utilization_target=0.5),
        theta.dt_seconds,
        n_series,
        time_points,
        levels=6,
        chunk=chunk,
    )
    polaris = polaris_machine(node_limit=max(1, min(n_series, 256) // 4))
    gpu = run_dataset(
        "GPU Metrics",
        TelemetryGenerator(polaris, seed=37, utilization_target=0.6),
        polaris.dt_seconds,
        n_series,
        time_points,
        levels=7,
        chunk=chunk,
    )

    print("Table I analogue (reduced scale):\n")
    print(sc_log.render())
    print()
    print(gpu.render())
    print("\nExpected shape: Initial Fit grows with T; Partial Fit stays roughly flat "
          "and is well below the Initial Fit for the largest T.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)

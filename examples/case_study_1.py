"""Case study 1 (Sec. V-A): two projects' nodes, streaming update, rack view.

Reproduces the analysis flow behind Figs. 3, 4 and 5:

* select the nodes used by two projects' jobs (871 on the real Theta; a
  scale-dependent number here);
* run the initial mrDMD fit on the first 1,000 snapshots, then incrementally
  update with 1,000 more (timing both, as the paper reports 12.49 s and
  ~7.6 s on its hardware);
* reconstruct the denoised signal, report the Frobenius error (paper:
  3958.58 at full scale), and export actual-vs-reconstructed traces (Fig. 3);
* compute z-scores against the 46-57 degC baseline band and paint them on
  the rack layout with correctable-memory-error nodes outlined (Fig. 4);
* export the mrDMD spectrum (Fig. 5) and the multi-log alignment report.

Run with ``python examples/case_study_1.py [scale]`` (default scale 0.1).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.core import MrDMDConfig, MrDMDSpectrum
from repro.core.reconstruction import reconstruction_traces
from repro.hwlog import HardwareEventType
from repro.pipeline import OnlineAnalysisPipeline, PipelineConfig, build_case_study_1
from repro.viz import RackLayout, RackView, SpectrumPlot, TimeSeriesView

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main(scale: float = 0.1) -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    scenario = build_case_study_1(scale=scale, n_timesteps=2_000, initial_steps=1_000)
    stream = scenario.stream
    print(f"case study 1 @ scale {scale}: {scenario.selected_nodes.size} nodes selected "
          f"from projects {scenario.projects}, {stream.n_timesteps} snapshots")

    config = PipelineConfig(
        mrdmd=MrDMDConfig(max_levels=6),
        baseline_range=scenario.baseline_range,
        frequency_range=(0.0, 60.0),
    )
    pipeline = OnlineAnalysisPipeline.from_stream(stream, config)

    t0 = time.perf_counter()
    pipeline.ingest(scenario.initial_block())
    initial_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    snapshot = pipeline.ingest(scenario.streaming_block())
    update_seconds = time.perf_counter() - t0
    print(f"initial mrDMD fit: {initial_seconds:.2f}s, incremental update: {update_seconds:.2f}s "
          f"(paper at full scale: 12.49s / ~7.6s)")
    print(f"Frobenius reconstruction error: {snapshot.reconstruction_error:.2f} "
          f"(paper at full scale: 3958.58)")

    # Fig. 3 analogue: actual vs reconstructed traces for a few nodes.
    traces = reconstruction_traces(
        pipeline.model.tree,
        stream.values,
        sensors=list(range(min(3, stream.n_rows))),
        frequency_range=config.frequency_range,
    )
    ts_view = TimeSeriesView()
    fig3_path = os.path.join(OUTPUT_DIR, "case1_fig3_actual_vs_reconstruction.svg")
    ts_view.save_svg(
        fig3_path,
        {
            "actual (node 0)": traces["actual"][0],
            "I-mrDMD reconstruction": traces["reconstructed"][0],
        },
        title="Case study 1: actual vs I-mrDMD reconstruction",
        y_label="degC",
    )
    print(f"wrote {fig3_path}")

    # Fig. 5 analogue: the mrDMD spectrum.
    spectrum = pipeline.spectrum(label="Case 1")
    fig5_path = os.path.join(OUTPUT_DIR, "case1_fig5_spectrum.svg")
    SpectrumPlot().save_svg(fig5_path, spectrum, title="Case study 1: I-mrDMD spectrum")
    print(f"wrote {fig5_path} ({spectrum.n_modes} modes, "
          f"centroid frequency {spectrum.centroid_frequency():.2e} Hz)")

    # Fig. 4 analogue: rack view of node z-scores with memory-error outlines.
    node_scores = pipeline.node_zscores()
    memory_nodes = scenario.hwlog.nodes_with(HardwareEventType.CORRECTABLE_MEMORY_ERROR)
    memory_nodes = np.intersect1d(memory_nodes, scenario.selected_nodes)
    layout = RackLayout.from_machine(scenario.machine)
    view = RackView(layout, title="Case study 1: z-scores vs 46-57 degC baseline")
    fig4_path = os.path.join(OUTPUT_DIR, "case1_fig4_rack_zscores.svg")
    view.save_svg(
        fig4_path,
        node_scores.as_dict(),
        outlined_nodes=[int(n) for n in memory_nodes],
        node_names=scenario.machine.node_names(),
    )
    print(f"wrote {fig4_path}")

    # Alignment report (Q3).
    report = pipeline.alignment_report(hwlog=scenario.hwlog, joblog=scenario.joblog)
    print(report.render())
    detected_hot = set(int(n) for n in node_scores.hot_nodes())
    injected_hot = set(int(n) for n in scenario.hot_nodes)
    print(f"hot-node recall vs injected ground truth: "
          f"{len(detected_hot & injected_hot)}/{len(injected_hot)}")
    overlap = detected_hot & set(int(n) for n in memory_nodes)
    print(f"hot nodes that also report memory errors: {len(overlap)} "
          "(the paper found elevated temperatures did NOT coincide with memory errors)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)

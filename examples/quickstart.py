"""Quickstart: generate telemetry, run I-mrDMD online, render a rack view.

This walks the full public API surface in a couple of minutes of CPU time:

1. describe a (scaled-down) Theta-like machine and synthesise environment
   logs for it;
2. feed an initial window plus a streaming chunk to the online pipeline
   (I-mrDMD + spectrum filtering + baseline z-scores);
3. print the spectrum and reconstruction quality;
4. write two SVG artifacts: the z-score rack view and a Fig. 2-style
   node-down-hours view for a Polaris-like machine.

Run with ``python examples/quickstart.py``.  Outputs land in
``examples/output/``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core import MrDMDConfig
from repro.pipeline import OnlineAnalysisPipeline, PipelineConfig, build_node_down_scenario
from repro.telemetry import HotNodes, TelemetryGenerator, theta_machine
from repro.viz import RackLayout, RackView

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)

    # ------------------------------------------------------------------ #
    # 1. a small Theta-like machine and one temperature channel
    # ------------------------------------------------------------------ #
    machine = theta_machine(racks_per_row=2, node_limit=256)
    generator = TelemetryGenerator(machine, seed=7, utilization_target=0.15)
    hot = (12, 13, 14, 200)
    stream = generator.generate(
        1_600,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=hot, start=700, delta=18.0)],
    )
    print(f"machine: {machine.n_nodes} nodes in {machine.n_racks} racks "
          f"(layout spec: {machine.layout_spec()!r})")
    print(f"telemetry: {stream.values.shape[0]} rows x {stream.values.shape[1]} snapshots "
          f"@ {stream.dt:.0f}s")

    # ------------------------------------------------------------------ #
    # 2. online analysis: initial fit + one streaming increment
    # ------------------------------------------------------------------ #
    config = PipelineConfig(
        mrdmd=MrDMDConfig(max_levels=6),
        baseline_range=(46.0, 57.0),
    )
    pipeline = OnlineAnalysisPipeline.from_stream(stream, config)
    initial = pipeline.ingest(stream.values[:, :800])
    update = pipeline.ingest(stream.values[:, 800:])
    print(f"initial fit: {initial.n_modes} modes over {initial.n_snapshots} snapshots")
    print(f"after increment: {update.n_modes} modes over {update.n_snapshots} snapshots, "
          f"reconstruction error {update.reconstruction_error:.1f} (Frobenius)")

    # ------------------------------------------------------------------ #
    # 3. spectrum + z-scores
    # ------------------------------------------------------------------ #
    spectrum = pipeline.spectrum(label="quickstart")
    print(f"spectrum: {spectrum.n_modes} modes, dominant frequency "
          f"{spectrum.dominant_frequency():.2e} Hz, total power {spectrum.total_power():.1f}")
    node_scores = pipeline.node_zscores()
    detected = sorted(int(n) for n in node_scores.hot_nodes())
    recovered = sorted(set(detected) & set(hot))
    print(f"nodes flagged hot (z > 2): {len(detected)}; injected hot nodes recovered: "
          f"{recovered} of {sorted(hot)}")

    # ------------------------------------------------------------------ #
    # 4. SVG artifacts
    # ------------------------------------------------------------------ #
    layout = RackLayout.from_machine(machine)
    view = RackView(layout, title="Quickstart: cpu_temp z-scores")
    rack_path = os.path.join(OUTPUT_DIR, "quickstart_rack_zscores.svg")
    view.save_svg(rack_path, node_scores.as_dict(), outlined_nodes=detected)
    print(f"wrote {rack_path}")

    polaris, hwlog = build_node_down_scenario(scale=0.5, n_timesteps=10_000)
    down_hours = hwlog.downtime_hours(polaris.n_nodes, polaris.dt_seconds)
    polaris_view = RackView(
        RackLayout.from_machine(polaris),
        title="Polaris node down hours (Fig. 2 analogue)",
    )
    # Use the hours directly; the diverging map centres on 0 so busy-down
    # nodes show up red.
    down_path = os.path.join(OUTPUT_DIR, "polaris_node_down_hours.svg")
    polaris_view.save_svg(down_path, {i: float(h) for i, h in enumerate(down_hours)})
    print(f"wrote {down_path} (total downtime {down_hours.sum():.1f} node-hours)")


if __name__ == "__main__":
    main()

"""Observability end to end: metrics, spans and the session report.

Demonstrates the ``repro.obs`` subsystem on a sharded fleet monitor:

1. the provider starts **disabled** — the instrumented ingest path runs
   with no recording at all (one attribute check per call site);
2. ``obs.enable(trace_path=...)`` turns on metrics + tracing for a
   rack-cooling-failure workload on a persistent thread executor; every
   layer reports — ISVD updates, mrDMD phases, shard dispatch/wait,
   chunk latency, alert rules;
3. the trace file is JSON lines — a ``schema_version`` header line, then
   one span event per line — with ``parent_id`` links that reconstruct
   the nesting (``service.ingest_and_alert -> executor.task ->
   pipeline.ingest -> core.*``); the same events convert to a Chrome
   trace-event file loadable in Perfetto / ``chrome://tracing``;
4. the registry's scheduling-independent totals (counters, gauges,
   histogram counts) are shown to be **identical** on a re-run with the
   serial backend — the same bit-for-bit discipline the analysis
   products obey;
5. the session digest (p50/p95/p99 per span, hotspots, rows/sec, alerts
   per rule) renders through the ``repro.viz`` text-report machinery.

Run with ``python examples/service_metrics.py``.  The same surfaces are
available from the shell via ``python -m repro.service <scenario>
--metrics-out metrics.json --trace-out trace.jsonl``.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs  # noqa: E402
from repro.core import MrDMDConfig  # noqa: E402
from repro.pipeline import PipelineConfig  # noqa: E402
from repro.service import (  # noqa: E402
    FleetMonitor,
    RackSharding,
    get_scenario,
)
from repro.service.alerts import AlertEngine, default_rules  # noqa: E402
from repro.telemetry import TelemetryGenerator  # noqa: E402


def _drive(stream, chunks, *, executor=None) -> list:
    """One pass of the workload; returns the fired alerts."""
    config = PipelineConfig(
        mrdmd=MrDMDConfig(max_levels=4), baseline_range=(40.0, 75.0)
    )
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=config,
        alert_engine=AlertEngine(rules=default_rules(), cooldown=60),
        executor=executor,
        max_workers=2,
    )
    alerts = []
    with monitor:
        monitor.ingest(stream.values[:, : chunks[0][1]])
        for lo, hi in chunks[1:]:
            _, fired = monitor.ingest_and_alert(
                stream.values[:, lo:hi], window=150
            )
            alerts.extend(fired)
    return alerts


def main() -> None:
    scenario = get_scenario("rack-cooling-failure")
    generator = TelemetryGenerator(scenario.machine, seed=11)
    stream = generator.generate(
        480, sensors=["cpu_temp"], anomalies=list(scenario.anomalies)
    )
    chunks = [(0, 240), (240, 320), (320, 400), (400, 480)]

    # ---- 1. disabled by default: nothing is recorded ------------------- #
    assert not obs.OBS.enabled
    _drive(stream, chunks, executor="thread")
    print(f"disabled run recorded {len(obs.OBS.metrics)} instruments")

    # ---- 2./3. enabled run with a JSON-lines trace --------------------- #
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.jsonl")
        obs.enable(trace_path=trace_path)
        alerts = _drive(stream, chunks, executor="thread")
        obs.disable()

        header, events = obs.export.read_trace(trace_path)
        print(f"trace schema_version: {header.get('schema_version')}")
        by_id = {event["span_id"]: event for event in events}
        deepest = max(
            events,
            key=lambda event: len(_ancestry(event, by_id)),
        )
        chain = " -> ".join(reversed(_ancestry(deepest, by_id)))
        print(f"\n{len(events)} span events; deepest nesting:\n  {chain}")

        # The same span events as a Chrome trace — drop this file onto
        # https://ui.perfetto.dev or chrome://tracing to see the timeline.
        chrome_path = os.path.join(tmp, "trace.chrome.json")
        payload = obs.export.write_chrome_trace(
            events, chrome_path, trace_id=header.get("trace_id")
        )
        print(
            f"chrome trace: {len(payload['traceEvents'])} events in "
            f"{os.path.basename(chrome_path)} "
            f"({os.path.getsize(chrome_path)} bytes)"
        )

    totals = obs.OBS.metrics.totals()
    print(f"{len(alerts)} alerts fired; "
          f"{int(totals['service.rows'])} telemetry entries ingested over "
          f"{int(totals['service.chunk.seconds.count'])} chunks")

    # ---- 4. totals are scheduling-independent --------------------------- #
    threaded = {
        key: value
        for key, value in totals.items()
        if "executor." not in key
        and key not in ("service.rows_per_sec", "core.isvd.rank")
    }
    obs.OBS.reset()
    obs.enable()
    _drive(stream, chunks, executor=None)  # serial
    serial = {
        key: value
        for key, value in obs.OBS.metrics.totals().items()
        if "executor." not in key
        and key not in ("service.rows_per_sec", "core.isvd.rank")
    }
    match = threaded == serial
    print(f"thread vs serial scheduling-independent totals identical: {match}")
    if not match:
        raise SystemExit("metric totals diverged across backends")

    # ---- 5. the session digest ------------------------------------------ #
    print()
    print(obs.report.render_text(obs.OBS.metrics))
    obs.OBS.reset()


def _ancestry(event: dict, by_id: dict) -> list[str]:
    names = [event["name"]]
    parent = event.get("parent_id")
    while parent is not None:
        event = by_id[parent]
        names.append(event["name"])
        parent = event.get("parent_id")
    return names


if __name__ == "__main__":
    main()

"""Multi-machine federation end to end: registry -> routed alerts -> restart.

Demonstrates the ``repro.federation`` subsystem on the ``federated-fleet``
scenario from the catalog:

1. three machines register in a :class:`~repro.federation.MachineRegistry`
   — a quiet site ("east"), one with a rack cooling failure ("west") and
   one with a noisy-neighbor job plus correlated hardware events
   ("north") — each backed by its own rack-sharded
   :class:`~repro.service.FleetMonitor`;
2. a :class:`~repro.federation.FederatedMonitor` fans each lockstep chunk
   across the machines on a persistent thread executor and routes every
   alert through a shared :class:`~repro.federation.AlertRouter`: alerts
   arrive machine-stamped, deduplicated federation-wide, with a
   :class:`~repro.federation.FleetWideRule` watching for multi-machine
   drift bursts no single machine could report;
3. after every chunk the whole federation checkpoints into a *rotating*
   history (``save_federated_checkpoint(..., keep_last=2)``); after chunk
   2 the federation is torn down and restored from the newest retained
   entry;
4. the script re-runs the workload **without** the restart and verifies
   rack values, the flat ``machine/node`` z-score map and the alert trail
   match *exactly* — neither the restart nor the fan-out backend is
   observable in the products;
5. finally it prints the federated spectrum's ``machine/shard`` power
   table and the retained checkpoint history.

Run with ``python examples/service_federation.py``.  The same workload is
available from the shell via ``python -m repro.service federated_fleet``.
"""

from __future__ import annotations

import os
import sys
import tempfile
from dataclasses import replace

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.federation import (  # noqa: E402
    FederatedScenarioRunner,
    get_federated_scenario,
)
from repro.service import RingBufferSink  # noqa: E402


def main() -> None:
    scenario = get_federated_scenario("federated-fleet")
    print(f"scenario: {scenario.name} — {scenario.description}")
    for name, sc in scenario.machines:
        print(
            f"machine {name:6s} {sc.machine.n_nodes} nodes in "
            f"{sc.machine.n_racks} racks — {sc.name}"
        )
    print(
        f"stream:   {scenario.machines[0][1].total_steps} snapshots per machine, "
        f"{scenario.n_chunks} chunks; restart after chunk "
        f"{scenario.restart_after_chunk}; rotating checkpoints "
        f"keep_last={scenario.keep_last}"
    )

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # ---- run with rotating checkpoints + a mid-run restore ---------- #
        sink = RingBufferSink()
        result = FederatedScenarioRunner(
            scenario, sinks=[sink], checkpoint_dir=checkpoint_dir,
            executor="thread",
        ).run()
        print(
            f"\nrestarted run: {len(result.alerts)} alerts "
            f"({len(sink.alerts)} via the router's global sink), "
            f"restarted={result.restarted}"
        )
        for alert in result.alerts[:5]:
            print(
                f"  [{alert.severity.name:8s}] [{alert.machine or 'fleet'}] "
                f"step {alert.step}: {alert.message}"
            )
        if len(result.alerts) > 5:
            print(f"  ... and {len(result.alerts) - 5} more")
        print(f"alerted machines: {sorted(result.alerted_machines())}")
        print(
            "retained checkpoint steps (newest first): "
            f"{[entry.step for entry in result.checkpoints]}"
        )

    # ---- reference: the same workload without the restart --------------- #
    uninterrupted = FederatedScenarioRunner(
        replace(scenario, restart_after_chunk=None)
    ).run()

    rack_match = result.rack_values == uninterrupted.rack_values
    zmap_match = result.zscore_map == uninterrupted.zscore_map
    alert_match = [a.to_dict() for a in result.alerts] == [
        a.to_dict() for a in uninterrupted.alerts
    ]
    print(
        f"\nrestart vs uninterrupted: rack values identical: {rack_match}; "
        f"z-score maps identical: {zmap_match}; alert trails identical: "
        f"{alert_match}"
    )
    if not (rack_match and zmap_match and alert_match):
        raise SystemExit("federated checkpoint/restore failed to resume bit-for-bit")
    print("OK: the restart (and the fan-out backend) is observationally invisible.")

    # ---- federated products --------------------------------------------- #
    federated = result.federated
    spectrum = federated.fleet_spectrum()
    power = spectrum.total_power_by_shard()
    print(
        f"\nfederated spectrum: {spectrum.n_modes} modes across "
        f"{federated.n_machines} machines; top machine/shard power:"
    )
    for key, value in sorted(power.items(), key=lambda kv: kv[1], reverse=True)[:5]:
        print(f"  {key:16s} {value:10.1f}")

    hottest = sorted(
        result.zscore_map.items(), key=lambda kv: kv[1], reverse=True
    )[:5]
    print("hottest machine/node z-scores:")
    for key, z in hottest:
        print(f"  {key:16s} z = {z:+.2f}")


if __name__ == "__main__":
    main()

"""Fig. 8 analogue: compare PCA / IPCA / t-SNE / UMAP / Aligned-UMAP / mrDMD / I-mrDMD.

The paper labels 40 readings (20 baseline, 20 non-baseline) out of the 4,392
processed measurements and shows how each method separates them: the
dimensionality-reduction baselines produce micro-clusters that mix the two
classes, while the mrDMD/I-mrDMD z-scores separate them.

This example builds a labelled synthetic dataset with the same structure,
runs every method, and prints a separation score per method (distance
between class centroids over within-class spread), plus each DMD variant's
z-score separation.  It also dumps the 2-D embeddings to CSV files so they
can be plotted externally.

Run with ``python examples/method_comparison.py``.
"""

from __future__ import annotations

import csv
import os
import time

import numpy as np

from repro.compare import PCA, AlignedUMAPLite, IncrementalPCA, TSNE, UMAPLite
from repro.core import BaselineModel, BaselineSpec, IncrementalMrDMD, MrDMDConfig, compute_mrdmd
from repro.telemetry import HotNodes, TelemetryGenerator, theta_machine

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def separation(embedding: np.ndarray, labels: np.ndarray) -> float:
    """Distance between class centroids divided by mean within-class spread."""
    a, b = embedding[labels == 0], embedding[labels == 1]
    spread = (a.std(axis=0).mean() + b.std(axis=0).mean()) / 2.0
    return float(np.linalg.norm(a.mean(axis=0) - b.mean(axis=0)) / max(spread, 1e-12))


def main(n_per_class: int = 20, n_timesteps: int = 1_000) -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    machine = theta_machine(racks_per_row=1, node_limit=2 * n_per_class)
    hot_nodes = tuple(range(n_per_class, 2 * n_per_class))
    generator = TelemetryGenerator(machine, seed=29, utilization_target=0.3)
    stream = generator.generate(
        n_timesteps,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=hot_nodes, start=n_timesteps // 4, delta=13.0)],
    )
    data = stream.values
    labels = np.array([0] * n_per_class + [1] * n_per_class)
    print(f"dataset: {data.shape[0]} readings x {data.shape[1]} time points "
          f"({n_per_class} baseline + {n_per_class} non-baseline)")

    half = n_timesteps // 2
    results: dict[str, float] = {}

    methods = {
        "PCA": PCA(),
        "IPCA": IncrementalPCA(),
        "TSNE": TSNE(n_iter=400, perplexity=10, random_state=3),
        "UMAP": UMAPLite(n_epochs=150, n_neighbors=10, random_state=3),
        "Aligned-UMAP": AlignedUMAPLite(n_epochs=120, n_neighbors=10, random_state=3),
    }
    for name, model in methods.items():
        t0 = time.perf_counter()
        if model.supports_partial_fit:
            model.fit(data[:, :half])
            model.partial_fit(data[:, half:])
            embedding = model.embedding_
        else:
            embedding = model.fit_transform(data)
        elapsed = time.perf_counter() - t0
        results[name] = separation(embedding, labels)
        _dump_embedding(name, embedding, labels)
        print(f"{name:>14s}: separation {results[name]:.2f} ({elapsed:.2f}s)")

    # mrDMD and I-mrDMD enter through the z-score pipeline.
    for name, use_incremental in [("mrDMD", False), ("I-mrDMD", True)]:
        t0 = time.perf_counter()
        if use_incremental:
            model = IncrementalMrDMD(dt=stream.dt, config=MrDMDConfig(max_levels=5), keep_data=True)
            model.fit(data[:, :half])
            model.partial_fit(data[:, half:])
            tree = model.tree
        else:
            tree = compute_mrdmd(data, stream.dt, MrDMDConfig(max_levels=5))
        recon = tree.reconstruct(data.shape[1])
        baseline = BaselineModel.from_data(recon, BaselineSpec(value_range=(46.0, 57.0)))
        z = baseline.score(recon).zscores
        elapsed = time.perf_counter() - t0
        embedding = np.column_stack([np.arange(z.size), z])
        results[name] = separation(embedding[:, 1:2], labels)
        _dump_embedding(name.replace("-", "_"), embedding, labels)
        print(f"{name:>14s}: z-score separation {results[name]:.2f} ({elapsed:.2f}s)")

    dmd_family = min(results["mrDMD"], results["I-mrDMD"])
    best_dr = max(results[k] for k in ("PCA", "IPCA", "TSNE", "UMAP", "Aligned-UMAP"))
    print(f"\nDMD-family z-score separation {dmd_family:.2f}; best DR baseline {best_dr:.2f}.")
    print("The paper's Fig. 8 shows the DMD family separating baseline from non-baseline "
          "readings while the DR baselines form mixed micro-clusters; on this cleanly "
          "separable synthetic set the linear baselines also separate well (see "
          "EXPERIMENTS.md), so the reproduced claim is that the DMD-family separation "
          "is clear (> 2) and in the same league as the baselines.")


def _dump_embedding(name: str, embedding: np.ndarray, labels: np.ndarray) -> None:
    path = os.path.join(OUTPUT_DIR, f"fig8_{name.lower()}_embedding.csv")
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["component_1", "component_2", "label"])
        for row, label in zip(embedding, labels):
            second = row[1] if row.shape[0] > 1 else 0.0
            writer.writerow([f"{row[0]:.6f}", f"{second:.6f}", int(label)])


if __name__ == "__main__":
    main()

"""Streaming GPU-metrics analysis on a Polaris-like machine (Sec. IV).

The paper's second performance scenario monitors GPU temperatures from the
560-node Polaris system (four A100s per node, ~3-second cadence), comparing
a full mrDMD recomputation against the incremental update when new time
points arrive.  This example reproduces the protocol at configurable scale:

* generate GPU temperature telemetry chunk by chunk (bounded memory) with a
  :class:`~repro.telemetry.streaming.ChunkedSource`;
* time the initial I-mrDMD fit, each incremental update, and the equivalent
  full recomputation;
* report the speed-up and the accuracy gap between the two (Q2).

Run with ``python examples/gpu_metrics_streaming.py [n_gpilot_rows]``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core import IncrementalMrDMD, MrDMDConfig, compute_mrdmd
from repro.telemetry import ChunkedSource, TelemetryGenerator, polaris_machine
from repro.util import TimingTable


def main(n_rows: int = 400, initial_steps: int = 1_200, chunk_steps: int = 400, n_chunks: int = 3) -> None:
    machine = polaris_machine(node_limit=max(1, n_rows // 4))
    generator = TelemetryGenerator(machine, seed=17, utilization_target=0.6)
    source = ChunkedSource(generator, sensors=["gpu0_temp", "gpu1_temp", "gpu2_temp", "gpu3_temp"])

    config = MrDMDConfig(max_levels=7)
    model = IncrementalMrDMD(dt=machine.dt_seconds, config=config, keep_data=True)

    initial = source.next_chunk(initial_steps).values[:n_rows]
    t0 = time.perf_counter()
    model.fit(initial)
    fit_seconds = time.perf_counter() - t0
    print(f"GPU metrics: {initial.shape[0]} series, initial fit on {initial_steps} steps "
          f"took {fit_seconds:.2f}s ({model.tree.total_modes} modes)")

    table = TimingTable(columns=["chunk", "T_total", "partial_fit_s", "full_recompute_s", "speedup"])
    history = [initial]
    for chunk_idx in range(n_chunks):
        chunk = source.next_chunk(chunk_steps).values[:n_rows]
        history.append(chunk)
        t0 = time.perf_counter()
        model.partial_fit(chunk)
        partial_seconds = time.perf_counter() - t0

        full_data = np.hstack(history)
        t0 = time.perf_counter()
        compute_mrdmd(full_data, machine.dt_seconds, config)
        full_seconds = time.perf_counter() - t0
        table.add_row(
            chunk_idx + 1,
            full_data.shape[1],
            partial_seconds,
            full_seconds,
            full_seconds / max(partial_seconds, 1e-9),
        )

    print(table.render())
    full_data = np.hstack(history)
    gap = model.incremental_vs_batch_gap(full_data)
    err = model.reconstruction_error(full_data)
    print(f"Q2 accuracy: incremental reconstruction error {err:.1f}, "
          f"|incremental - batch| gap {gap:.2f} "
          "(the paper reports gaps of 10-5000 depending on dynamics and update counts)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)

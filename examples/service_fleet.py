"""Fleet monitoring service end to end: stream -> alerts -> restart -> resume.

Demonstrates the ``repro.service`` subsystem on the ``mid-run-restart``
scenario from the catalog:

1. a 64-node, 4-rack machine streams cpu_temp telemetry while rack 1
   suffers a cooling failure;
2. a :class:`~repro.service.FleetMonitor` (one I-mrDMD pipeline per rack)
   ingests the stream chunk by chunk on a **persistent thread executor**
   (workers held open across every chunk, per-shard scoring overlapped
   with the other shards' updates), and the alert engine fires z-score
   alerts on the degraded rack;
3. after chunk 2 the service checkpoints to disk, is torn down, and is
   restored from the checkpoint;
4. the resumed monitor processes the remaining chunks; the script then
   re-runs the whole workload **without** the restart — and serially,
   without any executor — and verifies the rack values and alert trail
   match *exactly*: neither the restart nor the fan-out backend is
   observable in the products;
5. finally it queries a recent-window rack view
   (``rack_values(time_range=...)``), which expands only the modes
   overlapping the window instead of reconstructing the full timeline.

Run with ``python examples/service_fleet.py``.  The same workloads are
available from the shell via ``python -m repro.service <scenario>``.
"""

from __future__ import annotations

import os
import sys
import tempfile
from dataclasses import replace

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service import RingBufferSink, ScenarioRunner, get_scenario  # noqa: E402


def main() -> None:
    scenario = get_scenario("mid-run-restart")
    machine = scenario.machine
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(f"machine:  {machine.n_nodes} nodes in {machine.n_racks} racks, "
          f"dt={machine.dt_seconds:.0f}s")
    print(f"stream:   {scenario.total_steps} snapshots "
          f"(initial {scenario.initial_size}, {scenario.n_chunks} chunks of "
          f"{scenario.chunk_size}), restart after chunk {scenario.restart_after_chunk}")

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # ---- run with a mid-stream checkpoint/restore on a persistent
        # thread executor (held open across chunks, closed by the runner) #
        sink = RingBufferSink()
        result = ScenarioRunner(
            scenario, sinks=[sink], checkpoint_dir=checkpoint_dir,
            executor="thread",
        ).run()
        print(f"\nrestarted run: {len(result.alerts)} alerts "
              f"({len(sink.alerts)} via sink), restarted={result.restarted}")
        for alert in result.alerts[:5]:
            print(f"  [{alert.severity.name:8s}] step {alert.step}: {alert.message}")
        if len(result.alerts) > 5:
            print(f"  ... and {len(result.alerts) - 5} more")

        alerted_racks = sorted(
            {machine.rack_of_node(n) for n in result.alerted_nodes()}
        )
        print(f"alerted racks: {alerted_racks} (cooling failure injected on rack 1)")

    # ---- reference: the same workload without any restart ------------- #
    uninterrupted = ScenarioRunner(
        replace(scenario, restart_after_chunk=None)
    ).run()

    rack_match = result.rack_values == uninterrupted.rack_values
    alert_match = [a.to_dict() for a in result.alerts] == [
        a.to_dict() for a in uninterrupted.alerts
    ]
    worst = max(
        abs(result.rack_values[n] - uninterrupted.rack_values[n])
        for n in result.rack_values
    )
    print(f"\nrestart vs uninterrupted: rack values identical: {rack_match} "
          f"(max |diff| = {worst:.1e}); alert trails identical: {alert_match}")
    if not (rack_match and alert_match):
        raise SystemExit("checkpoint/restore failed to resume bit-for-bit")
    print("OK: the restart (and the executor backend) is observationally "
          "invisible.")

    # ---- windowed rack view: only the recent window's modes expand ----- #
    monitor = result.monitor
    lo = max(0, monitor.step - 120)
    recent = monitor.rack_values(time_range=(lo, monitor.step))
    hottest = sorted(recent.items(), key=lambda item: item[1], reverse=True)[:4]
    print(f"\nhottest nodes over the last {monitor.step - lo} snapshots "
          f"(windowed query, no full-timeline reconstruction):")
    for node, z in hottest:
        print(f"  node {node:3d} (rack {machine.rack_of_node(node)}): z = {z:+.2f}")


if __name__ == "__main__":
    main()

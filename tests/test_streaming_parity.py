"""Parity and regression suite for the O(T)-streaming core overhaul.

Pins the contract of the lazy right-factor rotation, the growth buffers
and the projected level-1 path:

* lazy ``Vh`` rotation is **bit-for-bit** identical to eager per-update
  rotation — for the raw :class:`IncrementalSVD` (including mid-stream
  ``to_dict``/``from_dict`` checkpoints) and against an inline
  re-implementation of the pre-overhaul (seed) eager algorithm;
* :class:`IncrementalMrDMD` with lazy and eager factors produces
  bit-for-bit identical trees, checkpoints and pipeline z-scores (the
  serial/thread/process executor parity suite in
  ``test_service_executor.py`` extends this across backends);
* growth-buffer accumulation matches ``np.hstack`` accumulation exactly;
* per-update cost of the streaming path does not grow with the stream
  length (the regression guard for the ISSUE's O(T^2) degradation);
* ``add_rows`` participates in the re-orthogonalisation schedule;
* the raw-snapshot retention policies are behaviour-preserving for every
  analysis product (retention never feeds the numerics).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.imrdmd import IncrementalMrDMD
from repro.core.isvd import IncrementalSVD
from repro.core.mrdmd import MrDMDConfig
from repro.core.svht import svht_rank
from repro.pipeline import OnlineAnalysisPipeline, PipelineConfig

from helpers import make_multiscale_signal


def _assert_state_equal(a, b, path=""):
    """Deep bit-for-bit comparison of nested state dicts."""
    assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for key in a:
            _assert_state_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_state_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape, path
        assert np.array_equal(a, b, equal_nan=True), path
    else:
        assert a == b, path


# --------------------------------------------------------------------------- #
# The pre-overhaul (seed) incremental SVD, reimplemented verbatim: eager
# per-update right-factor rotation, no reorthogonalisation on add_rows.
# The new lazy path must reproduce its factors bit for bit.
# --------------------------------------------------------------------------- #
class _SeedEagerISVD:
    def __init__(self, rank=None, *, use_svht=True, max_rank_cap=512,
                 reorthogonalize_every=16):
        self.rank = rank
        self.use_svht = use_svht
        self.max_rank_cap = max_rank_cap
        self.reorthogonalize_every = reorthogonalize_every
        self.u = self.s = self.vh = None
        self.n_cols_seen = 0
        self.n_updates = 0

    def _truncation_rank(self, s, shape):
        if self.use_svht:
            decision = svht_rank(s, shape, max_rank=self.rank or self.max_rank_cap)
            r = decision.rank
        else:
            r = s.size if self.rank is None else min(self.rank, s.size)
        return int(min(max(r, 1), self.max_rank_cap, s.size)) if s.size else 0

    def initialize(self, data):
        u, s, vh = np.linalg.svd(data, full_matrices=False)
        r = self._truncation_rank(s, data.shape)
        self.u = np.ascontiguousarray(u[:, :r])
        self.s = np.ascontiguousarray(s[:r])
        self.vh = np.ascontiguousarray(vh[:r, :])
        self.n_cols_seen = data.shape[1]

    def update(self, c_block):
        u, s, vh = self.u, self.s, self.vh
        q = s.size
        c = c_block.shape[1]
        l_proj = u.conj().T @ c_block
        residual = c_block - u @ l_proj
        j, k = np.linalg.qr(residual)
        k_cols = j.shape[1]
        core = np.zeros((q + k_cols, q + c), dtype=np.float64)
        core[:q, :q] = np.diag(s)
        core[:q, q:] = l_proj
        core[q:, q:] = k
        cu, cs, cvh = np.linalg.svd(core, full_matrices=False)
        total_cols = self.n_cols_seen + c
        r = self._truncation_rank(cs, (u.shape[0], total_cols))
        r = min(r, cs.size)
        new_u = np.hstack([u, j]) @ cu[:, :r]
        new_vh = np.empty((r, total_cols), dtype=np.float64)
        np.matmul(cvh[:r, :q], vh, out=new_vh[:, : self.n_cols_seen])
        new_vh[:, self.n_cols_seen:] = cvh[:r, q:]
        self.u, self.s, self.vh = new_u, np.ascontiguousarray(cs[:r]), new_vh
        self.n_cols_seen = total_cols
        self.n_updates += 1
        if self.reorthogonalize_every and self.n_updates % self.reorthogonalize_every == 0:
            qmat, rmat = np.linalg.qr(self.u)
            ru, rs, rvh = np.linalg.svd(rmat * self.s[None, :], full_matrices=False)
            self.u = qmat @ ru
            self.s = rs
            self.vh = rvh @ self.vh


def _stream_matrix(n_rows=32, n_cols=600, seed=5):
    gen = np.random.default_rng(seed)
    base = gen.standard_normal((n_rows, 6)) @ gen.standard_normal((6, n_cols))
    return base + 0.01 * gen.standard_normal((n_rows, n_cols))


class TestLazyVhParity:
    @pytest.mark.parametrize("use_svht", [False, True])
    def test_lazy_equals_eager_bit_for_bit(self, use_svht):
        x = _stream_matrix()
        kwargs = dict(rank=8, use_svht=use_svht, reorthogonalize_every=4)
        lazy = IncrementalSVD(lazy_rotation=True, **kwargs)
        eager = IncrementalSVD(lazy_rotation=False, **kwargs)
        for model in (lazy, eager):
            model.initialize(x[:, :60])
        for lo in range(60, x.shape[1], 36):
            lazy.update(x[:, lo : lo + 36])
            eager.update(x[:, lo : lo + 36])
        assert lazy.pending_rotations > 0
        assert eager.pending_rotations == 0
        for name, a, b in zip("u s vh", lazy.factors(), eager.factors()):
            assert np.array_equal(a, b), name

    def test_lazy_reproduces_seed_algorithm_bit_for_bit(self):
        x = _stream_matrix(seed=11)
        new = IncrementalSVD(rank=6, use_svht=False, reorthogonalize_every=3)
        seed = _SeedEagerISVD(rank=6, use_svht=False, reorthogonalize_every=3)
        new.initialize(x[:, :50])
        seed.initialize(x[:, :50])
        for lo in range(50, x.shape[1], 25):
            new.update(x[:, lo : lo + 25])
            seed.update(x[:, lo : lo + 25])
        u, s, vh = new.factors()
        assert np.array_equal(u, seed.u)
        assert np.array_equal(s, seed.s)
        assert np.array_equal(vh, seed.vh)

    def test_materialization_timing_is_irrelevant(self):
        """Accessing vh mid-stream must not change later factors."""
        x = _stream_matrix(seed=3)
        touched = IncrementalSVD(rank=5, use_svht=False, reorthogonalize_every=4)
        untouched = IncrementalSVD(rank=5, use_svht=False, reorthogonalize_every=4)
        for model in (touched, untouched):
            model.initialize(x[:, :40])
        for i, lo in enumerate(range(40, x.shape[1], 20)):
            touched.update(x[:, lo : lo + 20])
            untouched.update(x[:, lo : lo + 20])
            if i % 3 == 0:
                _ = touched.vh  # force materialisation mid-stream
        for a, b in zip(touched.factors(), untouched.factors()):
            assert np.array_equal(a, b)

    def test_checkpoint_round_trip_mid_stream(self):
        x = _stream_matrix(seed=9)
        model = IncrementalSVD(rank=6, use_svht=True, reorthogonalize_every=4)
        model.initialize(x[:, :50])
        for lo in range(50, 300, 25):
            model.update(x[:, lo : lo + 25])
        resumed = IncrementalSVD.from_dict(model.to_dict())
        for lo in range(300, x.shape[1], 25):
            model.update(x[:, lo : lo + 25])
            resumed.update(x[:, lo : lo + 25])
        for a, b in zip(model.factors(), resumed.factors()):
            assert np.array_equal(a, b)
        _assert_state_equal(model.to_dict(), resumed.to_dict())

    def test_state_access_materializes(self):
        x = _stream_matrix()
        model = IncrementalSVD(rank=4, use_svht=False)
        model.initialize(x[:, :50])
        model.update(x[:, 50:80])
        assert model.pending_rotations > 0
        state = model.state
        assert model.pending_rotations == 0
        assert state.vh.shape[1] == 80


class TestUpdateCostFlat:
    def test_update_never_touches_the_right_factor(self):
        """Structural regression: update() must not widen/rotate _vh."""
        x = _stream_matrix(n_cols=400)
        model = IncrementalSVD(rank=6, use_svht=False, reorthogonalize_every=0)
        model.initialize(x[:, :50])
        base_width = model._vh.shape[1]
        for lo in range(50, 400, 10):
            model.update(x[:, lo : lo + 10])
        assert model._vh.shape[1] == base_width          # untouched
        assert model.pending_rotations == 35             # one op per update
        assert model.n_columns == 400                    # bookkeeping advanced

    def test_per_update_wall_time_does_not_grow_with_stream_length(self):
        """The ISSUE's regression guard: update cost independent of T.

        An eager implementation pays O(q^2 T) per update, so the late
        updates (T ~ 60k columns) would be orders of magnitude slower
        than the early ones (T ~ 600).  The bound is deliberately loose
        (10x) so scheduler noise cannot flip it, while still catching any
        O(T) re-entry into the hot path.
        """
        gen = np.random.default_rng(2)
        p, c = 24, 60
        model = IncrementalSVD(rank=6, use_svht=False, reorthogonalize_every=8)
        model.initialize(gen.standard_normal((p, c)))

        def median_update_seconds(n_timed=20):
            times = []
            for _ in range(n_timed):
                block = gen.standard_normal((p, c))
                start = time.perf_counter()
                model.update(block)
                times.append(time.perf_counter() - start)
            return float(np.median(times))

        early = median_update_seconds()
        # Push the column count up by three orders of magnitude.
        for _ in range(1000):
            model.update(gen.standard_normal((p, c)))
        late = median_update_seconds()
        assert model.n_columns > 60_000
        assert late < 10 * max(early, 1e-5), (
            f"per-update time grew with stream length: "
            f"{early * 1e6:.0f}us at T~1k vs {late * 1e6:.0f}us at T~60k"
        )


class TestAddRowsSchedule:
    def test_add_rows_participates_in_reorth_schedule(self):
        x = _stream_matrix(n_rows=20, n_cols=140)
        model = IncrementalSVD(rank=5, use_svht=False, reorthogonalize_every=2)
        model.initialize(x[:, :120])
        gen = np.random.default_rng(0)
        # update (counter 1), then add_rows (counter 2) -> the schedule
        # fires on the add_rows call: its trailing op is the queued
        # re-orthogonalisation rotation.  The seed implementation bumped
        # the counter in add_rows but never checked it.
        model.update(x[:, 120:140])
        model.add_rows(gen.standard_normal((2, model.n_columns)))
        ops = model.last_update_ops
        assert [op[0] for op in ops] == ["rotate", "rotate"], (
            "add_rows on the schedule boundary must append the "
            "re-orthogonalisation rotation"
        )

    def test_orthogonality_drift_bounded_under_add_rows(self):
        gen = np.random.default_rng(4)
        x = gen.standard_normal((16, 200))
        model = IncrementalSVD(rank=8, use_svht=False, reorthogonalize_every=4)
        model.initialize(x)
        for i in range(24):
            model.add_rows(gen.standard_normal((3, model.n_columns)))
        gram = model.u.conj().T @ model.u
        assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8), (
            "left basis drifted despite the unified re-orthogonalisation "
            "schedule"
        )

    def test_add_rows_equivalent_with_and_without_lazy_rotation(self):
        gen = np.random.default_rng(6)
        x = gen.standard_normal((12, 80))
        rows = gen.standard_normal((4, 80))
        results = []
        for lazy in (True, False):
            model = IncrementalSVD(rank=6, use_svht=False,
                                   reorthogonalize_every=1, lazy_rotation=lazy)
            model.initialize(x)
            model.add_rows(rows)
            results.append(model.factors())
        for a, b in zip(*results):
            assert np.array_equal(a, b)


@pytest.fixture(scope="module")
def signal():
    return make_multiscale_signal(n_sensors=14, n_timesteps=1800, seed=33)


def _drive_model(signal, **kwargs):
    data, dt = signal
    model = IncrementalMrDMD(dt=dt, config=MrDMDConfig(max_levels=4), **kwargs)
    model.fit(data[:, :600])
    for lo in range(600, data.shape[1], 300):
        model.partial_fit(data[:, lo : lo + 300])
    return model


class TestIncrementalMrDMDParity:
    def test_lazy_vs_eager_trees_bit_for_bit(self, signal):
        lazy = _drive_model(signal, lazy_vh=True)
        eager = _drive_model(signal, lazy_vh=False)
        state_lazy = lazy.state_dict()
        state_eager = eager.state_dict()
        # lazy_vh is configuration, not results — mask it out, then the
        # entire state (tree, factors, cross product, history) must match.
        state_lazy["lazy_vh"] = state_eager["lazy_vh"] = None
        state_lazy["isvd"]["lazy_rotation"] = None
        state_eager["isvd"]["lazy_rotation"] = None
        _assert_state_equal(state_lazy, state_eager)

    def test_checkpoint_resume_mid_stream_bit_for_bit(self, signal):
        data, dt = signal
        continuous = IncrementalMrDMD(dt=dt, config=MrDMDConfig(max_levels=4))
        continuous.fit(data[:, :600])
        continuous.partial_fit(data[:, 600:900])
        resumed = IncrementalMrDMD.from_state_dict(continuous.state_dict())
        for lo in range(900, data.shape[1], 300):
            continuous.partial_fit(data[:, lo : lo + 300])
            resumed.partial_fit(data[:, lo : lo + 300])
        _assert_state_equal(continuous.state_dict(), resumed.state_dict())

    def test_pipeline_zscores_lazy_vs_eager_bit_for_bit(self, signal):
        data, dt = signal
        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=4), baseline_range=(40.0, 75.0)
        )
        products = []
        for lazy in (True, False):
            pipeline = OnlineAnalysisPipeline(dt=dt, config=config)
            pipeline.model = IncrementalMrDMD(
                dt=dt,
                config=config.mrdmd,
                drift_threshold=config.drift_threshold,
                keep_data=config.keep_data,
                lazy_vh=lazy,
            )
            pipeline.ingest(data[:, :600])
            pipeline.ingest(data[:, 600:1200])
            pipeline.ingest(data[:, 1200:])
            products.append(pipeline.zscores())
        a, b = products
        assert np.array_equal(a.zscores, b.zscores)
        assert np.array_equal(a.categories, b.categories)

    def test_dense_path_stays_available_and_close(self, signal):
        """The seed-exact dense path still runs and agrees numerically.

        The projected path fits level-1 amplitudes over the appended
        chunk (the node's contribution window) instead of the whole
        growing timeline, so the two paths are not bit-identical — but
        the mode structure (counts, eigenvalues of retained level-1
        modes) and reconstructions must agree closely.
        """
        data, dt = signal
        projected = _drive_model(signal, level1_path="projected", keep_data=True)
        dense = _drive_model(signal, level1_path="dense", keep_data=True)
        assert len(projected.tree) == len(dense.tree)
        err_projected = projected.reconstruction_error()
        err_dense = dense.reconstruction_error()
        scale = np.linalg.norm(data)
        assert abs(err_projected - err_dense) < 0.05 * scale


class TestRetentionPolicies:
    def test_retention_does_not_change_the_numerics(self, signal):
        # Under "none" the level-1 grid shrinks to its trailing column
        # (minimal retention), so the stored grid differs *by design*;
        # its trailing column and every numeric product must still match
        # the "all" model bit for bit.
        def full_state(policy):
            state = _drive_model(signal, retain_data=policy).state_dict()
            for key in ("keep_data", "retain_data", "data"):
                state[key] = None
            return state

        def masked(state):
            state = dict(state)
            state["sub"] = None
            state["sub_offset"] = None
            return state

        reference = full_state("all")
        for policy in ("window", "none"):
            state = full_state(policy)
            np.testing.assert_array_equal(
                np.asarray(state["sub"])[:, -1], np.asarray(reference["sub"])[:, -1]
            )
            assert (
                state["sub_offset"] + np.asarray(state["sub"]).shape[1]
                == np.asarray(reference["sub"]).shape[1]
            )
            _assert_state_equal(masked(state), masked(reference))

    def test_none_shrinks_level1_grid_to_trailing_column(self, signal):
        model = _drive_model(signal, retain_data="none")
        assert model._sub.n_cols == 1
        assert model._sub_offset > 0
        assert model.is_topology_bearing()

    def test_none_drops_raw_snapshots(self, signal):
        model = _drive_model(signal, retain_data="none")
        assert model.retained_data() is None
        assert model.retained_range() is None
        with pytest.raises(RuntimeError):
            model.reconstruction_error()
        with pytest.raises(RuntimeError):
            model.refresh()

    def test_window_keeps_trailing_snapshots_only(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(
            dt=dt, config=MrDMDConfig(max_levels=3),
            retain_data="window", retain_window=250,
        )
        model.fit(data[:, :600])
        for lo in range(600, 1500, 300):
            model.partial_fit(data[:, lo : lo + 300])
        kept = model.retained_data()
        assert kept.shape == (data.shape[0], 250)
        assert model.retained_range() == (1250, 1500)
        assert np.array_equal(kept, data[:, 1250:1500])

    def test_all_policy_matches_keep_data_alias(self, signal):
        via_alias = _drive_model(signal, keep_data=True)
        via_policy = _drive_model(signal, retain_data="all")
        assert via_alias.keep_data and via_policy.keep_data
        assert np.array_equal(via_alias.retained_data(), via_policy.retained_data())

    def test_checkpoint_preserves_retention(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(
            dt=dt, config=MrDMDConfig(max_levels=3),
            retain_data="window", retain_window=300,
        )
        model.fit(data[:, :600])
        model.partial_fit(data[:, 600:900])
        restored = IncrementalMrDMD.from_state_dict(model.state_dict())
        assert restored.retain_data == "window"
        assert restored.retain_window == 300
        assert np.array_equal(restored.retained_data(), model.retained_data())
        # and the restored model keeps streaming identically
        model.partial_fit(data[:, 900:1200])
        restored.partial_fit(data[:, 900:1200])
        _assert_state_equal(model.state_dict(), restored.state_dict())

    def test_pipeline_retention_knob(self, signal):
        data, dt = signal
        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=3), retain_data="none",
            baseline_range=(40.0, 75.0),
        )
        assert config.effective_retention == "none"
        pipeline = OnlineAnalysisPipeline(dt=dt, config=config)
        snapshot = pipeline.ingest(data[:, :600])
        assert snapshot.reconstruction_error is None
        assert pipeline.model.retain_data == "none"
        # products still work (they come from the tree, not raw data)
        assert pipeline.zscores().zscores.shape[0] == data.shape[0]

    def test_pipeline_level1_path_passthrough(self, signal):
        data, dt = signal
        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=3), level1_path="dense",
            baseline_range=(40.0, 75.0),
        )
        pipeline = OnlineAnalysisPipeline(dt=dt, config=config)
        assert pipeline.model.level1_path == "dense"
        pipeline.ingest(data[:, :600])
        pipeline.ingest(data[:, 600:900])
        # dense mode never builds the projected cross product
        assert pipeline.model._level1_cross is None
        with pytest.raises(ValueError):
            PipelineConfig(level1_path="sideways")

    def test_invalid_retention_rejected(self):
        with pytest.raises(ValueError):
            IncrementalMrDMD(dt=1.0, retain_data="sometimes")
        with pytest.raises(ValueError):
            IncrementalMrDMD(dt=1.0, retain_data="window", retain_window=0)
        with pytest.raises(ValueError):
            IncrementalMrDMD(dt=1.0, level1_path="sideways")
        with pytest.raises(ValueError):
            PipelineConfig(retain_data="sometimes")

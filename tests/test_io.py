"""Unit tests for persistence (repro.io) and the row-append iSVD extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig, compute_mrdmd
from repro.core.isvd import IncrementalSVD
from repro.io import (
    load_hardware_log,
    load_job_log,
    load_telemetry,
    load_tree,
    save_hardware_log,
    save_job_log,
    save_telemetry,
    save_tree,
)


class TestTelemetryRoundTrip:
    def test_round_trip(self, small_stream, small_machine, tmp_path):
        path = str(tmp_path / "telemetry.npz")
        save_telemetry(path, small_stream)
        loaded = load_telemetry(path, small_machine)
        assert np.array_equal(loaded.values, small_stream.values)
        assert loaded.dt == small_stream.dt
        assert np.array_equal(loaded.node_indices, small_stream.node_indices)
        assert list(loaded.sensor_names) == list(small_stream.sensor_names)
        assert loaded.start_step == small_stream.start_step

    def test_machine_mismatch_rejected(self, small_stream, tmp_path):
        from repro.telemetry import theta_machine

        path = str(tmp_path / "telemetry.npz")
        save_telemetry(path, small_stream)
        wrong = theta_machine(racks_per_row=1, n_rows=1, node_limit=8)
        with pytest.raises(ValueError):
            load_telemetry(path, wrong)


class TestLogRoundTrips:
    def test_job_log_round_trip(self, small_joblog, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        save_job_log(path, small_joblog)
        loaded = load_job_log(path)
        assert len(loaded) == len(small_joblog)
        for original, restored in zip(small_joblog, loaded):
            assert original.job_id == restored.job_id
            assert original.nodes == restored.nodes
            assert original.start_step == restored.start_step
            assert original.end_step == restored.end_step
            assert original.project == restored.project
            assert original.exit_status == restored.exit_status

    def test_hardware_log_round_trip(self, small_hwlog, tmp_path):
        path = str(tmp_path / "hw.jsonl")
        save_hardware_log(path, small_hwlog)
        loaded = load_hardware_log(path)
        assert len(loaded) == len(small_hwlog)
        for original, restored in zip(small_hwlog, loaded):
            assert original.node == restored.node
            assert original.event_type is restored.event_type
            assert original.start_step == restored.start_step
            assert original.end_step == restored.end_step
            assert original.severity == restored.severity


class TestTreeRoundTrip:
    def test_round_trip_reconstruction_identical(self, multiscale_signal, tmp_path):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=3))
        path = str(tmp_path / "tree.npz")
        save_tree(path, tree)
        loaded = load_tree(path)
        assert len(loaded) == len(tree)
        assert loaded.n_levels == tree.n_levels
        assert np.allclose(
            loaded.reconstruct(data.shape[1]), tree.reconstruct(data.shape[1])
        )

    def test_round_trip_preserves_contribution_windows(self, multiscale_signal, tmp_path):
        data, dt = multiscale_signal
        from repro.core import IncrementalMrDMD

        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :600])
        model.partial_fit(data[:, 600:800])
        path = str(tmp_path / "itree.npz")
        save_tree(path, model.tree)
        loaded = load_tree(path)
        level1 = loaded.nodes_at_level(1)[0]
        assert level1.contribution_window == (600, 800)


class TestISVDRowAppend:
    def test_add_rows_matches_batch_svd(self):
        gen = np.random.default_rng(0)
        x = gen.standard_normal((20, 3)) @ gen.standard_normal((3, 50))
        isvd = IncrementalSVD(rank=3, use_svht=False)
        isvd.initialize(x[:15])
        isvd.add_rows(x[15:])
        s_exact = np.linalg.svd(x, compute_uv=False)
        assert np.allclose(isvd.s, s_exact[:3], rtol=1e-6)
        approx = (isvd.u * isvd.s) @ isvd.vh
        assert np.allclose(approx, x, atol=1e-8)

    def test_add_single_row(self):
        gen = np.random.default_rng(1)
        x = gen.standard_normal((10, 30))
        isvd = IncrementalSVD(rank=6, use_svht=False)
        isvd.initialize(x[:9])
        isvd.add_rows(x[9])
        assert isvd.u.shape[0] == 10
        gram = isvd.u.T @ isvd.u
        assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8)

    def test_add_rows_then_columns(self):
        gen = np.random.default_rng(2)
        x = gen.standard_normal((12, 2)) @ gen.standard_normal((2, 40))
        isvd = IncrementalSVD(rank=2, use_svht=False)
        isvd.initialize(x[:10, :30])
        isvd.add_rows(x[10:, :30])
        isvd.update(x[:, 30:])
        approx = (isvd.u * isvd.s) @ isvd.vh
        assert np.allclose(approx, x, atol=1e-6)

    def test_add_rows_validation(self):
        isvd = IncrementalSVD(rank=2, use_svht=False)
        with pytest.raises(RuntimeError):
            isvd.add_rows(np.ones((1, 5)))
        isvd.initialize(np.random.default_rng(0).standard_normal((5, 8)))
        with pytest.raises(ValueError):
            isvd.add_rows(np.ones((1, 7)))
        before = isvd.u.shape[0]
        isvd.add_rows(np.zeros((0, 8)))
        assert isvd.u.shape[0] == before

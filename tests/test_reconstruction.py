"""Unit tests for reconstruction diagnostics (repro.core.reconstruction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reconstruction import (
    ReconstructionReport,
    evaluate_reconstruction,
    frobenius_error,
    noise_reduction_ratio,
    reconstruction_traces,
    relative_error,
)


class TestErrorMetrics:
    def test_frobenius_error_zero_for_identical(self):
        x = np.random.default_rng(0).standard_normal((4, 10))
        assert frobenius_error(x, x.copy()) == 0.0

    def test_frobenius_error_known_value(self):
        a = np.zeros((2, 2))
        b = np.ones((2, 2))
        assert frobenius_error(a, b) == pytest.approx(2.0)

    def test_frobenius_shape_mismatch(self):
        with pytest.raises(ValueError):
            frobenius_error(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_relative_error_scale_invariance(self):
        x = np.random.default_rng(1).standard_normal((5, 20))
        noisy = x + 0.1
        assert relative_error(x, noisy) == pytest.approx(relative_error(10 * x, 10 * noisy), rel=1e-9)

    def test_relative_error_zero_reference(self):
        zeros = np.zeros((2, 3))
        assert relative_error(zeros, zeros) == 0.0
        assert relative_error(zeros, np.ones((2, 3))) == np.inf

    def test_noise_reduction_positive_when_smoother(self):
        gen = np.random.default_rng(2)
        smooth = np.sin(np.linspace(0, 10, 200))[None, :]
        noisy = smooth + 0.5 * gen.standard_normal((1, 200))
        assert noise_reduction_ratio(noisy, smooth) > 0.0

    def test_noise_reduction_zero_for_identical(self):
        x = np.random.default_rng(3).standard_normal((2, 50))
        assert noise_reduction_ratio(x, x) == pytest.approx(0.0)

    def test_noise_reduction_short_series(self):
        assert noise_reduction_ratio(np.ones((2, 1)), np.ones((2, 1))) == 0.0


class TestEvaluateReconstruction:
    def test_report_fields(self, small_tree, multiscale_signal):
        data, _ = multiscale_signal
        report = evaluate_reconstruction(small_tree, data)
        assert isinstance(report, ReconstructionReport)
        assert report.frobenius > 0
        assert 0 <= report.relative < 1
        assert report.per_sensor_rmse.shape == (data.shape[0],)
        assert report.n_modes == small_tree.total_modes
        assert report.n_levels == small_tree.n_levels

    def test_noise_is_reduced(self, small_tree, multiscale_signal):
        data, _ = multiscale_signal
        report = evaluate_reconstruction(small_tree, data)
        assert report.noise_reduction > 0.0

    def test_worst_sensors(self, small_tree, multiscale_signal):
        data, _ = multiscale_signal
        report = evaluate_reconstruction(small_tree, data)
        worst = report.worst_sensors(3)
        assert worst.shape == (3,)
        assert report.per_sensor_rmse[worst[0]] == report.per_sensor_rmse.max()

    def test_frequency_filter_changes_error(self, small_tree, multiscale_signal):
        data, _ = multiscale_signal
        full = evaluate_reconstruction(small_tree, data)
        narrow = evaluate_reconstruction(small_tree, data, frequency_range=(0.0, 1e-6))
        assert narrow.frobenius >= full.frobenius

    def test_non_2d_rejected(self, small_tree):
        with pytest.raises(ValueError):
            evaluate_reconstruction(small_tree, np.ones(10))


class TestTraces:
    def test_traces_shapes(self, small_tree, multiscale_signal):
        data, _ = multiscale_signal
        traces = reconstruction_traces(small_tree, data, sensors=[0, 3, 5])
        assert traces["actual"].shape == (3, data.shape[1])
        assert traces["reconstructed"].shape == (3, data.shape[1])
        assert traces["time_steps"].shape == (data.shape[1],)

    def test_traces_match_matrix_rows(self, small_tree, multiscale_signal):
        data, _ = multiscale_signal
        traces = reconstruction_traces(small_tree, data, sensors=[2])
        assert np.allclose(traces["actual"][0], data[2])

"""Batched shard kernels: stacked GEMMs must be bit-for-bit the loop.

The whole point of :mod:`repro.core.batchops` is that it is a *dispatch*
change, not a numerical one: grouping same-shape iSVD updates into stacked
3-D matmuls yields exactly the factors the per-shard loop yields.  These
tests assert bitwise equality at the iSVD level, at the fleet level
(serial batched ingest vs thread fan-out), and across mid-run topology
growth, where shards diverge in shape and must fall back per-shard.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.core.batchops import ShardBatchPlanner, batch_signature
from repro.core.isvd import IncrementalSVD
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, RackSharding
from repro.service.scenarios import _row_prefix_stream
from repro.telemetry import HotNodes, TelemetryGenerator, theta_machine

CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=3),
    baseline_range=(40.0, 75.0),
)


def _make_isvd(rank: int, n_rows: int, n_cols: int, seed: int) -> IncrementalSVD:
    gen = np.random.default_rng(seed)
    isvd = IncrementalSVD(rank=rank, use_svht=False)
    isvd.update(gen.standard_normal((n_rows, n_cols)))
    return isvd


def _states_equal(a: IncrementalSVD, b: IncrementalSVD) -> bool:
    sa, sb = a.state, b.state
    return (
        np.array_equal(sa.u, sb.u)
        and np.array_equal(sa.s, sb.s)
        and np.array_equal(sa.vh, sb.vh)
    )


class TestBatchSignature:
    def test_uninitialized_is_never_batched(self):
        isvd = IncrementalSVD(rank=4)
        assert batch_signature(isvd, np.ones((8, 3))) is None

    def test_empty_and_non_2d_blocks_are_never_batched(self):
        isvd = _make_isvd(rank=4, n_rows=8, n_cols=12, seed=0)
        assert batch_signature(isvd, np.ones((8, 0))) is None
        assert batch_signature(isvd, np.ones(8)) is None

    def test_row_mismatch_is_never_batched(self):
        isvd = _make_isvd(rank=4, n_rows=8, n_cols=12, seed=0)
        assert batch_signature(isvd, np.ones((9, 3))) is None

    def test_agreeing_shards_share_a_signature(self):
        a = _make_isvd(rank=4, n_rows=8, n_cols=12, seed=0)
        b = _make_isvd(rank=4, n_rows=8, n_cols=12, seed=1)
        block = np.ones((8, 3))
        assert batch_signature(a, block) == batch_signature(b, block)

    def test_rank_divergence_splits_the_group(self):
        a = _make_isvd(rank=4, n_rows=8, n_cols=12, seed=0)
        b = _make_isvd(rank=5, n_rows=8, n_cols=12, seed=1)
        block = np.ones((8, 3))
        assert batch_signature(a, block) != batch_signature(b, block)


class TestPlannerParity:
    def test_min_group_validation(self):
        with pytest.raises(ValueError):
            ShardBatchPlanner(min_group=1)

    def test_grouped_updates_are_bitwise_identical_to_looping(self):
        gen = np.random.default_rng(42)
        batched = [_make_isvd(rank=6, n_rows=24, n_cols=40, seed=s) for s in range(5)]
        looped = [copy.deepcopy(isvd) for isvd in batched]
        planner = ShardBatchPlanner()
        for _round in range(6):
            blocks = [gen.standard_normal((24, 8)) for _ in batched]
            stats = planner.run(list(zip(batched, blocks)))
            assert stats["n_grouped"] == len(batched)
            assert stats["n_fallback"] == 0
            for isvd, block in zip(looped, blocks):
                isvd.update(block)
            for a, b in zip(batched, looped):
                assert _states_equal(a, b)
                assert a.current_rank == b.current_rank
                assert a.n_columns == b.n_columns

    def test_divergent_member_falls_back_and_stays_correct(self):
        gen = np.random.default_rng(7)
        same = [_make_isvd(rank=6, n_rows=24, n_cols=40, seed=s) for s in range(3)]
        odd = _make_isvd(rank=6, n_rows=30, n_cols=40, seed=9)  # different P
        looped = [copy.deepcopy(isvd) for isvd in (*same, odd)]
        blocks = [gen.standard_normal((24, 8)) for _ in same]
        odd_block = gen.standard_normal((30, 8))
        stats = ShardBatchPlanner().run(
            list(zip(same, blocks)) + [(odd, odd_block)]
        )
        assert stats == {
            "n_shards": 4, "n_grouped": 3, "n_fallback": 1, "n_groups": 1,
        }
        for isvd, block in zip(looped, (*blocks, odd_block)):
            isvd.update(block)
        for a, b in zip((*same, odd), looped):
            assert _states_equal(a, b)

    def test_singleton_group_takes_the_plain_path(self):
        isvd = _make_isvd(rank=4, n_rows=8, n_cols=12, seed=0)
        twin = copy.deepcopy(isvd)
        block = np.random.default_rng(1).standard_normal((8, 3))
        stats = ShardBatchPlanner().run([(isvd, block)])
        assert stats["n_grouped"] == 0 and stats["n_fallback"] == 1
        twin.update(block)
        assert _states_equal(isvd, twin)

    def test_empty_round_is_a_noop(self):
        assert ShardBatchPlanner().run([]) == {
            "n_shards": 0, "n_grouped": 0, "n_fallback": 0, "n_groups": 0,
        }


@pytest.fixture(scope="module")
def batch_stream():
    machine = theta_machine(racks_per_row=1, n_rows=2, node_limit=64)
    generator = TelemetryGenerator(machine, seed=23, utilization_target=0.3)
    return generator.generate(
        560,
        sensors=["cpu_temp", "node_power"],
        anomalies=[HotNodes(node_indices=(10, 11), start=260, delta=12.0)],
    )


def _drive_fleet(stream, backend, *, grow_at=None):
    """Ingest the stream; optionally stream extra sensors in mid-run.

    The serial backend dispatches through the batched kernels; thread
    fan-out is the unbatched reference.  With ``grow_at`` the second
    sensor's rows join at that chunk, which makes shard shapes diverge
    (fallback) and then re-converge (re-batched).
    """
    n_rows = stream.n_rows
    live = n_rows // 2 if grow_at is not None else n_rows
    monitor = FleetMonitor.from_stream(
        _row_prefix_stream(stream, live) if grow_at is not None else stream,
        policy=RackSharding(),
        config=CONFIG,
        executor=backend,
        max_workers=2,
    )
    snapshots = []
    with monitor:
        monitor.ingest(stream.values[:live, :240])
        for index, (lo, hi) in enumerate(
            ((240, 320), (320, 400), (400, 480), (480, 560)), start=1
        ):
            snapshots.append(monitor.ingest(stream.values[:live, lo:hi]))
            if grow_at == index:
                monitor.add_sensors(
                    np.asarray(stream.sensor_names)[live:],
                    np.asarray(stream.node_indices)[live:],
                    policy=RackSharding(),
                    machine=stream.machine,
                )
                live = n_rows
        rack_values = monitor.rack_values()
    return snapshots, rack_values


def _assert_fleet_parity(run_a, run_b):
    snaps_a, racks_a = run_a
    snaps_b, racks_b = run_b
    assert racks_a == racks_b
    for snap_a, snap_b in zip(snaps_a, snaps_b):
        assert snap_a.step == snap_b.step
        assert snap_a.total_modes == snap_b.total_modes
        for shard_id, pipe_a in snap_a.shard_snapshots.items():
            pipe_b = snap_b.shard_snapshots[shard_id]
            assert pipe_a.n_modes == pipe_b.n_modes
            if pipe_a.update is not None:
                assert pipe_a.update.drift == pipe_b.update.drift


def test_serial_batched_matches_thread_fanout(batch_stream):
    """Fleet products are bitwise identical whichever dispatch ran."""
    _assert_fleet_parity(
        _drive_fleet(batch_stream, "serial"), _drive_fleet(batch_stream, "thread")
    )


def test_mid_run_growth_falls_back_then_rebatches(batch_stream):
    """add_sensors mid-run diverges shard shapes; parity must survive."""
    _assert_fleet_parity(
        _drive_fleet(batch_stream, "serial", grow_at=2),
        _drive_fleet(batch_stream, "thread", grow_at=2),
    )

"""Unit tests for the visualization subpackage (repro.viz)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDSpectrum, compute_mrdmd
from repro.telemetry import polaris_machine, theta_machine
from repro.viz import (
    DivergingTurbo,
    NodeGeometry,
    RackLayout,
    RackView,
    SpectrumPlot,
    SVGCanvas,
    TimeSeriesView,
    parse_layout_spec,
    parse_range,
    to_hex,
    turbo_rgb,
)


class TestColormap:
    def test_turbo_rgb_bounds(self):
        rgb = turbo_rgb(np.linspace(0, 1, 100))
        assert rgb.shape == (100, 3)
        assert rgb.min() >= 0.0 and rgb.max() <= 1.0

    def test_turbo_endpoints_are_blue_and_red(self):
        # The polynomial approximation is least accurate exactly at 0/1, so
        # probe just inside the ends.
        low = turbo_rgb(0.05)
        high = turbo_rgb(0.95)
        assert low[2] > low[0]          # blue end
        assert high[0] > high[2]        # red end

    def test_turbo_scalar_clipping(self):
        assert turbo_rgb(-1.0).shape == (3,)
        assert np.allclose(turbo_rgb(-1.0), turbo_rgb(0.0))

    def test_to_hex(self):
        assert to_hex(np.array([1.0, 0.0, 0.0])) == "#ff0000"
        assert to_hex(np.array([0.0, 0.0, 0.0])) == "#000000"
        with pytest.raises(ValueError):
            to_hex(np.array([1.0, 0.0]))

    def test_diverging_turbo_normalisation(self):
        cmap = DivergingTurbo(limit=5.0)
        assert cmap.normalize(0.0) == pytest.approx(0.5)
        assert cmap.normalize(-5.0) == pytest.approx(0.0)
        assert cmap.normalize(10.0) == pytest.approx(1.0)
        assert cmap.hex(0.0).startswith("#")
        with pytest.raises(ValueError):
            DivergingTurbo(limit=0.0)

    def test_diverging_glyphs(self):
        cmap = DivergingTurbo(limit=5.0)
        assert cmap.glyph(0.0) == "."
        assert cmap.glyph(3.0) == "#"
        assert cmap.glyph(1.5) == "+"
        assert cmap.glyph(-3.0) == "="
        assert cmap.glyph(-1.5) == "-"


class TestLayoutParsing:
    def test_parse_range(self):
        assert parse_range("0-10") == (0, 10)
        assert parse_range("3") == (3, 3)
        with pytest.raises(ValueError):
            parse_range("abc")
        with pytest.raises(ValueError):
            parse_range("5-2")

    def test_parse_paper_example(self):
        parsed = parse_layout_spec("xc40 1 2 row0-1:0-10 2 c:0-7 1 s:0-7 1 b:0 n:0")
        assert parsed.system == "xc40"
        assert parsed.n_rows == 2
        assert parsed.racks_per_row == 11
        assert parsed.cabinets.count == 8
        assert parsed.slots.count == 8
        assert parsed.blades.count == 1
        assert parsed.nodes.count == 1
        assert parsed.rack_row_alignment == 1
        assert parsed.rack_col_alignment == 2

    def test_parse_two_alignment_numbers(self):
        parsed = parse_layout_spec("sys 1 1 row0:0-3 2 1 c:0-1 1 1 s:0-1 1 1 b:0 n:0")
        assert parsed.cabinets.row_alignment == 2
        assert parsed.cabinets.col_alignment == 1

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_layout_spec("too short")
        with pytest.raises(ValueError):
            parse_layout_spec("sys x y row0:0 c:0 s:0 b:0 n:0")
        with pytest.raises(ValueError):
            parse_layout_spec("sys 1 1 nope c:0 s:0 b:0 n:0")
        with pytest.raises(ValueError):
            parse_layout_spec("sys 1 1 row0:0 oops! c:0 s:0 b:0 n:0")


class TestRackLayout:
    def test_from_machine_node_count_matches(self):
        machine = theta_machine(racks_per_row=2, node_limit=100)
        layout = RackLayout.from_machine(machine)
        assert layout.n_nodes == machine.n_nodes

    def test_geometries_are_disjoint(self):
        machine = theta_machine(racks_per_row=1, n_rows=1, node_limit=48)
        layout = RackLayout.from_machine(machine)
        centers = layout.node_positions()
        # No two nodes share the same centre.
        assert len({(round(x, 3), round(y, 3)) for x, y in centers}) == layout.n_nodes

    def test_geometry_lookup_and_bounds(self):
        layout = RackLayout.from_spec("sys 1 1 row0:0-1 1 c:0-1 1 s:0-3 1 b:0 n:0-1")
        geom = layout.geometry_of(0)
        assert isinstance(geom, NodeGeometry)
        width, height = layout.bounds
        assert width > 0 and height > 0
        for g in layout.geometries:
            assert 0 <= g.x < width and 0 <= g.y < height

    def test_rack_extents_cover_every_rack(self):
        machine = polaris_machine(racks_per_row=3, n_rows=1, node_limit=42)
        layout = RackLayout.from_machine(machine)
        extents = layout.rack_extents()
        assert len(extents) == 3

    def test_node_limit_truncates(self):
        layout = RackLayout.from_spec("sys 1 1 row0:0 1 c:0-3 1 s:0-3 1 b:0 n:0", node_limit=5)
        assert layout.n_nodes == 5

    def test_alignment_flips_change_positions(self):
        ltr = RackLayout.from_spec("sys 1 1 row0:0-3 1 c:0 1 s:0-3 1 b:0 n:0")
        rtl = RackLayout.from_spec("sys -1 1 row0:0-3 1 c:0 1 s:0-3 1 b:0 n:0")
        assert not np.allclose(ltr.node_positions(), rtl.node_positions())


class TestSVGCanvas:
    def test_primitives_and_render(self):
        canvas = SVGCanvas(100, 80)
        canvas.rect(0, 0, 10, 10, fill="#ff0000", title="node & 1")
        canvas.circle(50, 40, 5)
        canvas.line(0, 0, 100, 80)
        canvas.polyline([(0, 0), (10, 10), (20, 5)])
        canvas.text(5, 5, "hello <world>")
        svg = canvas.render()
        assert svg.startswith("<svg")
        assert "node &amp; 1" in svg
        assert "&lt;world&gt;" in svg
        assert canvas.n_elements == 6  # background + 5 primitives

    def test_save(self, tmp_path):
        canvas = SVGCanvas(10, 10)
        path = canvas.save(str(tmp_path / "out.svg"))
        assert (tmp_path / "out.svg").read_text().startswith("<svg")

    def test_validation(self):
        with pytest.raises(ValueError):
            SVGCanvas(0, 10)
        canvas = SVGCanvas(10, 10)
        with pytest.raises(ValueError):
            canvas.polyline([(0, 0)])


class TestRackView:
    @pytest.fixture()
    def view(self):
        machine = theta_machine(racks_per_row=1, n_rows=1, node_limit=32)
        return RackView(RackLayout.from_machine(machine), title="test view")

    def test_svg_contains_one_rect_per_node(self, view):
        values = {i: float(i % 7 - 3) for i in range(32)}
        svg = view.render_svg(values)
        # 32 node rects + background + colourbar segments + title text
        assert svg.count("<rect") >= 32

    def test_svg_outlines(self, view):
        values = np.zeros(32)
        svg = view.render_svg(values, outlined_nodes=[1], secondary_outlined_nodes=[2])
        assert "#cc0000" in svg
        assert 'stroke="#000000" stroke-width="1.400"' in svg

    def test_missing_nodes_grey(self, view):
        svg = view.render_svg({0: 1.0})
        assert "#e8e8e8" in svg

    def test_values_array_input(self, view):
        svg = view.render_svg(np.linspace(-5, 5, 32))
        assert svg.count("<rect") >= 32
        with pytest.raises(ValueError):
            view.render_svg(np.zeros((2, 2)))

    def test_save_svg(self, view, tmp_path):
        path = view.save_svg(str(tmp_path / "rack.svg"), np.zeros(32))
        assert (tmp_path / "rack.svg").exists()

    def test_ascii_rendering(self, view):
        values = np.zeros(32)
        values[3] = 4.0
        art = view.render_ascii(values, outlined_nodes=[5])
        assert "#" in art
        assert "!" in art
        assert "." in art


class TestPlots:
    def test_timeseries_svg(self, tmp_path):
        view = TimeSeriesView()
        series = {
            "actual": np.sin(np.linspace(0, 10, 200)) * 5 + 50,
            "reconstructed": np.sin(np.linspace(0, 10, 200)) * 4.5 + 50,
        }
        svg = view.render_svg(series, title="Fig 3", y_label="degC")
        assert svg.count("<polyline") == 2
        assert "Fig 3" in svg
        view.save_svg(str(tmp_path / "ts.svg"), series)
        assert (tmp_path / "ts.svg").exists()
        exported = TimeSeriesView.export_data(series)
        assert len(exported["actual"]) == 200
        with pytest.raises(ValueError):
            view.render_svg({})

    def test_spectrum_plot(self, tmp_path, multiscale_signal):
        data, dt = multiscale_signal
        spec = MrDMDSpectrum(compute_mrdmd(data, dt, max_levels=3), label="case")
        plot = SpectrumPlot()
        svg = plot.render_svg(spec, title="Fig 5")
        assert svg.count("<circle") == spec.n_modes
        svg_two = plot.render_svg([spec, spec.filter((0.0, 1.0), label="other")])
        assert "case" in svg_two and "other" in svg_two
        plot.save_svg(str(tmp_path / "spec.svg"), spec)
        assert (tmp_path / "spec.svg").exists()
        with pytest.raises(ValueError):
            plot.render_svg([])

    def test_spectrum_plot_frequency_limit(self, multiscale_signal):
        data, dt = multiscale_signal
        spec = MrDMDSpectrum(compute_mrdmd(data, dt, max_levels=3))
        plot = SpectrumPlot()
        limited = plot.render_svg(spec, frequency_limit=1e-9)
        assert limited.count("<circle") <= spec.n_modes

"""Sharding policies: valid partitions, rack/metric grouping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import (
    MetricSharding,
    RackSharding,
    ShardSpec,
    SingleShard,
    validate_partition,
)
from repro.service.scenarios import quiet_fleet
from repro.telemetry import TelemetryGenerator


@pytest.fixture(scope="module")
def fleet_stream():
    """Two-channel telemetry over the 4-rack scenario machine."""
    scenario = quiet_fleet()
    generator = TelemetryGenerator(scenario.machine, seed=2, utilization_target=0.3)
    return generator.generate(64, sensors=["cpu_temp", "node_power"])


def test_single_shard_covers_everything(fleet_stream):
    specs = SingleShard().partition_stream(fleet_stream)
    assert len(specs) == 1
    validate_partition(specs, fleet_stream.n_rows)
    assert specs[0].n_rows == fleet_stream.n_rows


def test_rack_sharding_partitions_by_rack(fleet_stream):
    specs = RackSharding().partition_stream(fleet_stream)
    machine = fleet_stream.machine
    assert len(specs) == machine.n_racks
    validate_partition(specs, fleet_stream.n_rows)
    for spec in specs:
        racks = {machine.rack_of_node(int(n)) for n in spec.node_of_row}
        assert len(racks) == 1, "a rack shard must hold exactly one rack"


def test_rack_sharding_groups_racks(fleet_stream):
    specs = RackSharding(racks_per_shard=2).partition_stream(fleet_stream)
    assert len(specs) == fleet_stream.machine.n_racks // 2
    validate_partition(specs, fleet_stream.n_rows)


def test_rack_sharding_requires_machine(fleet_stream):
    with pytest.raises(ValueError, match="machine"):
        RackSharding().partition(
            np.asarray(fleet_stream.sensor_names),
            fleet_stream.node_indices,
            None,
        )


def test_metric_sharding_one_shard_per_channel(fleet_stream):
    specs = MetricSharding().partition_stream(fleet_stream)
    assert {s.shard_id for s in specs} == {"metric-cpu_temp", "metric-node_power"}
    validate_partition(specs, fleet_stream.n_rows)
    for spec in specs:
        assert len(set(spec.sensor_names)) == 1


def test_validate_partition_rejects_gaps():
    spec = ShardSpec(shard_id="s", row_indices=np.arange(3), node_of_row=np.arange(3))
    with pytest.raises(ValueError, match="exactly once"):
        validate_partition([spec], 5)


def test_validate_partition_rejects_overlap():
    a = ShardSpec(shard_id="a", row_indices=np.arange(3), node_of_row=np.arange(3))
    b = ShardSpec(shard_id="b", row_indices=np.arange(2, 5), node_of_row=np.arange(3))
    with pytest.raises(ValueError, match="exactly once"):
        validate_partition([a, b], 5)


def test_shard_spec_round_trip():
    spec = ShardSpec(
        shard_id="rack-3",
        row_indices=np.array([4, 5, 6]),
        node_of_row=np.array([1, 1, 2]),
        sensor_names=("cpu_temp",) * 3,
    )
    restored = ShardSpec.from_dict(spec.to_dict())
    assert restored.shard_id == spec.shard_id
    assert np.array_equal(restored.row_indices, spec.row_indices)
    assert np.array_equal(restored.node_of_row, spec.node_of_row)
    assert restored.sensor_names == spec.sensor_names


def test_shard_take_selects_rows():
    spec = ShardSpec(shard_id="s", row_indices=np.array([0, 2]), node_of_row=np.array([0, 1]))
    values = np.arange(12, dtype=float).reshape(4, 3)
    assert np.array_equal(spec.take(values), values[[0, 2], :])

"""Unit tests for the online analysis pipeline and case-study builders (repro.pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.core.baseline import ZScoreCategory
from repro.pipeline import (
    OnlineAnalysisPipeline,
    PipelineConfig,
    build_case_study_1,
    build_case_study_2,
    build_node_down_scenario,
)


class TestPipelineConfig:
    def test_defaults(self):
        config = PipelineConfig()
        assert config.baseline_range == (46.0, 57.0)
        assert config.zscore_near == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(power_quantile=1.5)
        with pytest.raises(ValueError):
            PipelineConfig(baseline_range=(10.0, 5.0))
        with pytest.raises(ValueError):
            PipelineConfig(zscore_near=2.0, zscore_extreme=1.0)


@pytest.fixture(scope="module")
def pipeline_and_stream(small_stream):
    config = PipelineConfig(mrdmd=MrDMDConfig(max_levels=4), baseline_range=(46.0, 57.0))
    pipeline = OnlineAnalysisPipeline.from_stream(small_stream, config)
    pipeline.ingest(small_stream.values[:, :300])
    pipeline.ingest(small_stream.values[:, 300:])
    return pipeline, small_stream


class TestOnlinePipeline:
    def test_ingest_snapshots(self, small_stream):
        pipeline = OnlineAnalysisPipeline.from_stream(
            small_stream, PipelineConfig(mrdmd=MrDMDConfig(max_levels=3))
        )
        first = pipeline.ingest(small_stream.values[:, :300])
        assert first.update is None
        assert first.n_snapshots == 300
        second = pipeline.ingest(small_stream.values[:, 300:])
        assert second.update is not None
        assert second.n_snapshots == small_stream.n_timesteps
        assert second.reconstruction_error is not None

    def test_spectrum_and_reconstruction(self, pipeline_and_stream):
        pipeline, stream = pipeline_and_stream
        spectrum = pipeline.spectrum(label="test")
        assert spectrum.n_modes > 0
        recon = pipeline.reconstruction()
        assert recon.shape == stream.values.shape
        report = pipeline.reconstruction_report(stream.values)
        assert report.frobenius > 0
        assert report.relative < 0.2

    def test_zscores_detect_injected_hot_nodes(self, pipeline_and_stream):
        pipeline, stream = pipeline_and_stream
        node_scores = pipeline.node_zscores()
        hot = set(int(n) for n in node_scores.hot_nodes())
        assert {5, 6}.issubset(hot)

    def test_rack_values_dictionary(self, pipeline_and_stream):
        pipeline, _ = pipeline_and_stream
        values = pipeline.rack_values()
        assert isinstance(values, dict)
        assert len(values) == 64
        assert all(np.isfinite(v) for v in values.values())

    def test_alignment_report(self, pipeline_and_stream, small_hwlog, small_joblog):
        pipeline, _ = pipeline_and_stream
        report = pipeline.alignment_report(hwlog=small_hwlog, joblog=small_joblog)
        assert report.hardware is not None
        assert report.jobs is not None
        assert report.node_scores.node_indices.size == 64

    def test_node_zscores_requires_mapping(self, small_stream):
        pipeline = OnlineAnalysisPipeline(
            dt=small_stream.dt, config=PipelineConfig(mrdmd=MrDMDConfig(max_levels=3))
        )
        pipeline.ingest(small_stream.values[:, :300])
        with pytest.raises(RuntimeError):
            pipeline.node_zscores()

    def test_time_range_scoring(self, pipeline_and_stream):
        pipeline, stream = pipeline_and_stream
        early = pipeline.node_zscores(time_range=(0, 150))
        late = pipeline.node_zscores(time_range=(450, stream.n_timesteps))
        # Node 5 becomes hot only after step 200.
        idx = int(np.where(early.node_indices == 5)[0][0])
        assert late.zscores[idx] > early.zscores[idx]

    def test_power_quantile_filtering(self, small_stream):
        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=3), power_quantile=0.5
        )
        pipeline = OnlineAnalysisPipeline.from_stream(small_stream, config)
        pipeline.ingest(small_stream.values[:, :300])
        full = OnlineAnalysisPipeline.from_stream(
            small_stream, PipelineConfig(mrdmd=MrDMDConfig(max_levels=3))
        )
        full.ingest(small_stream.values[:, :300])
        assert pipeline.spectrum().n_modes <= full.spectrum().n_modes

    def test_power_quantile_threshold_is_cached_per_revision(self, small_stream):
        import numpy as _np
        from repro.core.spectrum import MrDMDSpectrum

        config = PipelineConfig(mrdmd=MrDMDConfig(max_levels=3), power_quantile=0.5)
        pipeline = OnlineAnalysisPipeline.from_stream(small_stream, config)
        pipeline.ingest(small_stream.values[:, :300])

        expected = float(
            _np.quantile(MrDMDSpectrum(pipeline.model.tree).power, 0.5)
        )
        assert pipeline._min_power_threshold() == expected
        revision = pipeline.model.tree.revision
        # Repeated calls hit the cache: same tree/revision recorded, same value.
        ref, rev, quantile, value = pipeline._min_power_cache
        assert ref() is pipeline.model.tree
        assert (rev, quantile, value) == (revision, 0.5, expected)
        assert pipeline._min_power_threshold() == expected
        assert pipeline.model.tree.revision == revision

        # An update edits the tree, bumping the revision and the threshold.
        pipeline.ingest(small_stream.values[:, 300:450])
        assert pipeline.model.tree.revision > revision
        refreshed = float(
            _np.quantile(MrDMDSpectrum(pipeline.model.tree).power, 0.5)
        )
        assert pipeline._min_power_threshold() == refreshed
        assert pipeline._min_power_cache[1] == pipeline.model.tree.revision

    def test_threshold_cache_survives_refresh_swapping_trees(self, small_stream):
        # refresh() installs a brand-new tree whose revision counter
        # restarts; the cache must miss even when the counters collide.
        import numpy as _np
        from repro.core.spectrum import MrDMDSpectrum

        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=3), power_quantile=0.5, keep_data=True
        )
        pipeline = OnlineAnalysisPipeline.from_stream(small_stream, config)
        pipeline.ingest(small_stream.values[:, :300])
        pipeline.ingest(small_stream.values[:, 300:450])
        pipeline._min_power_threshold()  # populate the cache

        pipeline.model.refresh()
        expected = float(
            _np.quantile(MrDMDSpectrum(pipeline.model.tree).power, 0.5)
        )
        assert pipeline._min_power_threshold() == expected

    def test_cached_spectrum_matches_uncached_semantics(self, small_stream):
        from repro.core.spectrum import MrDMDSpectrum

        config = PipelineConfig(mrdmd=MrDMDConfig(max_levels=3), power_quantile=0.5)
        pipeline = OnlineAnalysisPipeline.from_stream(small_stream, config)
        pipeline.ingest(small_stream.values[:, :300])
        pipeline.ingest(small_stream.values[:, 300:450])

        cached = pipeline.spectrum()
        reference = MrDMDSpectrum(pipeline.model.tree).high_power_modes(0.5)
        assert cached.n_modes == reference.n_modes
        assert np.array_equal(cached.power, reference.power)
        assert np.array_equal(cached.frequencies, reference.frequencies)


class TestWindowedProductsAndBaseline:
    def _fresh_pipeline(self, stream, **config_overrides):
        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=4),
            baseline_range=(46.0, 57.0),
            **config_overrides,
        )
        pipeline = OnlineAnalysisPipeline.from_stream(stream, config)
        pipeline.ingest(stream.values[:, :300])
        pipeline.ingest(stream.values[:, 300:])
        return pipeline

    def test_windowed_reconstruction_matches_slice(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream)
        full = pipeline.reconstruction()
        for lo, hi in [(0, 50), (250, 350), (500, 600)]:
            windowed = pipeline.reconstruction(time_range=(lo, hi))
            assert windowed.shape == (full.shape[0], hi - lo)
            assert np.allclose(windowed, full[:, lo:hi], rtol=1e-12, atol=1e-12)

    def test_reconstruction_window_is_cached_per_revision(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream)
        first = pipeline._reconstruction_window((400, 600))
        assert pipeline._reconstruction_window((400, 600)) is first, "cache hit"
        revision = pipeline.model.tree.revision
        pipeline.ingest(small_stream.values[:, 300:360])
        assert pipeline.model.tree.revision > revision
        refreshed = pipeline._reconstruction_window((400, 600))
        assert refreshed is not first, "tree edits must invalidate the cache"

    def test_reconstruction_cache_is_bounded(self, small_stream):
        from repro.pipeline.online import RECONSTRUCTION_CACHE_SIZE

        pipeline = self._fresh_pipeline(small_stream)
        for lo in range(0, 3 * RECONSTRUCTION_CACHE_SIZE):
            pipeline._reconstruction_window((lo, lo + 10))
        assert len(pipeline._recon_cache) <= RECONSTRUCTION_CACHE_SIZE

    def test_windowed_zscores_match_full_reconstruction_scoring(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream)
        baseline = pipeline.fit_baseline()
        windowed = pipeline.zscores(time_range=(450, 600))
        reference = baseline.score(
            pipeline.reconstruction(), reducer="mean", time_range=(450, 600)
        )
        assert np.allclose(windowed.zscores, reference.zscores, rtol=1e-12, atol=1e-12)

    def test_empty_time_range_rejected(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream)
        with pytest.raises(ValueError, match="selects no columns"):
            pipeline.zscores(time_range=(600, 600))

    # -- baseline staleness (regression: the baseline used to be fitted
    # once, lazily, and never refreshed as more data streamed in) -------- #
    def test_stale_baseline_is_refit_by_default(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream)
        pipeline.zscores()  # lazy first fit
        first = pipeline._baseline
        assert not pipeline.baseline_is_stale()
        pipeline.ingest(small_stream.values[:, 300:400])
        assert pipeline.baseline_is_stale()
        pipeline.zscores()
        assert pipeline._baseline is not first, "stale baseline must be refit"
        assert not pipeline.baseline_is_stale()

    def test_baseline_refit_never_keeps_first_fit(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream, baseline_refit="never")
        pipeline.zscores()
        first = pipeline._baseline
        pipeline.ingest(small_stream.values[:, 300:400])
        pipeline.zscores()
        assert pipeline._baseline is first
        assert pipeline.baseline_is_stale(), "staleness is still reported"

    def test_pinned_baseline_survives_updates(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream)
        pinned = pipeline.fit_baseline(small_stream.values[:, :300])
        pipeline.ingest(small_stream.values[:, 300:400])
        pipeline.zscores()
        assert pipeline._baseline is pinned, "explicit-data baselines never auto-refit"

    def test_refit_replays_the_original_spec(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream)
        pipeline.fit_baseline(value_range=(40.0, 80.0), time_range=(0, 250))
        pipeline.ingest(small_stream.values[:, 300:400])
        pipeline.zscores()
        assert pipeline._baseline_spec.value_range == (40.0, 80.0)
        assert pipeline._baseline_spec.time_range == (0, 250)

    def test_invalid_baseline_refit_rejected(self):
        with pytest.raises(ValueError, match="baseline_refit"):
            PipelineConfig(baseline_refit="sometimes")

    # -- pickling (regression: memoised weakref caches used to make a
    # queried pipeline unpicklable, breaking process fan-out) ------------ #
    def test_pipeline_picklable_after_queries(self, small_stream):
        import pickle

        pipeline = self._fresh_pipeline(small_stream)
        reference = pipeline.node_zscores(time_range=(450, 600))
        clone = pickle.loads(pickle.dumps(pipeline))
        assert clone._min_power_cache is None
        assert clone._recon_cache == {}
        scores = clone.node_zscores(time_range=(450, 600))
        assert np.array_equal(scores.zscores, reference.zscores)
        assert not clone.baseline_is_stale(), "freshness survives the copy"

    def test_pickled_copy_preserves_staleness_verdict(self, small_stream):
        import pickle

        pipeline = self._fresh_pipeline(small_stream, baseline_refit="never")
        pipeline.zscores()
        pipeline.ingest(small_stream.values[:, 300:360])
        assert pipeline.baseline_is_stale()
        clone = pickle.loads(pickle.dumps(pipeline))
        assert clone.baseline_is_stale(), "stale baselines must stay stale"

    def test_state_dict_preserves_baseline_provenance(self, small_stream):
        pipeline = self._fresh_pipeline(small_stream)
        pipeline.zscores()
        restored = OnlineAnalysisPipeline.from_state_dict(pipeline.state_dict())
        assert not restored.baseline_is_stale()
        assert restored._baseline_spec.value_range == (46.0, 57.0)
        assert np.array_equal(
            restored.zscores(time_range=(450, 600)).zscores,
            pipeline.zscores(time_range=(450, 600)).zscores,
        )


class TestCaseStudyBuilders:
    def test_case_study_1_structure(self):
        scenario = build_case_study_1(scale=0.05, n_timesteps=600, initial_steps=300)
        assert scenario.stream.values.shape[1] == 600
        assert scenario.initial_block().shape[1] == 300
        assert scenario.streaming_block().shape[1] == 300
        assert scenario.selected_nodes.size > 0
        assert scenario.hot_nodes.size >= 2
        assert set(scenario.hot_nodes).issubset(set(scenario.selected_nodes))
        assert len(scenario.projects) == 2
        assert scenario.baseline_range == (46.0, 57.0)

    def test_case_study_1_hot_nodes_are_hotter(self):
        scenario = build_case_study_1(scale=0.05, n_timesteps=600, initial_steps=300)
        values = scenario.stream.values
        node_idx = scenario.stream.node_indices
        hot_rows = np.isin(node_idx, scenario.hot_nodes)
        late = slice(450, 600)
        assert values[hot_rows, late].mean() > values[~hot_rows, late].mean() + 5.0

    def test_case_study_1_validation(self):
        with pytest.raises(ValueError):
            build_case_study_1(scale=0.0)
        with pytest.raises(ValueError):
            build_case_study_1(initial_steps=100, n_timesteps=100)

    def test_case_study_2_structure(self):
        scenario = build_case_study_2(scale=0.03, n_timesteps=480)
        assert scenario.stream.values.shape[1] == 480
        assert len(scenario.window_baselines) == 2
        assert scenario.initial_steps == 240
        assert scenario.selected_nodes.size == scenario.machine.n_nodes

    def test_case_study_2_first_window_hotter(self):
        scenario = build_case_study_2(scale=0.03, n_timesteps=480)
        half = scenario.initial_steps
        values = scenario.stream.values
        assert values[:, :half].mean() > values[:, half:].mean()

    def test_node_down_scenario(self):
        machine, hwlog = build_node_down_scenario(scale=0.2, n_timesteps=3000)
        hours = hwlog.downtime_hours(machine.n_nodes, machine.dt_seconds)
        assert hours.shape == (machine.n_nodes,)
        assert hours.sum() > 0
        with pytest.raises(ValueError):
            build_node_down_scenario(scale=0.0)

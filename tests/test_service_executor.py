"""Persistent-executor parity: serial vs thread vs process fleet monitors.

The tentpole guarantee of the shard-executor subsystem: every backend
produces **identical** analysis products — fleet snapshots, rack values,
spectra, checkpoint payloads — because the per-shard computation is the
same code on the same NumPy, only scheduled differently.  These tests pin
that, plus the executor lifecycle (lazy start, hold-open, close-lands-state,
context manager) and the overlapped ``ingest_and_alert`` path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.pipeline import PipelineConfig
from repro.service import (
    FleetMonitor,
    RackSharding,
    RingBufferSink,
    load_checkpoint,
    save_checkpoint,
)
from repro.service.alerts import AlertEngine, default_rules
from repro.service.scenarios import quiet_fleet
from repro.telemetry import HotNodes, TelemetryGenerator

BACKENDS = ["serial", "thread", "process"]

CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=4),
    baseline_range=(40.0, 75.0),
)


@pytest.fixture(scope="module")
def fleet_stream():
    scenario = quiet_fleet()
    generator = TelemetryGenerator(scenario.machine, seed=17, utilization_target=0.3)
    return generator.generate(
        480,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(33, 34), start=220, delta=14.0)],
    )


def _drive(stream, backend, *, with_engine=False):
    """Run the reference two-chunk workload on one backend; close at the end."""
    engine = AlertEngine(rules=default_rules(), cooldown=60) if with_engine else None
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        alert_engine=engine,
        executor=backend,
        max_workers=2,
    )
    with monitor:
        snapshots = [
            monitor.ingest(stream.values[:, :240]),
            monitor.ingest(stream.values[:, 240:]),
        ]
        products = {
            "snapshots": snapshots,
            "rack_values": monitor.rack_values(),
            "windowed": monitor.rack_values(time_range=(300, 480)),
            "total_modes": monitor.total_modes,
            "spectra_power": {
                sid: spec.power for sid, spec in monitor.spectra().items()
            },
            "states": monitor.shard_state_dicts(),
        }
    return monitor, products


@pytest.fixture(scope="module")
def backend_products(fleet_stream):
    return {backend: _drive(fleet_stream, backend) for backend in BACKENDS}


def _assert_state_equal(a, b, path=""):
    """Deep bit-for-bit comparison of nested checkpoint state dicts."""
    assert type(a) is type(b), path
    if isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for key in a:
            _assert_state_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_state_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape, path
        assert np.array_equal(a, b, equal_nan=True), path
    else:
        assert a == b, path


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backend_products_match_serial(backend_products, backend):
    _, reference = backend_products["serial"]
    _, products = backend_products[backend]
    assert products["snapshots"] == reference["snapshots"]
    assert products["rack_values"] == reference["rack_values"]
    assert products["windowed"] == reference["windowed"]
    assert products["total_modes"] == reference["total_modes"]
    for sid, power in products["spectra_power"].items():
        assert np.array_equal(power, reference["spectra_power"][sid])


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backend_checkpoint_state_matches_serial(backend_products, backend):
    _, reference = backend_products["serial"]
    _, products = backend_products[backend]
    assert products["states"].keys() == reference["states"].keys()
    for sid in products["states"]:
        _assert_state_equal(products["states"][sid], reference["states"][sid], sid)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backend_checkpoint_files_round_trip(backend_products, backend, tmp_path):
    """save/load through the executor restores serial-identical products."""
    monitor, _ = backend_products[backend]
    serial_monitor, reference = backend_products["serial"]
    save_checkpoint(str(tmp_path / backend), monitor)
    save_checkpoint(str(tmp_path / "serial"), serial_monitor)
    restored = load_checkpoint(str(tmp_path / backend))
    restored_serial = load_checkpoint(str(tmp_path / "serial"))
    assert restored.step == restored_serial.step
    assert restored.rack_values() == restored_serial.rack_values()
    assert restored.rack_values() == reference["rack_values"]


def test_monitor_usable_after_close(backend_products, fleet_stream):
    """close() lands worker-resident state; post-close queries run serially."""
    for backend in BACKENDS:
        monitor, products = backend_products[backend]
        # Post-close work degrades to a lazily started serial executor.
        assert monitor.executor is None or monitor.executor.backend == "serial"
        assert monitor.rack_values() == products["rack_values"], backend
        follow_up = monitor.ingest(fleet_stream.values[:, :480][:, -60:])
        assert follow_up.step == 540, backend


def test_executor_is_held_open_across_ingests(fleet_stream):
    monitor = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG, executor="thread",
        max_workers=2,
    )
    with monitor:
        assert monitor.executor is None, "executor starts lazily"
        monitor.ingest(fleet_stream.values[:, :240])
        executor = monitor.executor
        assert executor is not None and executor.started
        monitor.ingest(fleet_stream.values[:, 240:])
        assert monitor.executor is executor, "same executor across ingests"
    assert monitor.executor is None
    assert executor.closed


@pytest.mark.parametrize("backend", BACKENDS)
def test_ingest_and_alert_matches_sequential_path(fleet_stream, backend):
    """The overlapped path fires bit-for-bit the same alerts and snapshots."""
    chunks = [(0, 240), (240, 320), (320, 400), (400, 480)]

    sink_seq = RingBufferSink()
    sequential = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG,
        alert_engine=AlertEngine(rules=default_rules(), sinks=[sink_seq], cooldown=60),
    )
    with sequential:
        sequential.ingest(fleet_stream.values[:, slice(*chunks[0])])
        seq_products = []
        for lo, hi in chunks[1:]:
            snapshot = sequential.ingest(fleet_stream.values[:, lo:hi])
            alerts = sequential.evaluate_alerts(window=150)
            seq_products.append((snapshot, alerts))

    sink_overlap = RingBufferSink()
    overlapped = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG,
        alert_engine=AlertEngine(
            rules=default_rules(), sinks=[sink_overlap], cooldown=60
        ),
        executor=backend,
        max_workers=2,
    )
    with overlapped:
        overlapped.ingest(fleet_stream.values[:, slice(*chunks[0])])
        overlap_products = []
        for lo, hi in chunks[1:]:
            snapshot, alerts = overlapped.ingest_and_alert(
                fleet_stream.values[:, lo:hi], window=150
            )
            overlap_products.append((snapshot, alerts))

    assert overlap_products == seq_products
    assert [a.to_dict() for a in sink_overlap.alerts] == [
        a.to_dict() for a in sink_seq.alerts
    ]


def test_ingest_and_alert_without_engine(fleet_stream):
    with FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG, executor="thread"
    ) as monitor:
        snapshot, alerts = monitor.ingest_and_alert(fleet_stream.values[:, :240])
        assert snapshot.step == 240
        assert alerts == []


def test_pooled_ingest_conflicts_with_persistent_executor(fleet_stream):
    with FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG, executor="thread"
    ) as monitor:
        monitor.ingest(fleet_stream.values[:, :240])
        with pytest.raises(ValueError, match="persistent"):
            monitor.ingest(fleet_stream.values[:, 240:], processes=2)


def test_ingest_rejects_invalid_processes(fleet_stream):
    monitor = FleetMonitor.from_stream(fleet_stream, policy=RackSharding(), config=CONFIG)
    with pytest.raises(ValueError, match="processes"):
        monitor.ingest(fleet_stream.values[:, :240], processes=0)
    with pytest.raises(ValueError, match="processes"):
        monitor.ingest(fleet_stream.values[:, :240], processes=-2)


def test_legacy_pooled_ingest_matches_serial(fleet_stream):
    """The deprecated per-ingest pool still produces identical products."""
    serial = FleetMonitor.from_stream(fleet_stream, policy=RackSharding(), config=CONFIG)
    serial.ingest(fleet_stream.values[:, :240])
    serial.ingest(fleet_stream.values[:, 240:])

    pooled = FleetMonitor.from_stream(fleet_stream, policy=RackSharding(), config=CONFIG)
    pooled.ingest(fleet_stream.values[:, :240])
    pooled.ingest(fleet_stream.values[:, 240:], processes=2)

    assert pooled.rack_values() == serial.rack_values()

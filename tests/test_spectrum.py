"""Unit tests for the mrDMD spectrum (repro.core.spectrum)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spectrum import MrDMDSpectrum, SpectrumBand, mode_frequencies, mode_power
from repro.core.tree import MrDMDTree

from test_tree import make_node


class TestHelpers:
    def test_mode_frequencies_formula(self):
        dt = 0.5
        eig = np.array([np.exp(1j * 0.2), np.exp(0.01)])
        freqs = mode_frequencies(eig, dt)
        assert freqs[0] == pytest.approx(0.2 / dt / (2 * np.pi))
        assert freqs[1] == pytest.approx(0.0)

    def test_mode_frequencies_empty_and_invalid(self):
        assert mode_frequencies(np.array([]), 1.0).shape == (0,)
        with pytest.raises(ValueError):
            mode_frequencies(np.array([1.0]), 0.0)

    def test_mode_power_is_column_norms(self):
        modes = np.array([[1.0, 0.0], [0.0, 2.0], [0.0, 0.0]])
        assert np.allclose(mode_power(modes), [1.0, 4.0])

    def test_mode_power_empty(self):
        assert mode_power(np.zeros((3, 0))).shape == (0,)


@pytest.fixture()
def spectrum_tree() -> MrDMDTree:
    tree = MrDMDTree(dt=1.0, n_features=4)
    tree.add(make_node(level=1, eigenvalue=np.exp(1j * 0.001)))       # ~1.6e-4 Hz
    tree.add(make_node(level=2, eigenvalue=np.exp(1j * 0.5)))         # ~0.08 Hz
    tree.add(make_node(level=3, eigenvalue=np.exp(1j * 2.5)))         # ~0.4 Hz
    return tree


class TestMrDMDSpectrum:
    def test_construction_from_tree_and_table(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree, label="test")
        assert spec.n_modes == 6
        spec2 = MrDMDSpectrum(spectrum_tree.mode_table())
        assert spec2.n_modes == 6
        with pytest.raises(TypeError):
            MrDMDSpectrum("not a tree")

    def test_arrays_shapes(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree)
        assert spec.frequencies.shape == (6,)
        assert spec.power.shape == (6,)
        assert spec.amplitudes.shape == (6,)
        assert len(spec) == 6

    def test_band_mask_frequency_filtering(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree)
        mask = spec.band_mask((0.0, 0.1))
        assert mask.sum() == 4                 # level-1 and level-2 nodes
        with pytest.raises(ValueError):
            spec.band_mask((0.5, 0.1))

    def test_filter_by_level(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree)
        only_level1 = spec.filter(levels=[1])
        assert only_level1.n_modes == 2

    def test_filter_by_power(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree)
        threshold = float(np.median(spec.power))
        filtered = spec.filter(min_power=threshold)
        assert np.all(filtered.power >= threshold)

    def test_high_power_modes_quantile(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree)
        top_half = spec.high_power_modes(0.5)
        assert 0 < top_half.n_modes <= spec.n_modes
        with pytest.raises(ValueError):
            spec.high_power_modes(1.5)

    def test_filter_preserves_label_unless_overridden(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree, label="hot")
        assert spec.filter((0, 1)).label == "hot"
        assert spec.filter((0, 1), label="cool").label == "cool"

    def test_band_summary(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree)
        bands = spec.band_summary([0.0, 0.01, 0.1, 1.0])
        assert len(bands) == 3
        assert all(isinstance(b, SpectrumBand) for b in bands)
        assert sum(b.n_modes for b in bands) == spec.n_modes
        empty_band = [b for b in bands if b.n_modes == 0]
        for band in empty_band:
            assert np.isnan(band.peak_frequency)

    def test_band_summary_validation(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree)
        with pytest.raises(ValueError):
            spec.band_summary([1.0])
        with pytest.raises(ValueError):
            spec.band_summary([1.0, 0.5])

    def test_dominant_and_centroid_frequency(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree)
        assert spec.dominant_frequency() in spec.frequencies
        centroid = spec.centroid_frequency()
        assert spec.frequencies.min() <= centroid <= spec.frequencies.max()

    def test_empty_spectrum_statistics(self):
        tree = MrDMDTree(dt=1.0, n_features=3)
        spec = MrDMDSpectrum(tree)
        assert spec.n_modes == 0
        assert np.isnan(spec.dominant_frequency())
        assert np.isnan(spec.centroid_frequency())
        assert spec.total_power() == 0.0
        assert spec.high_power_modes().n_modes == 0

    def test_to_points_export(self, spectrum_tree):
        spec = MrDMDSpectrum(spectrum_tree, label="case 1")
        points = spec.to_points()
        assert points["label"] == "case 1"
        assert points["frequency_hz"].shape == (6,)
        assert points["power"].shape == (6,)
        assert points["level"].shape == (6,)

    def test_hot_window_has_higher_centroid_than_cool(self):
        """Fig. 7's qualitative claim on synthetic hot/cool decompositions."""
        from repro.core import compute_mrdmd

        gen = np.random.default_rng(5)
        t = np.arange(1024) * 0.5
        phases = gen.uniform(0, 2 * np.pi, 8)[:, None]
        cool = 40 + 3 * np.sin(2 * np.pi * 0.002 * t + phases) + 0.2 * gen.standard_normal((8, t.size))
        # The hot window carries extra energy at 0.02 Hz, which becomes a
        # "slow" mode once the recursion reaches windows shorter than
        # max_cycles / 0.02 Hz = 100 s (level 4 here).
        hot = (
            55
            + 3 * np.sin(2 * np.pi * 0.002 * t + phases)
            + 4 * np.sin(2 * np.pi * 0.02 * t + 2 * phases)
            + 0.2 * gen.standard_normal((8, t.size))
        )
        spec_cool = MrDMDSpectrum(compute_mrdmd(cool, 0.5, max_levels=5), label="cool")
        spec_hot = MrDMDSpectrum(compute_mrdmd(hot, 0.5, max_levels=5), label="hot")
        assert spec_hot.centroid_frequency() > spec_cool.centroid_frequency()

"""Flight recorder and fleet health scoring.

The flight recorder is the always-on black box: bounded per-scope rings
of recent deltas/alerts/notes that assemble into a self-contained
post-mortem bundle on quarantine, worker loss or a checkpoint that
refuses to load.  Health scores fold availability, latency-vs-budget and
deep-level staleness into one number per shard/machine that rides on
snapshots as a comparison-exempt field.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.obs import OBS
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.health import (
    HealthScore,
    STATUS_CRITICAL,
    STATUS_DEGRADED,
    STATUS_HEALTHY,
    aggregate,
    percentile,
    score_shard,
)
from repro.service import FleetMonitor, SingleShard
from repro.service.__main__ import main as service_main
from repro.service.checkpoint import CheckpointError, load_checkpoint


@pytest.fixture(autouse=True)
def pristine_recorders():
    OBS.reset()
    FLIGHT.reset()
    yield
    OBS.reset()
    FLIGHT.reset()


# --------------------------------------------------------------------------- #
# Flight recorder units
# --------------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_scoped_entries_also_land_globally(self):
        recorder = FlightRecorder()
        recorder.record_delta("chunk.seconds", 0.5, scope="shard:a", step=3)
        assert recorder.tail("shard:a", "deltas") == [
            {"name": "chunk.seconds", "value": 0.5, "step": 3}
        ]
        assert recorder.tail("global", "deltas") == [
            {"name": "chunk.seconds", "value": 0.5, "step": 3}
        ]
        assert recorder.tail("shard:b", "deltas") == []

    def test_rings_are_bounded_keeping_most_recent(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record_note("tick", i=i)
        notes = recorder.tail("global", "notes")
        assert [entry["i"] for entry in notes] == [6, 7, 8, 9]

    def test_alert_objects_are_coerced(self):
        class FakeAlert:
            def to_dict(self):
                return {"rule": "zscore", "shard": "a"}

        recorder = FlightRecorder()
        recorder.record_alert(FakeAlert())
        recorder.record_alert("plain string")
        alerts = recorder.tail("global", "alerts")
        assert alerts[0] == {"rule": "zscore", "shard": "a"}
        assert alerts[1] == {"alert": "plain string"}

    def test_entries_are_json_safe(self):
        recorder = FlightRecorder()
        recorder.record_note("numpy", value=np.float64(1.5), n=np.int32(2))
        (note,) = recorder.tail("global", "notes")
        json.dumps(note)  # must not raise
        assert note["value"] == 1.5 and note["n"] == 2

    def test_dump_bundle_shape(self):
        recorder = FlightRecorder()
        recorder.record_delta("x", 1.0, scope="shard:s1")
        bundle = recorder.dump(
            "quarantine",
            shard_id="s1",
            step=42,
            quarantine={"reason": "boom", "attempts": 3},
            snapshot_stamps={"s1": {"has_snapshot": True, "replay_tail": 2}},
            extra={"note": "test"},
        )
        assert bundle["kind"] == "flight_bundle"
        assert bundle["schema_version"] == 1
        assert bundle["reason"] == "quarantine"
        assert bundle["shard_id"] == "s1"
        assert bundle["step"] == 42
        assert bundle["quarantine"]["attempts"] == 3
        assert bundle["snapshot_stamps"]["s1"]["replay_tail"] == 2
        assert set(bundle["recent"]) == {"global", "shard:s1"}
        assert bundle["recent"]["shard:s1"]["deltas"][0]["name"] == "x"
        assert bundle["extra"] == {"note": "test"}
        # Not configured with a dump dir: in-memory only.
        assert "path" not in bundle
        assert recorder.bundles == [bundle]

    def test_dump_writes_named_file(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(dump_dir=str(tmp_path / "flight"))
        bundle = recorder.dump("worker_lost", shard_id="rack/1")
        path = bundle["path"]
        assert os.path.basename(path) == "flight-001-worker_lost-rack_1.json"
        on_disk = json.loads(open(path).read())
        assert on_disk["reason"] == "worker_lost"
        assert on_disk["shard_id"] == "rack/1"

    def test_bundle_retention_is_bounded(self):
        recorder = FlightRecorder()
        for _ in range(20):
            recorder.dump("tick")
        assert len(recorder.bundles) == 16
        assert recorder.bundles[-1]["seq"] == 20
        assert recorder.bundles[0]["seq"] == 5

    def test_trace_tail_embeds_recent_spans_when_enabled(self):
        bundle = FLIGHT.dump("cold")  # provider disabled: no tail
        assert bundle["trace_tail"] == []

        obs.enable()
        with OBS.span("service.ingest", shard="s1"):
            pass
        with OBS.span("unrelated"):
            pass
        bundle = FLIGHT.dump("quarantine", shard_id="s1")
        names = [event["name"] for event in bundle["trace_tail"]]
        assert "service.ingest" in names
        assert bundle["trace_id"] == OBS.trace_id

    def test_reset_clears_everything(self, tmp_path):
        FLIGHT.configure(dump_dir=str(tmp_path))
        FLIGHT.record_note("x")
        FLIGHT.dump("r")
        FLIGHT.reset()
        assert FLIGHT.bundles == []
        assert FLIGHT.tail("global") == {}
        assert FLIGHT.dump_dir is None


# --------------------------------------------------------------------------- #
# Health scoring units
# --------------------------------------------------------------------------- #
class TestHealthScore:
    def test_nominal_shard_is_healthy(self):
        score = score_shard()
        assert score.score == 1.0
        assert score.status == STATUS_HEALTHY
        assert (score.availability, score.latency, score.staleness) == (
            1.0, 1.0, 1.0,
        )

    def test_quarantined_shard_is_critical(self):
        score = score_shard(quarantined=True)
        assert score.score == 0.0
        assert score.status == STATUS_CRITICAL
        assert score.availability == 0.0

    def test_latency_over_budget_degrades(self):
        score = score_shard(p95_seconds=2.0, budget_seconds=1.0)
        assert score.latency == pytest.approx(0.5)
        assert score.score == pytest.approx(0.5)
        assert score.status == STATUS_DEGRADED

    def test_latency_under_budget_or_unmeasured_is_neutral(self):
        assert score_shard(p95_seconds=0.5, budget_seconds=1.0).score == 1.0
        assert score_shard(p95_seconds=None, budget_seconds=1.0).score == 1.0
        assert score_shard(p95_seconds=9.0, budget_seconds=None).score == 1.0

    def test_staleness_decays_exponentially(self):
        assert score_shard(deep_stale_snapshots=0).staleness == 1.0
        assert score_shard(deep_stale_snapshots=100).staleness == pytest.approx(
            0.5
        )
        assert score_shard(deep_stale_snapshots=200).staleness == pytest.approx(
            0.25
        )
        assert score_shard(
            deep_stale_snapshots=50, staleness_tolerance=50
        ).staleness == pytest.approx(0.5)

    def test_status_thresholds(self):
        assert score_shard(p95_seconds=1.25, budget_seconds=1.0).status == (
            STATUS_HEALTHY
        )  # 0.8 exactly
        assert score_shard(p95_seconds=2.5, budget_seconds=1.0).status == (
            STATUS_DEGRADED
        )  # 0.4 exactly
        assert score_shard(p95_seconds=3.0, budget_seconds=1.0).status == (
            STATUS_CRITICAL
        )

    def test_components_multiply(self):
        score = score_shard(
            p95_seconds=2.0, budget_seconds=1.0, deep_stale_snapshots=100
        )
        assert score.score == pytest.approx(0.25)

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.95) is None
        assert percentile([3.0], 0.95) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.95) == 4.0

    def test_aggregate_means_members(self):
        merged = aggregate(
            [score_shard(), score_shard(quarantined=True)]
        )
        assert merged.score == pytest.approx(0.5)
        assert merged.availability == pytest.approx(0.5)
        assert merged.status == STATUS_DEGRADED
        # Empty roster: neutral, not critical.
        assert aggregate([]).score == 1.0


# --------------------------------------------------------------------------- #
# Health surfaced on snapshots (comparison-exempt)
# --------------------------------------------------------------------------- #
def _tiny_monitor() -> FleetMonitor:
    return FleetMonitor(
        dt=1.0,
        shards=SingleShard().partition(
            np.array(["s0", "s1"], dtype=object), np.array([0, 1])
        ),
    )


def test_snapshot_carries_health_without_breaking_equality():
    rng = np.random.default_rng(7)
    chunk = rng.normal(50.0, 2.0, size=(2, 16))
    snap_a = _tiny_monitor().ingest(chunk)
    snap_b = _tiny_monitor().ingest(chunk)

    assert isinstance(snap_a.health, dict)
    assert set(snap_a.health) == {"fleet", "all"}
    for score in snap_a.health.values():
        assert isinstance(score, HealthScore)
        assert score.status == STATUS_HEALTHY

    # Health is derived from wall-clock latencies and must never factor
    # into snapshot equality (bit-for-bit parity/restart guarantees).
    assert snap_a == snap_b
    snap_b.health = None
    assert snap_a == snap_b


def test_monitor_health_property_tracks_last_snapshot():
    monitor = _tiny_monitor()
    assert monitor.health is None
    rng = np.random.default_rng(7)
    snapshot = monitor.ingest(rng.normal(50.0, 2.0, size=(2, 16)))
    assert monitor.health is snapshot.health


def test_health_gauges_published_when_enabled():
    obs.enable()
    rng = np.random.default_rng(7)
    _tiny_monitor().ingest(rng.normal(50.0, 2.0, size=(2, 16)))
    totals = OBS.metrics.totals()
    assert totals["service.health.score"] == 1.0  # fleet aggregate
    assert totals["service.health.score{shard=all}"] == 1.0
    digest = obs.report.summarize(OBS.metrics)
    assert digest["health"]["shards"]["all"] == 1.0
    text = obs.report.render_text(OBS.metrics)
    assert "fleet health" in text


# --------------------------------------------------------------------------- #
# Failure hooks end to end
# --------------------------------------------------------------------------- #
def test_checkpoint_load_failure_dumps_a_bundle(tmp_path):
    bad = tmp_path / "ckpt"
    bad.mkdir()
    (bad / "manifest.json").write_text("{definitely not json")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(bad))
    assert FLIGHT.bundles, "a flight bundle accompanies the failure"
    bundle = FLIGHT.bundles[-1]
    assert bundle["reason"] == "checkpoint_load_failed"
    assert bundle["extra"]["path"] == str(bad)
    assert bundle["extra"]["error"]


def test_chaos_fleet_cli_dumps_quarantine_bundle(tmp_path, capsys):
    """Acceptance: the chaos scenario produces a post-mortem naming the
    quarantined shard, via the CLI's --flight-dir."""
    flight_dir = tmp_path / "flight"
    code = service_main(
        [
            "chaos-fleet",
            "--executor", "process",
            "--workers", "2",
            "--flight-dir", str(flight_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fleet health" in out
    assert "flight recorder:" in out

    bundles = []
    for name in sorted(os.listdir(flight_dir)):
        with open(flight_dir / name) as handle:
            bundles.append(json.load(handle))
    reasons = {bundle["reason"] for bundle in bundles}
    assert "quarantine" in reasons
    assert "worker_lost" in reasons

    (quarantine,) = [b for b in bundles if b["reason"] == "quarantine"]
    assert quarantine["shard_id"] == "rack-3"
    assert "Poison" in quarantine["quarantine"]["reason"]
    assert quarantine["snapshot_stamps"], "snapshot stamps embedded"
    assert "shard:rack-3" in quarantine["recent"]
    # The CLI resets the recorder afterwards for embedders.
    assert FLIGHT.bundles == [] and FLIGHT.dump_dir is None

"""Delta + asynchronous checkpointing: lossless by construction.

The delta format only ever *skips* serialisation work — shards whose
revision stamp has not moved re-reference their content-addressed block
from the previous rotation entry — so every test here is a parity test
at heart: whatever combination of delta, async, pruning, rollback and
compaction a run goes through, the restored monitor must be bit-for-bit
identical to one saved with the classic sync full path.  Alongside the
parity suite: block-store garbage collection under ``keep_last``
pruning, the in-memory refcounted store behind the resilience recovery
snapshots, stamp-based snapshot skipping, and v1/v2 back-compat.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.federation import (
    AlertRouter,
    FederatedMonitor,
    MachineRegistry,
    compact_federated_checkpoint,
    load_federated_checkpoint,
    save_federated_checkpoint,
)
from repro.io.delta import (
    AsyncCheckpointWriter,
    BlockStore,
    CheckpointWriteError,
    MemoryBlockStore,
    copy_state,
    state_digest,
)
from repro.pipeline import PipelineConfig
from repro.resilience import ShardRecoveryStore
from repro.service import (
    AlertEngine,
    FleetMonitor,
    RackSharding,
    compact_checkpoint,
    default_rules,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.service.checkpoint import read_manifest
from repro.telemetry import MachineDescription, TelemetryGenerator
from repro.telemetry.sensors import xc40_sensor_suite

CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=4),
    baseline_range=(40.0, 75.0),
    power_quantile=0.0,
)


def small_machine() -> MachineDescription:
    return MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=2,
        cabinets_per_rack=1,
        slots_per_cabinet=2,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )


def _stream(seed: int, steps: int = 400):
    return TelemetryGenerator(
        small_machine(), seed=seed, utilization_target=0.3
    ).generate(steps, sensors=["cpu_temp"])


def _build_monitor(seed: int, initial: int = 240) -> tuple[FleetMonitor, object]:
    stream = _stream(seed)
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        alert_engine=AlertEngine(rules=default_rules(), cooldown=100),
    )
    monitor.ingest(stream.values[:, :initial])
    return monitor, stream


def _shard_reprs(monitor: FleetMonitor) -> dict[str, str]:
    return {
        spec.shard_id: repr(monitor.shard_state_dict(spec.shard_id))
        for spec in monitor.shards
    }


def _dirty_one_shard(monitor: FleetMonitor, stream, lo: int, hi: int) -> str:
    spec = monitor.shards[0]
    monitor._pipelines[spec.shard_id].ingest(spec.take(stream.values[:, lo:hi]))
    return spec.shard_id


# --------------------------------------------------------------------------- #
# Bit-for-bit parity
# --------------------------------------------------------------------------- #
def test_delta_restore_matches_sync_full(tmp_path):
    monitor, stream = _build_monitor(seed=51)
    monitor.ingest(stream.values[:, 240:320])
    full_dir, delta_dir = str(tmp_path / "full"), str(tmp_path / "delta")
    save_checkpoint(full_dir, monitor, keep_last=2, format="full")
    info = save_checkpoint(delta_dir, monitor, keep_last=2, format="delta")
    assert info.format == "delta"

    live = _shard_reprs(monitor)
    restored_full = load_checkpoint(full_dir, rules=default_rules())
    restored_delta = load_checkpoint(delta_dir, rules=default_rules())
    assert _shard_reprs(restored_full) == live
    assert _shard_reprs(restored_delta) == live
    assert restored_delta.step == monitor.step
    monitor.close(), restored_full.close(), restored_delta.close()


def test_second_delta_save_reuses_unchanged_shards(tmp_path):
    monitor, stream = _build_monitor(seed=52)
    root = str(tmp_path / "ckpt")
    first = save_checkpoint(root, monitor, keep_last=3, format="delta")
    assert first.shards_reused == 0

    dirty = _dirty_one_shard(monitor, stream, 240, 320)
    second = save_checkpoint(root, monitor, keep_last=3, format="delta")
    assert second.shards_reused == monitor.n_shards - 1
    # The reused shard wrote zero new bytes; only the dirty one did.
    assert second.bytes_written > 0
    assert second.bytes_referenced > 0

    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == _shard_reprs(monitor)
    assert dirty in _shard_reprs(restored)
    monitor.close(), restored.close()


def test_unchanged_fleet_delta_save_writes_nothing(tmp_path):
    monitor, _stream_ = _build_monitor(seed=53)
    root = str(tmp_path / "ckpt")
    save_checkpoint(root, monitor, keep_last=3, format="delta")
    again = save_checkpoint(root, monitor, keep_last=3, format="delta")
    assert again.shards_reused == monitor.n_shards
    assert again.bytes_written == 0
    monitor.close()


def test_async_delta_restore_matches_live(tmp_path):
    monitor, stream = _build_monitor(seed=54)
    root = str(tmp_path / "ckpt")
    for lo in (240, 320):
        monitor.ingest(stream.values[:, lo : lo + 80])
        info = save_checkpoint(
            root, monitor, keep_last=2, format="delta", mode="async"
        )
        assert info.mode == "async"
    monitor.flush_checkpoints()

    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == _shard_reprs(monitor)
    assert restored.step == monitor.step
    monitor.close(), restored.close()


def test_async_full_restore_matches_live(tmp_path):
    monitor, stream = _build_monitor(seed=55)
    root = str(tmp_path / "ckpt")
    monitor.ingest(stream.values[:, 240:320])
    save_checkpoint(root, monitor, keep_last=2, format="full", mode="async")
    monitor.flush_checkpoints()
    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == _shard_reprs(monitor)
    monitor.close(), restored.close()


def test_monitor_close_flushes_pending_async_saves(tmp_path):
    monitor, _stream_ = _build_monitor(seed=56)
    root = str(tmp_path / "ckpt")
    save_checkpoint(root, monitor, keep_last=2, format="delta", mode="async")
    live = _shard_reprs(monitor)
    monitor.close()  # barrier: the entry must be durable afterwards
    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == live
    restored.close()


def test_delta_and_async_require_keep_last(tmp_path):
    monitor, _stream_ = _build_monitor(seed=57)
    with pytest.raises(ValueError, match="keep_last"):
        save_checkpoint(str(tmp_path / "a"), monitor, format="delta")
    with pytest.raises(ValueError, match="keep_last"):
        save_checkpoint(str(tmp_path / "b"), monitor, mode="async")
    with pytest.raises(ValueError, match="format"):
        save_checkpoint(
            str(tmp_path / "c"), monitor, keep_last=2, format="sparse"
        )
    monitor.close()


def test_mid_run_restart_from_delta_checkpoint(tmp_path):
    """Resume from a delta entry mid-stream == an uninterrupted run."""
    baseline, stream = _build_monitor(seed=58)
    baseline.ingest(stream.values[:, 240:320])
    baseline.ingest(stream.values[:, 320:400])

    monitor, _ = _build_monitor(seed=58)
    monitor.ingest(stream.values[:, 240:320])
    root = str(tmp_path / "ckpt")
    save_checkpoint(root, monitor, keep_last=2, format="delta")
    monitor.close()
    resumed = load_checkpoint(root, rules=default_rules())
    resumed.ingest(stream.values[:, 320:400])
    assert _shard_reprs(resumed) == _shard_reprs(baseline)
    baseline.close(), resumed.close()


# --------------------------------------------------------------------------- #
# Rotation, GC and compaction
# --------------------------------------------------------------------------- #
def test_pruned_entries_release_their_blocks(tmp_path):
    monitor, stream = _build_monitor(seed=59)
    root = str(tmp_path / "ckpt")
    store = BlockStore(os.path.join(root, "blocks"))
    save_checkpoint(root, monitor, keep_last=2, format="delta")
    first_blocks = store.digests()
    assert first_blocks

    # Two more saves with every shard dirty: the first entry falls out of
    # the rotation and its (now unreferenced) blocks must be swept.
    for lo in (240, 300):
        monitor.ingest(stream.values[:, lo : lo + 60])
        save_checkpoint(root, monitor, keep_last=2, format="delta")
    remaining = store.digests()
    assert not (first_blocks & remaining), "pruned entry's blocks leaked"

    # Blocks still referenced by retained entries survive.
    live = set()
    for entry in list_checkpoints(root):
        live.update(read_manifest(entry.path)["shard_blocks"])
    assert live <= remaining
    monitor.close()


def test_shared_blocks_survive_pruning(tmp_path):
    """A block referenced by old AND new entries outlives the old one."""
    monitor, stream = _build_monitor(seed=60)
    root = str(tmp_path / "ckpt")
    store = BlockStore(os.path.join(root, "blocks"))
    save_checkpoint(root, monitor, keep_last=2, format="delta")
    # Only shard 0 changes: the other shards' blocks stay shared across
    # all three entries while the rotation prunes the oldest.
    for lo in (240, 300):
        _dirty_one_shard(monitor, stream, lo, lo + 60)
        save_checkpoint(root, monitor, keep_last=2, format="delta")
    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == _shard_reprs(monitor)
    shared = read_manifest(list_checkpoints(root)[0].path)["shard_blocks"]
    assert set(shared) <= store.digests()
    monitor.close(), restored.close()


def test_rollback_then_resave_is_consistent(tmp_path):
    """Deleting the newest entry and saving again must not corrupt GC.

    The resaved state re-references blocks through the self-healing
    ``store.has`` check, and the sweep keeps everything the retained
    manifests still name.
    """
    monitor, stream = _build_monitor(seed=61)
    root = str(tmp_path / "ckpt")
    save_checkpoint(root, monitor, keep_last=3, format="delta")
    monitor.ingest(stream.values[:, 240:320])
    save_checkpoint(root, monitor, keep_last=3, format="delta")

    # Operator rollback: drop the newest entry, fall back to the oldest.
    import shutil

    newest = list_checkpoints(root)[0]
    shutil.rmtree(newest.path)
    rolled_back = load_checkpoint(root, rules=default_rules())

    # The rolled-back monitor streams forward again and saves: stamps in
    # the original monitor's memory now describe blocks the rotation may
    # sweep, and the rebuilt monitor has no stamp memory at all — both
    # must converge to a loadable, bit-for-bit rotation.
    rolled_back.ingest(stream.values[:, 240:320])
    save_checkpoint(root, rolled_back, keep_last=3, format="delta")
    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == _shard_reprs(rolled_back)
    monitor.close(), rolled_back.close(), restored.close()


def test_compact_checkpoint_rewrites_self_contained(tmp_path):
    monitor, stream = _build_monitor(seed=62)
    root = str(tmp_path / "ckpt")
    save_checkpoint(root, monitor, keep_last=2, format="delta")
    monitor.ingest(stream.values[:, 240:320])
    save_checkpoint(root, monitor, keep_last=2, format="delta")
    live = _shard_reprs(monitor)

    entry = compact_checkpoint(root)
    manifest = read_manifest(entry)
    assert "shard_blocks" not in manifest
    assert manifest.get("shard_files")
    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == live
    monitor.close(), restored.close()


# --------------------------------------------------------------------------- #
# Federated
# --------------------------------------------------------------------------- #
def _build_federation(seeds=(63, 64)) -> tuple[FederatedMonitor, list]:
    monitors, streams = {}, []
    for name, seed in zip(("east", "west"), seeds):
        monitor, stream = _build_monitor(seed=seed)
        monitors[name] = monitor
        streams.append(stream)
    federated = FederatedMonitor(
        MachineRegistry(monitors), router=AlertRouter()
    )
    return federated, streams


def _federated_reprs(federated: FederatedMonitor) -> dict[str, dict[str, str]]:
    return {
        name: _shard_reprs(federated.machine(name))
        for name in federated.machine_names
    }


def test_federated_delta_round_trip(tmp_path):
    federated, streams = _build_federation()
    root = str(tmp_path / "ckpt")
    save_federated_checkpoint(root, federated, keep_last=2, format="delta")
    federated.ingest(
        {
            "east": streams[0].values[:, 240:320],
            "west": streams[1].values[:, 240:320],
        }
    )
    info = save_federated_checkpoint(root, federated, keep_last=2, format="delta")
    assert info.format == "delta"

    restored = load_federated_checkpoint(root)
    assert _federated_reprs(restored) == _federated_reprs(federated)
    assert restored.step == federated.step
    federated.close(), restored.close()


def test_federated_async_delta_flush_and_restore(tmp_path):
    federated, streams = _build_federation(seeds=(65, 66))
    root = str(tmp_path / "ckpt")
    save_federated_checkpoint(
        root, federated, keep_last=2, format="delta", mode="async"
    )
    federated.ingest(
        {
            "east": streams[0].values[:, 240:320],
            "west": streams[1].values[:, 240:320],
        }
    )
    save_federated_checkpoint(
        root, federated, keep_last=2, format="delta", mode="async"
    )
    federated.flush_checkpoints()
    restored = load_federated_checkpoint(root)
    assert _federated_reprs(restored) == _federated_reprs(federated)
    federated.close(), restored.close()


def test_federated_parallel_save_matches_serial(tmp_path):
    """The executor-parallel machine fan-out writes the same entries."""
    federated, streams = _build_federation(seeds=(67, 68))
    serial_dir, parallel_dir = str(tmp_path / "serial"), str(tmp_path / "par")
    save_federated_checkpoint(serial_dir, federated, keep_last=2)

    threaded = FederatedMonitor(
        federated.registry, router=AlertRouter(), executor="thread"
    )
    save_federated_checkpoint(parallel_dir, threaded, keep_last=2)
    a = load_federated_checkpoint(serial_dir)
    b = load_federated_checkpoint(parallel_dir)
    assert _federated_reprs(a) == _federated_reprs(b)
    threaded.close(), a.close(), b.close(), federated.close()


def test_compact_federated_checkpoint(tmp_path):
    federated, streams = _build_federation(seeds=(69, 70))
    root = str(tmp_path / "ckpt")
    save_federated_checkpoint(root, federated, keep_last=2, format="delta")
    live = _federated_reprs(federated)
    compact_federated_checkpoint(root)
    restored = load_federated_checkpoint(root)
    assert _federated_reprs(restored) == live
    federated.close(), restored.close()


# --------------------------------------------------------------------------- #
# Back-compat: v1/v2 checkpoints keep loading
# --------------------------------------------------------------------------- #
def test_legacy_in_place_checkpoint_still_loads(tmp_path):
    """`save_checkpoint` without keep_last is the pre-delta v1/v2 path."""
    monitor, _stream_ = _build_monitor(seed=71)
    root = str(tmp_path / "legacy")
    info = save_checkpoint(root, monitor)
    manifest = read_manifest(root)
    assert manifest["version"] in (1, 2)
    assert info.format == "full"
    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == _shard_reprs(monitor)
    monitor.close(), restored.close()


def test_sync_full_rotation_unchanged_by_delta_machinery(tmp_path):
    monitor, _stream_ = _build_monitor(seed=72)
    root = str(tmp_path / "full")
    save_checkpoint(root, monitor, keep_last=2)
    manifest = read_manifest(list_checkpoints(root)[0].path)
    assert manifest["version"] in (1, 2)
    assert "shard_blocks" not in manifest
    restored = load_checkpoint(root, rules=default_rules())
    assert _shard_reprs(restored) == _shard_reprs(monitor)
    monitor.close(), restored.close()


# --------------------------------------------------------------------------- #
# Recovery store: content-addressed snapshots + stamp skipping
# --------------------------------------------------------------------------- #
def test_recovery_store_rebuild_bit_for_bit(tmp_path):
    monitor, stream = _build_monitor(seed=73)
    store = ShardRecoveryStore(snapshot_every=4)
    spec = monitor.shards[0]
    shard_id = spec.shard_id
    store.record_snapshot(
        shard_id,
        monitor.shard_state_dict(shard_id),
        stamp=monitor.shard_state_stamp(shard_id),
    )
    tail = [stream.values[:, 240:280], stream.values[:, 280:320]]
    for chunk in tail:
        store.record_chunk(shard_id, spec.take(chunk))
        monitor._pipelines[shard_id].ingest(spec.take(chunk))

    rebuilt, n_replayed = store.rebuild(shard_id)
    assert n_replayed == len(tail)
    assert repr(rebuilt.state_dict()) == repr(
        monitor.shard_state_dict(shard_id)
    )
    monitor.close()


def test_recovery_store_skips_unchanged_stamp(tmp_path):
    monitor, stream = _build_monitor(seed=74)
    store = ShardRecoveryStore(snapshot_every=4)
    spec = monitor.shards[0]
    shard_id = spec.shard_id

    calls = []

    def provider():
        calls.append(1)
        return monitor.shard_state_dict(shard_id)

    stamp = monitor.shard_state_stamp(shard_id)
    assert store.record_snapshot_if_changed(shard_id, stamp, provider)
    # Unchanged stamp: no state pull, no re-serialisation, tail intact.
    store.record_chunk(shard_id, spec.take(stream.values[:, 240:280]))
    assert not store.record_snapshot_if_changed(shard_id, stamp, provider)
    assert len(calls) == 1
    assert store.tail_length(shard_id) == 1

    # The stamp moves on ingest: the next call snapshots again and the
    # newly covered tail is dropped.
    monitor._pipelines[shard_id].ingest(spec.take(stream.values[:, 240:280]))
    moved = monitor.shard_state_stamp(shard_id)
    assert moved != stamp
    assert store.record_snapshot_if_changed(shard_id, moved, provider)
    assert len(calls) == 2
    assert store.tail_length(shard_id) == 0
    monitor.close()


def test_recovery_snapshots_share_blocks_and_refcount():
    store = ShardRecoveryStore(snapshot_every=4)
    state = {"x": np.arange(6.0), "nested": {"y": np.ones((2, 3))}}
    store.record_snapshot("a", state)
    store.record_snapshot("b", copy_state(state))  # identical content
    blocks = store.block_store
    assert len(blocks) == 1  # deduplicated
    digest = store.snapshot_digest("a")
    assert digest == store.snapshot_digest("b")
    assert blocks.refcount(digest) == 2

    store.forget("a")
    assert blocks.refcount(digest) == 1
    store.forget("b")
    assert blocks.refcount(digest) == 0
    assert len(blocks) == 0


def test_memory_block_store_returns_independent_copies():
    store = MemoryBlockStore()
    state = {"x": np.arange(4.0)}
    digest, created = store.put(state)
    assert created
    state["x"][0] = 99.0  # caller mutates after put
    out = store.get(digest)
    assert out["x"][0] == 0.0  # store kept its own copy
    out["x"][1] = 77.0  # reader mutates its copy
    assert store.get(digest)["x"][1] == 1.0


# --------------------------------------------------------------------------- #
# Building blocks
# --------------------------------------------------------------------------- #
def test_state_digest_content_addressing():
    a = {"x": np.arange(5.0), "meta": {"k": 3}}
    b = {"x": np.arange(5.0), "meta": {"k": 3}}
    assert state_digest(a) == state_digest(b)
    b["x"][2] = -1.0
    assert state_digest(a) != state_digest(b)
    assert state_digest({"x": np.arange(5.0)}) != state_digest(
        {"x": np.arange(5).astype(np.int64)}
    )


def test_copy_state_decouples_arrays():
    state = {"x": np.arange(3.0), "t": (np.ones(2), "tag"), "l": [1, 2]}
    copied = copy_state(state)
    state["x"][0] = 42.0
    state["t"][0][0] = 42.0
    assert copied["x"][0] == 0.0
    assert copied["t"][0][0] == 1.0
    assert copied["t"][1] == "tag"
    assert copied["l"] == [1, 2]


def test_block_store_round_trip(tmp_path):
    store = BlockStore(str(tmp_path / "blocks"))
    state = {"x": np.arange(8.0).reshape(2, 4), "s": "name"}
    digest, created, nbytes = store.put(state)
    assert created and nbytes > 0
    again, created_again, _ = store.put(state)
    assert again == digest and not created_again
    out = store.load(digest)
    assert repr(out) == repr(state)
    swept, _bytes = store.sweep(live=set())
    assert swept == 1
    assert not store.has(digest)


def test_async_writer_deferred_errors_raise_on_flush():
    writer = AsyncCheckpointWriter(max_pending=2)

    def boom():
        raise RuntimeError("disk on fire")

    writer.submit(boom, label="failing save")
    with pytest.raises(CheckpointWriteError, match="disk on fire"):
        writer.flush()
    # The writer stays usable after a failure and closes cleanly.
    done = []
    writer.submit(lambda: done.append(1), label="ok save")
    writer.close()
    assert done == [1]


def test_async_writer_preserves_fifo_order():
    writer = AsyncCheckpointWriter(max_pending=2)
    order = []
    for index in range(6):
        writer.submit(lambda i=index: order.append(i), label=f"save {index}")
    writer.close()
    assert order == list(range(6))

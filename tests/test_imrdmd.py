"""Unit tests for the incremental mrDMD (repro.core.imrdmd) — the paper's contribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.imrdmd import IncrementalMrDMD, UpdateRecord
from repro.core.mrdmd import MrDMDConfig, compute_mrdmd

from helpers import make_multiscale_signal


@pytest.fixture(scope="module")
def signal():
    return make_multiscale_signal(n_sensors=12, n_timesteps=1600, seed=21)


class TestFit:
    def test_fit_builds_batch_tree(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=4)
        model.fit(data[:, :800])
        batch = compute_mrdmd(data[:, :800], dt, MrDMDConfig(max_levels=4))
        assert len(model.tree) == len(batch)
        assert model.n_snapshots == 800
        assert model.n_features == 12
        assert model.fitted

    def test_fit_validates_input(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        with pytest.raises(ValueError):
            model.fit(data[:, :4])       # shorter than min_window
        with pytest.raises(ValueError):
            model.fit(np.ones(10))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IncrementalMrDMD(dt=0.0)
        with pytest.raises(ValueError):
            IncrementalMrDMD(dt=1.0, drift_threshold=-1.0)
        with pytest.raises(TypeError):
            IncrementalMrDMD(dt=1.0, config=MrDMDConfig(), max_levels=3)

    def test_unfitted_access_raises(self):
        model = IncrementalMrDMD(dt=1.0)
        assert not model.fitted
        with pytest.raises(RuntimeError):
            _ = model.tree
        with pytest.raises(RuntimeError):
            model.partial_fit(np.ones((3, 10)))
        with pytest.raises(RuntimeError):
            model.reconstruct()


class TestPartialFit:
    def test_update_record_fields(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=4)
        model.fit(data[:, :800])
        record = model.partial_fit(data[:, 800:1200])
        assert isinstance(record, UpdateRecord)
        assert record.chunk_size == 400
        assert record.total_snapshots == 1200
        assert record.level1_modes >= 0
        assert record.drift >= 0.0
        assert record.new_nodes >= 1

    def test_levels_are_reindexed(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :800])
        levels_before = model.tree.n_levels
        model.partial_fit(data[:, 800:1200])
        # A single level-1 node spans the new total; the old tree is one deeper.
        level1 = model.tree.nodes_at_level(1)
        assert len(level1) == 1
        assert level1[0].n_snapshots == 1200
        assert model.tree.n_levels == levels_before + 1

    def test_new_level1_contributes_only_over_new_chunk(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :800])
        model.partial_fit(data[:, 800:1200])
        level1 = model.tree.nodes_at_level(1)[0]
        assert level1.contribution_window == (800, 1200)

    def test_reconstruction_covers_full_timeline(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=4, keep_data=True)
        model.fit(data[:, :800])
        model.partial_fit(data[:, 800:])
        recon = model.reconstruct()
        assert recon.shape == data.shape
        rel = np.linalg.norm(data - recon) / np.linalg.norm(data)
        assert rel < 0.15

    def test_incremental_close_to_batch_accuracy_q2(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=4, keep_data=True)
        model.fit(data[:, :800])
        model.partial_fit(data[:, 800:])
        gap = model.incremental_vs_batch_gap(data)
        err_batch = np.linalg.norm(
            data - compute_mrdmd(data, dt, model.config).reconstruct(data.shape[1])
        )
        # The incremental shortcut gives up only a small fraction of accuracy.
        assert gap <= 0.5 * err_batch + 1e-9

    def test_multiple_chunks(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3, keep_data=True)
        model.fit(data[:, :400])
        for lo in range(400, 1600, 400):
            model.partial_fit(data[:, lo : lo + 400])
        assert model.n_snapshots == 1600
        assert len(model.history) == 3
        assert model.drift_history.shape == (3,)
        recon = model.reconstruct()
        assert np.all(np.isfinite(recon))

    def test_single_column_chunk(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :800])
        record = model.partial_fit(data[:, 800])
        assert record.chunk_size == 1
        assert model.n_snapshots == 801

    def test_feature_mismatch_rejected(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :800])
        with pytest.raises(ValueError):
            model.partial_fit(np.ones((5, 10)))

    def test_empty_chunk_rejected(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :800])
        with pytest.raises(ValueError):
            model.partial_fit(np.zeros((12, 0)))


class TestDriftAndRefresh:
    def test_drift_threshold_marks_stale(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3, drift_threshold=0.0, keep_data=True)
        model.fit(data[:, :800])
        record = model.partial_fit(data[:, 800:1200] + 50.0)   # large regime change
        assert record.stale
        assert model.stale_levels

    def test_no_threshold_never_stale(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :800])
        model.partial_fit(data[:, 800:1200])
        assert not model.stale_levels

    def test_refresh_requires_keep_data(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :800])
        with pytest.raises(RuntimeError):
            model.refresh()

    def test_refresh_matches_batch_tree(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3, keep_data=True, drift_threshold=0.0)
        model.fit(data[:, :800])
        model.partial_fit(data[:, 800:1200])
        assert model.stale_levels
        refreshed = model.refresh()
        assert not model.stale_levels
        batch = compute_mrdmd(data[:, :1200], dt, model.config)
        assert len(refreshed) == len(batch)
        assert np.allclose(
            refreshed.reconstruct(1200), batch.reconstruct(1200), atol=1e-8
        )

    def test_reconstruction_error_requires_reference_or_keep_data(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :800])
        with pytest.raises(RuntimeError):
            model.reconstruction_error()
        err = model.reconstruction_error(data[:, :800])
        assert err >= 0.0

    def test_reconstruction_error_shape_check(self, signal):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3, keep_data=True)
        model.fit(data[:, :800])
        with pytest.raises(ValueError):
            model.reconstruction_error(data[:, :700])


class TestPerformanceShape:
    def test_partial_fit_cheaper_than_refit_for_long_history(self):
        """The headline claim: updating is cheaper than recomputing (Table I)."""
        import time

        data, dt = make_multiscale_signal(n_sensors=60, n_timesteps=6000, seed=3)
        config = MrDMDConfig(max_levels=6)
        model = IncrementalMrDMD(dt=dt, config=config)
        model.fit(data[:, :5000])

        start = time.perf_counter()
        model.partial_fit(data[:, 5000:])
        partial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        compute_mrdmd(data, dt, config)
        full_seconds = time.perf_counter() - start

        assert partial_seconds < full_seconds

"""FleetMonitor: shard fan-out, merged products, single-shard equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.pipeline import OnlineAnalysisPipeline, PipelineConfig
from repro.service import (
    FleetMonitor,
    MetricSharding,
    RackSharding,
    SingleShard,
)
from repro.service.scenarios import quiet_fleet
from repro.telemetry import HotNodes, TelemetryGenerator


CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=4),
    baseline_range=(40.0, 75.0),
)


@pytest.fixture(scope="module")
def fleet_stream():
    scenario = quiet_fleet()
    generator = TelemetryGenerator(scenario.machine, seed=5, utilization_target=0.3)
    return generator.generate(
        480,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(20, 21), start=200, delta=15.0)],
    )


@pytest.fixture(scope="module")
def rack_monitor(fleet_stream):
    monitor = FleetMonitor.from_stream(fleet_stream, policy=RackSharding(), config=CONFIG)
    monitor.ingest(fleet_stream.values[:, :240])
    monitor.ingest(fleet_stream.values[:, 240:])
    return monitor


def test_from_stream_builds_one_pipeline_per_rack(rack_monitor, fleet_stream):
    assert rack_monitor.n_shards == fleet_stream.machine.n_racks
    assert set(rack_monitor.pipelines) == {s.shard_id for s in rack_monitor.shards}
    assert rack_monitor.step == fleet_stream.n_timesteps


def test_shard_pipelines_see_only_their_rows(rack_monitor, fleet_stream):
    for spec in rack_monitor.shards:
        model = rack_monitor.pipeline(spec.shard_id).model
        assert model.n_features == spec.n_rows
        assert model.n_snapshots == fleet_stream.n_timesteps


def test_rack_values_cover_every_node(rack_monitor, fleet_stream):
    values = rack_monitor.rack_values()
    assert set(values) == set(int(n) for n in np.unique(fleet_stream.node_indices))
    assert all(np.isfinite(v) for v in values.values())


def test_hot_nodes_stand_out_in_merged_zscores(rack_monitor):
    scores = rack_monitor.node_zscores(time_range=(300, 480))
    by_node = dict(zip(scores.node_indices, scores.zscores))
    hot = min(by_node[20], by_node[21])
    others = [z for n, z in by_node.items() if n not in (20, 21)]
    assert hot > max(others), "injected hot nodes must dominate the fleet z-scores"


def test_single_shard_matches_plain_pipeline(fleet_stream):
    monitor = FleetMonitor.from_stream(fleet_stream, policy=SingleShard(), config=CONFIG)
    monitor.ingest(fleet_stream.values[:, :240])
    monitor.ingest(fleet_stream.values[:, 240:])

    pipeline = OnlineAnalysisPipeline.from_stream(fleet_stream, CONFIG)
    pipeline.ingest(fleet_stream.values[:, :240])
    pipeline.ingest(fleet_stream.values[:, 240:])

    assert monitor.rack_values() == pipeline.rack_values()
    mono_spec = monitor.spectra()["all"]
    solo_spec = pipeline.spectrum()
    assert np.array_equal(mono_spec.power, solo_spec.power)
    assert np.array_equal(mono_spec.frequencies, solo_spec.frequencies)


def test_fleet_spectrum_merges_all_shards(rack_monitor):
    fleet = rack_monitor.fleet_spectrum()
    per_shard = rack_monitor.spectra()
    assert fleet.n_modes == sum(s.n_modes for s in per_shard.values())
    by_shard = fleet.total_power_by_shard()
    for shard_id, spectrum in per_shard.items():
        assert by_shard[shard_id] == pytest.approx(spectrum.total_power())
    assert np.isfinite(fleet.dominant_frequency())


def test_metric_sharding_merges_duplicate_nodes(fleet_stream):
    # Two channels -> every node appears in two shards; the merge must
    # aggregate, not duplicate.
    scenario = quiet_fleet()
    generator = TelemetryGenerator(scenario.machine, seed=5, utilization_target=0.3)
    stream = generator.generate(300, sensors=["cpu_temp", "node_power"])
    monitor = FleetMonitor.from_stream(stream, policy=MetricSharding(), config=CONFIG)
    monitor.ingest(stream.values)
    scores = monitor.node_zscores()
    assert scores.node_indices.size == stream.machine.n_nodes
    assert np.unique(scores.node_indices).size == scores.node_indices.size


def test_ingest_rejects_bad_shapes(rack_monitor):
    with pytest.raises(ValueError, match="2-D"):
        rack_monitor.ingest(np.zeros(8))


def test_ingest_rejects_missing_rows(rack_monitor, fleet_stream):
    with pytest.raises(ValueError, match="covers rows up to"):
        rack_monitor.ingest(fleet_stream.values[:-1, :240])


def test_ingest_rejects_extra_rows(rack_monitor, fleet_stream):
    # Regression: extra rows used to be silently dropped by the partition.
    padded = np.vstack([fleet_stream.values[:, :240], np.zeros((3, 240))])
    with pytest.raises(ValueError, match="extra rows"):
        rack_monitor.ingest(padded)


def test_extra_rows_ignore_opt_in(fleet_stream):
    monitor = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG, extra_rows="ignore"
    )
    padded = np.vstack([fleet_stream.values[:, :240], np.zeros((3, 240))])
    snapshot = monitor.ingest(padded)
    assert snapshot.step == 240

    reference = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG
    )
    reference.ingest(fleet_stream.values[:, :240])
    assert monitor.rack_values() == reference.rack_values()


def test_extra_rows_validation():
    with pytest.raises(ValueError, match="extra_rows"):
        FleetMonitor(dt=1.0, shards=SingleShard().partition(
            np.array(["s0", "s1"], dtype=object), np.array([0, 1])
        ), extra_rows="maybe")


def test_monitor_without_engine_returns_no_alerts(rack_monitor):
    assert rack_monitor.evaluate_alerts() == []


def test_fleet_snapshot_diagnostics(fleet_stream):
    monitor = FleetMonitor.from_stream(fleet_stream, policy=RackSharding(), config=CONFIG)
    first = monitor.ingest(fleet_stream.values[:, :240])
    assert first.chunk_size == 240
    assert first.max_drift == 0.0, "initial fit has no drift record"
    second = monitor.ingest(fleet_stream.values[:, 240:300])
    assert second.step == 300
    assert second.max_drift >= 0.0
    assert set(second.shard_snapshots) == set(monitor.pipelines)
    assert second.total_modes == monitor.total_modes > 0

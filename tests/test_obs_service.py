"""repro.obs through the service stack: backend parity, disabled path, CLI.

The observability counters must honour the repo's core discipline: the
*scheduling-independent* totals (counter values, gauge values, histogram
counts — never wall-clock sums) are identical across serial, thread and
process backends, because every backend runs the same per-shard work.
Executor-level instruments are the deliberate exception (they carry a
``backend=`` label and the process backend adds enable/drain round trips),
so the parity comparison filters them out.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.core import MrDMDConfig
from repro.obs import OBS
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, IngestStats, RackSharding
from repro.service.__main__ import main as service_main
from repro.service.alerts import AlertEngine, default_rules
from repro.service.scenarios import quiet_fleet
from repro.telemetry import HotNodes, TelemetryGenerator

BACKENDS = ["serial", "thread", "process"]

CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=4),
    baseline_range=(40.0, 75.0),
)


@pytest.fixture(autouse=True)
def pristine_provider():
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture(scope="module")
def fleet_stream():
    scenario = quiet_fleet()
    generator = TelemetryGenerator(scenario.machine, seed=17, utilization_target=0.3)
    return generator.generate(
        480,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(33, 34), start=220, delta=14.0)],
    )


def _drive(stream, backend):
    """The reference workload under an enabled provider; returns products
    and the scheduling-independent metric totals."""
    OBS.reset()
    obs.enable()
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        alert_engine=AlertEngine(rules=default_rules(), cooldown=60),
        executor=backend,
        max_workers=2,
    )
    with monitor:
        snapshots = [monitor.ingest(stream.values[:, :240])]
        alerts = []
        for lo, hi in ((240, 320), (320, 480)):
            snapshot, fired = monitor.ingest_and_alert(
                stream.values[:, lo:hi], window=150
            )
            snapshots.append(snapshot)
            alerts.extend(fired)
        rack_values = monitor.rack_values()
    totals = OBS.metrics.totals()
    OBS.reset()
    return {"snapshots": snapshots, "alerts": alerts, "rack_values": rack_values}, totals


def _parity_totals(totals: dict) -> dict:
    """Drop the instruments that legitimately differ per backend:
    executor-level ones carry a ``backend=`` label (and the process backend
    adds enable/drain round trips), ``service.rows_per_sec`` is wall-clock,
    and ``core.isvd.rank`` is a last-writer-wins gauge shared by all shards
    of the fleet, so which shard wrote last depends on scheduling.
    ``core.batch.*`` instruments only fire on the serial backend, whose
    ingest dispatches through the stacked shard kernels."""
    dropped = ("service.rows_per_sec", "core.isvd.rank")
    return {
        key: value
        for key, value in totals.items()
        if "executor." not in key
        and "core.batch" not in key
        and key not in dropped
    }


@pytest.fixture(scope="module")
def backend_runs(fleet_stream):
    return {backend: _drive(fleet_stream, backend) for backend in BACKENDS}


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_metric_totals_match_serial(backend_runs, backend):
    """Counters / gauges / histogram counts are scheduling-independent."""
    _, serial_totals = backend_runs["serial"]
    _, totals = backend_runs[backend]
    assert _parity_totals(totals) == _parity_totals(serial_totals)


def test_expected_instruments_are_present(backend_runs):
    _, totals = backend_runs["serial"]
    for key in (
        "service.rows",
        "service.snapshots",
        "core.isvd.rank",
        "alerts.evaluations",
        "service.chunk.seconds.count",
        "span.service.ingest_and_alert.count",
        "span.pipeline.ingest.count",
        "span.core.partial_fit.count",
    ):
        assert key in totals, key
    assert any(key.startswith("alerts.fired{") for key in totals)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_products_unchanged_across_backends(backend_runs, backend):
    """Instrumentation must not perturb the bit-for-bit parity guarantee."""
    serial_products, _ = backend_runs["serial"]
    products, _ = backend_runs[backend]
    assert products["snapshots"] == serial_products["snapshots"]
    assert products["alerts"] == serial_products["alerts"]
    assert products["rack_values"] == serial_products["rack_values"]


def test_disabled_provider_leaves_no_trace_and_same_results(fleet_stream):
    """Default-off: zero metrics, zero trace events, identical products."""
    assert not OBS.enabled
    monitor = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG, executor="thread",
        max_workers=2,
    )
    with monitor:
        disabled_snapshots = [
            monitor.ingest(fleet_stream.values[:, :240]),
            monitor.ingest(fleet_stream.values[:, 240:]),
        ]
    assert len(OBS.metrics) == 0, "disabled provider recorded nothing"
    assert OBS.ring is None

    products, totals = _drive(fleet_stream, "thread")
    assert totals, "enabled run did record"
    # ingest() under the enabled provider returns the same snapshots.
    assert products["snapshots"][0] == disabled_snapshots[0]


def test_ingest_stats_expose_padded_rows(fleet_stream):
    """Satellite fix: rows actually received by nan-padded shards are
    visible both on the snapshot and as a per-shard gauge."""
    obs.enable()
    config = PipelineConfig(
        mrdmd=MrDMDConfig(max_levels=4),
        baseline_range=(40.0, 75.0),
        missing_values="zero",
    )
    monitor = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=config, missing_rows="nan"
    )
    n_rows = fleet_stream.n_rows
    short = fleet_stream.values[: n_rows - 10, :240]
    snapshot = monitor.ingest(short)

    stats = snapshot.ingest_stats
    assert isinstance(stats, IngestStats)
    assert stats.rows_received == n_rows - 10
    assert stats.rows_padded == 10
    assert stats.chunk_columns == 240
    assert sum(stats.rows_received_by_shard.values()) == n_rows - 10
    assert stats.entries_received == (n_rows - 10) * 240

    gauges = {key: value for key, value in OBS.metrics.totals().items()}
    received = {
        key: value
        for key, value in gauges.items()
        if key.startswith("service.shard.rows_received")
    }
    assert sum(received.values()) == n_rows - 10
    assert gauges["service.rows_padded"] == 10 * 240
    assert gauges["service.rows"] == (n_rows - 10) * 240


def test_full_chunk_reports_no_padding(fleet_stream):
    monitor = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG
    )
    snapshot = monitor.ingest(fleet_stream.values[:, :240])
    stats = snapshot.ingest_stats
    assert stats.rows_padded == 0
    assert stats.rows_received == fleet_stream.n_rows
    assert stats.rows_received_by_shard == {
        spec.shard_id: len(spec.row_indices) for spec in monitor.shards
    }


def test_cli_metrics_and_trace_outputs(tmp_path, capsys):
    """The acceptance surface: valid metrics JSON + parseable nested trace."""
    metrics_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "trace.jsonl"
    code = service_main(
        [
            "rack-cooling-failure",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "span latencies" in out and "hotspots" in out

    payload = json.loads(metrics_path.read_text())
    assert set(payload) >= {"counters", "gauges", "histograms", "derived"}
    counters = {
        (entry["name"], tuple(sorted(entry["labels"].items()))): entry["value"]
        for entry in payload["counters"]
    }
    assert counters[("service.rows", ())] > 0
    assert any(name == "alerts.fired" for name, _ in counters)
    assert payload["derived"]["throughput"]["rows_per_sec_overall"] > 0
    span_names = {entry["name"] for entry in payload["histograms"]}
    assert "span.service.ingest_and_alert" in span_names
    assert "span.core.partial_fit" in span_names

    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert lines[0]["kind"] == "trace_header", "version header leads the file"
    assert lines[0]["schema_version"] == 1
    events = [line for line in lines if line.get("kind") != "trace_header"]
    assert events, "trace file has events"
    by_id = {event["span_id"]: event for event in events}

    def ancestry(event):
        names = [event["name"]]
        parent = event.get("parent_id")
        while parent is not None:
            event = by_id[parent]
            names.append(event["name"])
            parent = event.get("parent_id")
        return names

    chains = {tuple(ancestry(event)) for event in events}
    # Nested ingest -> shard task -> pipeline -> core spans.
    assert (
        "core.partial_fit",
        "pipeline.ingest",
        "executor.task",
        "service.ingest_and_alert",
    ) in chains

    # The CLI leaves the module provider pristine for embedders.
    assert not OBS.enabled and len(OBS.metrics) == 0


def test_cli_without_flags_records_nothing(capsys):
    code = service_main(["quiet-fleet"])
    assert code == 0
    assert len(OBS.metrics) == 0
    assert "hotspots" not in capsys.readouterr().out

"""Checkpoint corruption regressions: damaged state must fail *clearly*.

A checkpoint that was truncated mid-write, bit-rotted on disk or edited by
hand must not surface as a bare ``KeyError``/``zipfile.BadZipFile`` three
frames deep in NumPy — every corruption mode raises
:class:`~repro.service.checkpoint.CheckpointError` naming the damaged file
and pointing at the recovery path (an older rotation entry).  Covered for
both the single-machine service checkpoint and the federated wrapper.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.core import MrDMDConfig
from repro.federation import (
    AlertRouter,
    FederatedMonitor,
    MachineRegistry,
    load_federated_checkpoint,
    read_federated_manifest,
    save_federated_checkpoint,
)
from repro.io.delta import CheckpointWriteError
from repro.pipeline import PipelineConfig
from repro.service import (
    AlertEngine,
    CheckpointError,
    FleetMonitor,
    RackSharding,
    default_rules,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.service.checkpoint import MANIFEST_NAME, read_manifest
from repro.telemetry import MachineDescription, TelemetryGenerator
from repro.telemetry.sensors import xc40_sensor_suite

CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=4),
    baseline_range=(40.0, 75.0),
    power_quantile=0.0,
)


def small_machine() -> MachineDescription:
    return MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=2,
        cabinets_per_rack=1,
        slots_per_cabinet=2,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )


def _build_monitor(seed: int) -> FleetMonitor:
    stream = TelemetryGenerator(
        small_machine(), seed=seed, utilization_target=0.3
    ).generate(240, sensors=["cpu_temp"])
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        alert_engine=AlertEngine(rules=default_rules(), cooldown=100),
    )
    monitor.ingest(stream.values)
    return monitor


@pytest.fixture(scope="module")
def pristine_checkpoint(tmp_path_factory):
    """A known-good checkpoint the corruption tests copy and damage."""
    path = tmp_path_factory.mktemp("ckpt") / "good"
    save_checkpoint(str(path), _build_monitor(seed=31))
    return str(path)


@pytest.fixture(scope="module")
def pristine_federated(tmp_path_factory):
    registry = MachineRegistry(
        {"east": _build_monitor(seed=32), "west": _build_monitor(seed=33)}
    )
    federated = FederatedMonitor(registry, router=AlertRouter())
    path = tmp_path_factory.mktemp("fed") / "good"
    save_federated_checkpoint(str(path), federated)
    return str(path)


def _damaged_copy(source: str, destination) -> str:
    target = str(destination / "damaged")
    shutil.copytree(source, target)
    return target


def _shard_files(directory: str) -> list[str]:
    with open(os.path.join(directory, MANIFEST_NAME), encoding="utf-8") as fh:
        return json.load(fh)["shard_files"]


def _edit_manifest(directory: str, mutate) -> None:
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    mutate(manifest)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)


class TestServiceCheckpointCorruption:
    def test_error_type_is_a_value_error(self):
        # Callers that guarded with `except ValueError` keep working.
        assert issubclass(CheckpointError, ValueError)

    def test_truncated_shard_npz(self, pristine_checkpoint, tmp_path):
        target = _damaged_copy(pristine_checkpoint, tmp_path)
        name = _shard_files(target)[0]
        path = os.path.join(target, name)
        with open(path, "rb") as fh:
            payload = fh.read()
        with open(path, "wb") as fh:
            fh.write(payload[: len(payload) // 3])
        with pytest.raises(CheckpointError, match="corrupt or unreadable") as err:
            load_checkpoint(target, rules=default_rules())
        assert name in str(err.value)
        assert "older rotation entry" in str(err.value)

    def test_garbage_shard_npz(self, pristine_checkpoint, tmp_path):
        target = _damaged_copy(pristine_checkpoint, tmp_path)
        name = _shard_files(target)[1]
        with open(os.path.join(target, name), "wb") as fh:
            fh.write(b"this was never a zip archive" * 64)
        with pytest.raises(CheckpointError, match="corrupt or unreadable"):
            load_checkpoint(target, rules=default_rules())

    def test_missing_shard_file(self, pristine_checkpoint, tmp_path):
        target = _damaged_copy(pristine_checkpoint, tmp_path)
        name = _shard_files(target)[0]
        os.remove(os.path.join(target, name))
        with pytest.raises(CheckpointError, match="missing") as err:
            load_checkpoint(target, rules=default_rules())
        assert name in str(err.value)

    @pytest.mark.parametrize("key", ["shards", "shard_files", "dt", "step"])
    def test_missing_manifest_entry(self, pristine_checkpoint, tmp_path, key):
        target = _damaged_copy(pristine_checkpoint, tmp_path)
        _edit_manifest(target, lambda m: m.pop(key))
        with pytest.raises(CheckpointError, match=key):
            load_checkpoint(target, rules=default_rules())

    def test_shard_file_count_mismatch(self, pristine_checkpoint, tmp_path):
        target = _damaged_copy(pristine_checkpoint, tmp_path)
        _edit_manifest(target, lambda m: m["shard_files"].pop())
        with pytest.raises(CheckpointError, match="shard files"):
            load_checkpoint(target, rules=default_rules())

    def test_manifest_not_json(self, pristine_checkpoint, tmp_path):
        target = _damaged_copy(pristine_checkpoint, tmp_path)
        with open(os.path.join(target, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            fh.write("{ truncated mid-wri")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            read_manifest(target)

    def test_manifest_not_an_object(self, pristine_checkpoint, tmp_path):
        target = _damaged_copy(pristine_checkpoint, tmp_path)
        with open(os.path.join(target, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            json.dump(["not", "a", "manifest"], fh)
        with pytest.raises(CheckpointError, match="JSON object"):
            read_manifest(target)

    def test_pristine_copy_still_loads(self, pristine_checkpoint, tmp_path):
        # The damage helpers themselves must not be the reason tests pass.
        target = _damaged_copy(pristine_checkpoint, tmp_path)
        monitor = load_checkpoint(target, rules=default_rules())
        assert monitor.step == 240


class TestDeltaCheckpointCorruption:
    """Delta entries and the async writer under damage and crashes."""

    @staticmethod
    def _delta_checkpoint(tmp_path, seed: int = 34):
        monitor = _build_monitor(seed=seed)
        root = str(tmp_path / "delta")
        save_checkpoint(root, monitor, keep_last=2, format="delta")
        return monitor, root

    @staticmethod
    def _shard_reprs(monitor):
        return {
            spec.shard_id: repr(monitor.shard_state_dict(spec.shard_id))
            for spec in monitor.shards
        }

    def test_missing_delta_block(self, tmp_path):
        monitor, root = self._delta_checkpoint(tmp_path)
        entry = list_checkpoints(root)[0]
        digest = read_manifest(entry.path)["shard_blocks"][0]
        os.remove(os.path.join(root, "blocks", f"{digest}.npz"))
        with pytest.raises(CheckpointError, match="missing") as err:
            load_checkpoint(root, rules=default_rules())
        assert digest[:16] in str(err.value)
        monitor.close()

    def test_corrupt_delta_block(self, tmp_path):
        monitor, root = self._delta_checkpoint(tmp_path)
        entry = list_checkpoints(root)[0]
        digest = read_manifest(entry.path)["shard_blocks"][0]
        with open(os.path.join(root, "blocks", f"{digest}.npz"), "wb") as fh:
            fh.write(b"\x00" * 64)
        with pytest.raises(CheckpointError, match="corrupt or unreadable"):
            load_checkpoint(root, rules=default_rules())
        monitor.close()

    def test_crash_mid_async_write_keeps_previous_entry(
        self, tmp_path, monkeypatch
    ):
        """A writer-thread crash surfaces on flush and loses nothing.

        The failed save never publishes a rotation entry (tmp + rename),
        so the previous entry stays the newest and restores bit-for-bit.
        """
        import repro.service.checkpoint as ckpt_module

        monitor, root = self._delta_checkpoint(tmp_path)
        good = self._shard_reprs(monitor)

        stream = TelemetryGenerator(
            small_machine(), seed=35, utilization_target=0.3
        ).generate(80, sensors=["cpu_temp"])
        monitor.ingest(stream.values)

        real_commit = ckpt_module._commit_rotation

        def crashing_commit(*args, **kwargs):
            raise OSError("disk full during checkpoint write")

        monkeypatch.setattr(ckpt_module, "_commit_rotation", crashing_commit)
        save_checkpoint(root, monitor, keep_last=2, format="delta", mode="async")
        with pytest.raises(CheckpointWriteError, match="disk full"):
            monitor.flush_checkpoints()
        monkeypatch.setattr(ckpt_module, "_commit_rotation", real_commit)

        # The rotation still holds exactly the pre-crash entry and it
        # restores the pre-crash state, bit-for-bit.
        entries = list_checkpoints(root)
        assert len(entries) == 1
        restored = load_checkpoint(root, rules=default_rules())
        assert self._shard_reprs(restored) == good
        restored.close()

        # The monitor recovers: the next save goes through and captures
        # the post-crash state.
        save_checkpoint(root, monitor, keep_last=2, format="delta", mode="async")
        monitor.flush_checkpoints()
        recovered = load_checkpoint(root, rules=default_rules())
        assert self._shard_reprs(recovered) == self._shard_reprs(monitor)
        recovered.close()
        monitor.close()

    def test_interrupted_entry_directory_is_ignored(self, tmp_path):
        """A half-written tmp entry (crash before rename) is invisible."""
        monitor, root = self._delta_checkpoint(tmp_path)
        fake_tmp = os.path.join(root, ".tmp-step_000000999999")
        os.makedirs(fake_tmp)
        with open(os.path.join(fake_tmp, MANIFEST_NAME), "w") as fh:
            fh.write("{ half-writ")
        entries = list_checkpoints(root)
        assert len(entries) == 1
        restored = load_checkpoint(root, rules=default_rules())
        assert self._shard_reprs(restored) == self._shard_reprs(monitor)
        restored.close()
        monitor.close()


class TestFederatedCheckpointCorruption:
    def test_federated_manifest_not_json(self, pristine_federated, tmp_path):
        target = _damaged_copy(pristine_federated, tmp_path)
        with open(os.path.join(target, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            fh.write("not json at all")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            read_federated_manifest(target)

    def test_missing_machine_directory(self, pristine_federated, tmp_path):
        target = _damaged_copy(pristine_federated, tmp_path)
        shutil.rmtree(os.path.join(target, "machines", "west"))
        with pytest.raises(CheckpointError, match="'west'") as err:
            load_federated_checkpoint(target, rules=default_rules())
        assert "older rotation entry" in str(err.value)

    def test_corrupt_machine_shard(self, pristine_federated, tmp_path):
        target = _damaged_copy(pristine_federated, tmp_path)
        machine_dir = os.path.join(target, "machines", "east")
        name = _shard_files(machine_dir)[0]
        with open(os.path.join(machine_dir, name), "wb") as fh:
            fh.write(b"\x00" * 100)
        with pytest.raises(CheckpointError, match="corrupt or unreadable"):
            load_federated_checkpoint(target, rules=default_rules())

    def test_machine_manifest_missing_entry(self, pristine_federated, tmp_path):
        target = _damaged_copy(pristine_federated, tmp_path)
        _edit_manifest(
            os.path.join(target, "machines", "west"), lambda m: m.pop("shards")
        )
        with pytest.raises(CheckpointError, match="shards"):
            load_federated_checkpoint(target, rules=default_rules())

    def test_pristine_federated_still_loads(self, pristine_federated, tmp_path):
        target = _damaged_copy(pristine_federated, tmp_path)
        federated = load_federated_checkpoint(target, rules=default_rules())
        assert set(federated.machines) == {"east", "west"}

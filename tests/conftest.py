"""Shared fixtures for the test suite.

Fixtures build small, fast, deterministic inputs: a multi-timescale signal
matrix with known frequencies (so decomposition tests can assert recovery),
a tiny Theta-like machine, and the corresponding telemetry/job/hardware
logs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig, compute_mrdmd
from repro.joblog import simulate_joblog
from repro.hwlog import HardwareErrorModel
from repro.telemetry import HotNodes, TelemetryGenerator, theta_machine


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic random generator."""
    return np.random.default_rng(12345)


def make_multiscale_signal(
    n_sensors: int = 16,
    n_timesteps: int = 1024,
    dt: float = 0.05,
    *,
    slow_hz: float = 0.05,
    fast_hz: float = 0.5,
    noise: float = 0.2,
    offset: float = 50.0,
    seed: int = 7,
) -> tuple[np.ndarray, float]:
    """Matrix with two known oscillation frequencies plus noise.

    Every sensor sees both oscillations with its own phase, so the data has
    spatial rank ~5 and both frequencies are recoverable by DMD.
    """
    gen = np.random.default_rng(seed)
    t = np.arange(n_timesteps) * dt
    phases = gen.uniform(0, 2 * np.pi, n_sensors)
    data = (
        offset
        + 5.0 * np.sin(2 * np.pi * slow_hz * t[None, :] + phases[:, None])
        + 2.0 * np.sin(2 * np.pi * fast_hz * t[None, :] + 2 * phases[:, None])
        + noise * gen.standard_normal((n_sensors, n_timesteps))
    )
    return data, dt


@pytest.fixture(scope="session")
def multiscale_signal() -> tuple[np.ndarray, float]:
    """(data, dt) with known 0.05 Hz and 0.5 Hz components."""
    return make_multiscale_signal()


@pytest.fixture(scope="session")
def small_machine():
    """A 64-node Theta-like machine (2 racks)."""
    return theta_machine(racks_per_row=1, n_rows=2, node_limit=64)


@pytest.fixture(scope="session")
def small_stream(small_machine):
    """cpu_temp telemetry for the small machine with two injected hot nodes."""
    generator = TelemetryGenerator(small_machine, seed=3, utilization_target=0.3)
    return generator.generate(
        600,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(5, 6), start=200, delta=15.0)],
    )


@pytest.fixture(scope="session")
def small_joblog(small_machine):
    """A job log scheduled on the small machine."""
    return simulate_joblog(small_machine.n_nodes, 600, seed=5, submit_rate=0.1)


@pytest.fixture(scope="session")
def small_hwlog(small_machine):
    """A hardware log for the small machine with nodes 5/6 running hot."""
    model = HardwareErrorModel(n_nodes=small_machine.n_nodes, seed=9)
    return model.generate(600, hot_nodes=[5, 6])


@pytest.fixture(scope="session")
def small_tree(multiscale_signal):
    """A batch mrDMD tree over the multiscale signal."""
    data, dt = multiscale_signal
    return compute_mrdmd(data, dt, MrDMDConfig(max_levels=4))

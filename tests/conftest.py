"""Shared fixtures for the test suite.

Fixtures build small, fast, deterministic inputs: a multi-timescale signal
matrix with known frequencies (so decomposition tests can assert recovery),
a tiny Theta-like machine, and the corresponding telemetry/job/hardware
logs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig, compute_mrdmd
from repro.joblog import simulate_joblog
from repro.hwlog import HardwareErrorModel
from repro.telemetry import HotNodes, TelemetryGenerator, theta_machine

from helpers import make_multiscale_signal  # noqa: F401  (re-export for fixtures)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def multiscale_signal() -> tuple[np.ndarray, float]:
    """(data, dt) with known 0.05 Hz and 0.5 Hz components."""
    return make_multiscale_signal()


@pytest.fixture(scope="session")
def small_machine():
    """A 64-node Theta-like machine (2 racks)."""
    return theta_machine(racks_per_row=1, n_rows=2, node_limit=64)


@pytest.fixture(scope="session")
def small_stream(small_machine):
    """cpu_temp telemetry for the small machine with two injected hot nodes."""
    generator = TelemetryGenerator(small_machine, seed=3, utilization_target=0.3)
    return generator.generate(
        600,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(5, 6), start=200, delta=15.0)],
    )


@pytest.fixture(scope="session")
def small_joblog(small_machine):
    """A job log scheduled on the small machine."""
    return simulate_joblog(small_machine.n_nodes, 600, seed=5, submit_rate=0.1)


@pytest.fixture(scope="session")
def small_hwlog(small_machine):
    """A hardware log for the small machine with nodes 5/6 running hot."""
    model = HardwareErrorModel(n_nodes=small_machine.n_nodes, seed=9)
    return model.generate(600, hot_nodes=[5, 6])


@pytest.fixture(scope="session")
def small_tree(multiscale_signal):
    """A batch mrDMD tree over the multiscale signal."""
    data, dt = multiscale_signal
    return compute_mrdmd(data, dt, MrDMDConfig(max_levels=4))

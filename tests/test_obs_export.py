"""Exporter conformance: Chrome trace-event JSON and OpenMetrics text.

These tests pin the *format contracts* the target tools depend on — the
required per-event keys Perfetto/``chrome://tracing`` validate, and the
line grammar a Prometheus/OpenMetrics scraper lints — plus the
``schema_version`` forward-compat contract shared by trace files and
``--metrics-out`` payloads.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import OBS
from repro.obs.export import (
    TraceFormatError,
    chrome_trace_events,
    read_trace,
    render_openmetrics,
    write_chrome_trace,
    write_openmetrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    METRICS_SCHEMA_VERSION,
    MetricsFormatError,
    load_metrics_json,
    metrics_json,
)
from repro.service.__main__ import main as service_main


@pytest.fixture(autouse=True)
def pristine_provider():
    OBS.reset()
    yield
    OBS.reset()


def _span_events():
    """A small trace recorded through the real tracer."""
    obs.enable()
    with OBS.span("outer", shard="rack-0"):
        with OBS.span("inner"):
            pass
    events = list(OBS.ring.events)
    OBS.reset()
    return events


# --------------------------------------------------------------------------- #
# Chrome trace-event JSON
# --------------------------------------------------------------------------- #
class TestChromeTrace:
    def test_required_keys_and_types(self):
        events = chrome_trace_events(_span_events())
        assert events, "span events converted"
        for event in events:
            # The keys chrome://tracing / Perfetto validate per event.
            assert {"ph", "ts", "pid", "tid", "name"} <= set(event)
            assert event["ph"] == "X"
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_sorted_and_causal(self):
        events = chrome_trace_events(_span_events())
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        by_id = {e["args"]["span_id"]: e for e in events}
        inner = next(e for e in events if e["name"] == "inner")
        assert by_id[inner["args"]["parent_id"]]["name"] == "outer"

    def test_file_round_trips_json(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        # Strip the per-event trace_id so the explicit one is the fallback.
        events = [
            {k: v for k, v in event.items() if k != "trace_id"}
            for event in _span_events()
        ]
        write_chrome_trace(events, path, trace_id="abc123")
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["trace_id"] == "abc123"
        for event in payload["traceEvents"]:
            assert event["args"]["trace_id"] == "abc123"

    def test_unfinished_events_are_skipped(self):
        assert chrome_trace_events([{"name": "open", "start": 1.0}]) == []


# --------------------------------------------------------------------------- #
# OpenMetrics text exposition
# --------------------------------------------------------------------------- #
def _lint_openmetrics(text: str) -> None:
    """A minimal line-format lint: framing, sample grammar, EOF."""
    lines = text.splitlines()
    assert lines[-1] == "# EOF", "exposition must end with # EOF"
    typed: set[str] = set()
    for line in lines[:-1]:
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram")
            typed.add(name)
        elif line.startswith("# HELP "):
            assert line.split(" ")[2] in typed, "HELP follows its TYPE"
        else:
            name_part, _, value = line.rpartition(" ")
            float(value)  # every sample value parses as a number
            bare = name_part.split("{", 1)[0]
            assert not bare.startswith("#")
            # sample belongs to a declared family (modulo suffixes)
            assert any(
                bare == fam
                or bare.startswith(fam + "_")
                for fam in typed
            ), f"undeclared sample {bare!r}"


class TestOpenMetrics:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("service.rows").inc(4000)
        registry.counter("alerts.fired", rule="zscore").inc(3)
        registry.gauge("service.health.score", shard="rack-0").set(0.93)
        hist = registry.histogram("service.chunk.seconds")
        for value in (0.01, 0.02, 0.5):
            hist.observe(value)
        return registry

    def test_lints_and_frames(self):
        text = render_openmetrics(self._registry())
        _lint_openmetrics(text)
        assert "# TYPE service_rows counter" in text
        assert "# TYPE service_chunk_seconds histogram" in text

    def test_counter_total_suffix_and_labels(self):
        text = render_openmetrics(self._registry())
        assert "service_rows_total 4000" in text
        assert 'alerts_fired_total{rule="zscore"} 3' in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(self._registry())
        buckets = [
            line for line in text.splitlines()
            if line.startswith("service_chunk_seconds_bucket")
        ]
        counts = [int(line.rpartition(" ")[2]) for line in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1].startswith('service_chunk_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 3
        assert "service_chunk_seconds_count 3" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("weird", path='a"b\\c\nd').inc()
        text = render_openmetrics(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text
        _lint_openmetrics(text)

    def test_write_openmetrics(self, tmp_path):
        path = tmp_path / "metrics.om"
        text = write_openmetrics(self._registry(), path)
        assert path.read_text() == text


# --------------------------------------------------------------------------- #
# Schema versioning: trace headers and metrics payloads
# --------------------------------------------------------------------------- #
class TestTraceSchema:
    def test_reads_header_and_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=str(path))
        with OBS.span("s"):
            pass
        OBS.reset()
        header, events = read_trace(path)
        assert header["schema_version"] == 1
        assert [e["name"] for e in events] == ["s"]

    def test_refuses_unknown_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "trace_header", "schema_version": 999}) + "\n"
        )
        with pytest.raises(TraceFormatError, match="999"):
            read_trace(path)

    def test_accepts_headerless_legacy_files(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(json.dumps({"name": "s", "span_id": 1}) + "\n")
        header, events = read_trace(path)
        assert header == {}
        assert events[0]["name"] == "s"

    def test_refuses_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            read_trace(path)


class TestMetricsSchema:
    def test_payload_is_stamped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        payload = metrics_json(registry)
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION

    def test_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("service.rows").inc(7)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(metrics_json(registry)))
        restored = load_metrics_json(str(path))
        assert restored.counter("service.rows").value == 7

    def test_refuses_missing_and_unknown_versions(self, tmp_path):
        with pytest.raises(MetricsFormatError, match="schema_version"):
            load_metrics_json({"counters": []})
        with pytest.raises(MetricsFormatError, match="999"):
            load_metrics_json({"schema_version": 999})
        path = tmp_path / "bad.json"
        path.write_text("nope{")
        with pytest.raises(MetricsFormatError, match="not valid JSON"):
            load_metrics_json(str(path))
        with pytest.raises(MetricsFormatError, match="not an object"):
            load_metrics_json([1, 2, 3])


# --------------------------------------------------------------------------- #
# CLI: both alternate formats end to end
# --------------------------------------------------------------------------- #
def test_cli_chrome_and_openmetrics_formats(tmp_path, capsys):
    trace_path = tmp_path / "trace.chrome.json"
    metrics_path = tmp_path / "metrics.om"
    code = service_main(
        [
            "quiet-fleet",
            "--trace-out", str(trace_path),
            "--trace-format", "chrome",
            "--metrics-out", str(metrics_path),
            "--metrics-format", "openmetrics",
        ]
    )
    assert code == 0
    payload = json.loads(trace_path.read_text())
    assert payload["traceEvents"], "chrome trace carries the run's spans"
    for event in payload["traceEvents"]:
        assert {"ph", "ts", "pid", "tid", "name"} <= set(event)
    names = {event["name"] for event in payload["traceEvents"]}
    assert "service.ingest_and_alert" in names
    _lint_openmetrics(metrics_path.read_text())
    out = capsys.readouterr().out
    assert "(chrome)" in out and "(openmetrics)" in out
    assert not OBS.enabled and len(OBS.metrics) == 0

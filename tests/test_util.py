"""Unit tests for the shared utilities (repro.util)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import (
    RunningMoments,
    Timer,
    TimingTable,
    chunk_indices,
    ensure_2d,
    ensure_positive,
    ensure_probability,
    iter_chunks,
    make_shard_executor,
    parallel_map,
    require,
    rolling_mean,
    running_moments,
    split_columns,
    timeit,
)
from repro.util.parallel import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ThreadShardExecutor,
)


class TestTimer:
    def test_timer_measures_elapsed(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed >= 0.0

    def test_timer_restart(self):
        timer = Timer()
        with timer:
            pass
        timer.restart()
        assert timer.elapsed == 0.0

    def test_timeit_statistics(self):
        stats = timeit(lambda: sum(range(1000)), repeats=3, warmup=1)
        assert set(stats) >= {"mean", "std", "min", "max"}
        assert stats["min"] <= stats["mean"] <= stats["max"]
        with pytest.raises(ValueError):
            timeit(lambda: None, repeats=0)


class TestTimingTable:
    def test_add_and_render(self):
        table = TimingTable(columns=["Dataset", "T", "Seconds"])
        table.add_row("SC Log", 1000, 1.234)
        table.add_row("GPU", 2000, 2.5)
        text = table.render()
        assert "Dataset" in text and "SC Log" in text
        assert len(text.splitlines()) == 4
        assert table.to_dicts()[0]["T"] == 1000

    def test_row_width_mismatch(self):
        table = TimingTable(columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_empty(self):
        table = TimingTable(columns=["a"])
        assert "a" in table.render()


class TestChunking:
    def test_chunk_indices_cover_range(self):
        chunks = chunk_indices(10, 3)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_chunk_indices_validation(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 3)
        with pytest.raises(ValueError):
            chunk_indices(10, 0)

    def test_iter_chunks_views(self):
        data = np.arange(20).reshape(2, 10)
        chunks = list(iter_chunks(data, 4))
        assert [c.shape[1] for c in chunks] == [4, 4, 2]
        assert np.shares_memory(chunks[0], data)

    def test_iter_chunks_axis0(self):
        data = np.arange(12).reshape(6, 2)
        chunks = list(iter_chunks(data, 4, axis=0))
        assert [c.shape[0] for c in chunks] == [4, 2]

    def test_iter_chunks_bad_axis(self):
        with pytest.raises(ValueError):
            list(iter_chunks(np.ones((2, 2)), 1, axis=5))

    def test_split_columns(self):
        data = np.arange(12).reshape(3, 4)
        left, right = split_columns(data, 1)
        assert left.shape == (3, 1) and right.shape == (3, 3)
        with pytest.raises(ValueError):
            split_columns(data, 7)
        with pytest.raises(ValueError):
            split_columns(np.ones(4), 2)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, processes=1) == [i * i for i in items]

    def test_process_pool_path(self):
        result = parallel_map(_square, list(range(8)), processes=2)
        assert result == [i * i for i in range(8)]

    def test_single_item_never_spawns(self):
        assert parallel_map(_square, [5], processes=4) == [25]

    def test_invalid_processes_rejected(self):
        for bad in (0, -1, -8):
            with pytest.raises(ValueError, match="processes"):
                parallel_map(_square, [1, 2, 3], processes=bad)

    def test_invalid_chunksize_rejected(self):
        for bad in (0, -3):
            with pytest.raises(ValueError, match="chunksize"):
                parallel_map(_square, [1, 2, 3], chunksize=bad)


# --------------------------------------------------------------------------- #
# Persistent shard executors
# --------------------------------------------------------------------------- #
class _Accumulator:
    """Stateful shard object (top-level so the process backend can ship it)."""

    def __init__(self, total: int = 0) -> None:
        self.total = total
        self.calls: list[int] = []


def _add(acc: _Accumulator, amount: int) -> int:
    acc.total += amount
    acc.calls.append(amount)
    return acc.total


def _read_total(acc: _Accumulator) -> int:
    return acc.total


def _boom(acc: _Accumulator) -> None:
    raise RuntimeError("boom in worker")


BACKENDS = ["serial", "thread", "process"]


@pytest.fixture(params=BACKENDS)
def executor(request):
    ex = make_shard_executor(request.param, max_workers=2)
    yield ex
    ex.close()


class TestShardExecutor:
    def test_factory_backends(self):
        assert isinstance(make_shard_executor(None), SerialShardExecutor)
        assert isinstance(make_shard_executor("serial"), SerialShardExecutor)
        assert isinstance(make_shard_executor("thread"), ThreadShardExecutor)
        assert isinstance(make_shard_executor("process"), ProcessShardExecutor)
        with pytest.raises(ValueError, match="backend"):
            make_shard_executor("fork-bomb")

    def test_factory_passthrough_rules(self):
        fresh = SerialShardExecutor()
        assert make_shard_executor(fresh) is fresh
        with pytest.raises(ValueError, match="max_workers"):
            make_shard_executor(SerialShardExecutor(), max_workers=2)
        used = SerialShardExecutor()
        used.start({"a": _Accumulator()})
        with pytest.raises(ValueError, match="fresh"):
            make_shard_executor(used)

    def test_submit_call_and_per_shard_fifo(self, executor):
        executor.start({"a": _Accumulator(), "b": _Accumulator(100)})
        tasks = [executor.submit("a", _add, amount) for amount in (1, 2, 3)]
        assert [t.result() for t in tasks] == [1, 3, 6]
        assert executor.call("b", _add, 5) == 105
        # A query submitted after an ingest-style call sees its effect.
        executor.submit("a", _add, 10)
        assert executor.call("a", _read_total) == 16

    def test_broadcast_and_map(self, executor):
        executor.start({"a": _Accumulator(), "b": _Accumulator(100)})
        assert executor.broadcast(_add, 7) == {"a": 7, "b": 107}
        assert executor.map(_add, {"a": (3,), "b": (4,)}) == {"a": 10, "b": 111}

    def test_worker_exception_propagates(self, executor):
        executor.start({"a": _Accumulator()})
        task = executor.submit("a", _boom)
        with pytest.raises(RuntimeError, match="boom in worker"):
            task.result()
        # The worker survives a failed task.
        assert executor.call("a", _add, 2) == 2

    def test_pull_returns_resident_state(self, executor):
        acc = _Accumulator()
        executor.start({"a": acc})
        executor.call("a", _add, 11)
        pulled = executor.pull()["a"]
        assert pulled.total == 11
        if executor.backend in ("serial", "thread"):
            assert pulled is acc, "serial/thread share the parent's objects"

    def test_install_replaces_resident_object(self, executor):
        executor.start({"a": _Accumulator()})
        executor.call("a", _add, 5)
        executor.install("a", _Accumulator(1000))
        assert executor.call("a", _read_total) == 1000

    def test_lifecycle_errors(self, executor):
        with pytest.raises(RuntimeError, match="not started"):
            executor.submit("a", _read_total)
        executor.start({"a": _Accumulator()})
        with pytest.raises(RuntimeError, match="already started"):
            executor.start({"a": _Accumulator()})
        with pytest.raises(KeyError):
            executor.submit("nope", _read_total)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit("a", _read_total)

    def test_start_requires_shards(self, executor):
        with pytest.raises(ValueError, match="at least one"):
            executor.start({})

    def test_context_manager_closes(self):
        with make_shard_executor("thread", max_workers=1) as ex:
            ex.start({"a": _Accumulator()})
            assert ex.call("a", _add, 1) == 1
        assert ex.closed

    def test_process_backend_keeps_state_remote(self):
        acc = _Accumulator()
        with make_shard_executor("process", max_workers=1) as ex:
            ex.start({"a": acc})
            assert ex.call("a", _add, 9) == 9
            # The parent's copy is untouched until pulled.
            assert acc.total == 0
            assert ex.pull()["a"].total == 9

    def test_more_shards_than_workers(self, executor):
        shards = {f"s{i}": _Accumulator(i) for i in range(5)}
        executor.start(shards)
        assert executor.broadcast(_read_total) == {f"s{i}": i for i in range(5)}


class TestStats:
    def test_running_moments_match_numpy(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((5, 100))
        moments = running_moments(data)
        assert np.allclose(moments.mean, data.mean(axis=1))
        assert np.allclose(moments.std, data.std(axis=1), atol=1e-10)
        assert moments.count == 100

    def test_running_moments_incremental_equals_batch(self):
        gen = np.random.default_rng(1)
        data = gen.standard_normal((3, 60))
        inc = RunningMoments()
        inc.update(data[:, :20])
        inc.update(data[:, 20:50])
        inc.update(data[:, 50:])
        batch = running_moments(data)
        assert np.allclose(inc.mean, batch.mean)
        assert np.allclose(inc.variance, batch.variance)

    def test_running_moments_single_vector(self):
        moments = RunningMoments().update(np.array([1.0, 2.0]))
        assert moments.count == 1
        assert np.allclose(moments.variance, 0.0)

    def test_running_moments_dimension_mismatch(self):
        moments = RunningMoments().update(np.zeros(3))
        with pytest.raises(ValueError):
            moments.update(np.zeros(4))
        with pytest.raises(ValueError):
            moments.update(np.zeros((2, 2, 2)))

    def test_rolling_mean_window_one_is_identity(self):
        data = np.random.default_rng(2).standard_normal((2, 10))
        assert np.allclose(rolling_mean(data, 1), data)

    def test_rolling_mean_constant_series(self):
        assert np.allclose(rolling_mean(np.full(10, 3.0), 4), 3.0)

    def test_rolling_mean_smooths(self):
        gen = np.random.default_rng(3)
        noisy = gen.standard_normal(500)
        smooth = rolling_mean(noisy, 50)
        assert smooth.std() < noisy.std()

    def test_rolling_mean_validation(self):
        with pytest.raises(ValueError):
            rolling_mean(np.ones(5), 0)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_ensure_2d(self):
        out = ensure_2d([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        with pytest.raises(ValueError):
            ensure_2d(np.ones(3), name="thing")

    def test_ensure_positive(self):
        assert ensure_positive(2.0) == 2.0
        with pytest.raises(ValueError):
            ensure_positive(0.0)

    def test_ensure_probability(self):
        assert ensure_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            ensure_probability(1.5)

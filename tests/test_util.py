"""Unit tests for the shared utilities (repro.util)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import (
    RunningMoments,
    Timer,
    TimingTable,
    chunk_indices,
    ensure_2d,
    ensure_positive,
    ensure_probability,
    iter_chunks,
    parallel_map,
    require,
    rolling_mean,
    running_moments,
    split_columns,
    timeit,
)


class TestTimer:
    def test_timer_measures_elapsed(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed >= 0.0

    def test_timer_restart(self):
        timer = Timer()
        with timer:
            pass
        timer.restart()
        assert timer.elapsed == 0.0

    def test_timeit_statistics(self):
        stats = timeit(lambda: sum(range(1000)), repeats=3, warmup=1)
        assert set(stats) >= {"mean", "std", "min", "max"}
        assert stats["min"] <= stats["mean"] <= stats["max"]
        with pytest.raises(ValueError):
            timeit(lambda: None, repeats=0)


class TestTimingTable:
    def test_add_and_render(self):
        table = TimingTable(columns=["Dataset", "T", "Seconds"])
        table.add_row("SC Log", 1000, 1.234)
        table.add_row("GPU", 2000, 2.5)
        text = table.render()
        assert "Dataset" in text and "SC Log" in text
        assert len(text.splitlines()) == 4
        assert table.to_dicts()[0]["T"] == 1000

    def test_row_width_mismatch(self):
        table = TimingTable(columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_empty(self):
        table = TimingTable(columns=["a"])
        assert "a" in table.render()


class TestChunking:
    def test_chunk_indices_cover_range(self):
        chunks = chunk_indices(10, 3)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_chunk_indices_validation(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 3)
        with pytest.raises(ValueError):
            chunk_indices(10, 0)

    def test_iter_chunks_views(self):
        data = np.arange(20).reshape(2, 10)
        chunks = list(iter_chunks(data, 4))
        assert [c.shape[1] for c in chunks] == [4, 4, 2]
        assert np.shares_memory(chunks[0], data)

    def test_iter_chunks_axis0(self):
        data = np.arange(12).reshape(6, 2)
        chunks = list(iter_chunks(data, 4, axis=0))
        assert [c.shape[0] for c in chunks] == [4, 2]

    def test_iter_chunks_bad_axis(self):
        with pytest.raises(ValueError):
            list(iter_chunks(np.ones((2, 2)), 1, axis=5))

    def test_split_columns(self):
        data = np.arange(12).reshape(3, 4)
        left, right = split_columns(data, 1)
        assert left.shape == (3, 1) and right.shape == (3, 3)
        with pytest.raises(ValueError):
            split_columns(data, 7)
        with pytest.raises(ValueError):
            split_columns(np.ones(4), 2)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, processes=1) == [i * i for i in items]

    def test_process_pool_path(self):
        result = parallel_map(_square, list(range(8)), processes=2)
        assert result == [i * i for i in range(8)]

    def test_single_item_never_spawns(self):
        assert parallel_map(_square, [5], processes=4) == [25]


class TestStats:
    def test_running_moments_match_numpy(self):
        gen = np.random.default_rng(0)
        data = gen.standard_normal((5, 100))
        moments = running_moments(data)
        assert np.allclose(moments.mean, data.mean(axis=1))
        assert np.allclose(moments.std, data.std(axis=1), atol=1e-10)
        assert moments.count == 100

    def test_running_moments_incremental_equals_batch(self):
        gen = np.random.default_rng(1)
        data = gen.standard_normal((3, 60))
        inc = RunningMoments()
        inc.update(data[:, :20])
        inc.update(data[:, 20:50])
        inc.update(data[:, 50:])
        batch = running_moments(data)
        assert np.allclose(inc.mean, batch.mean)
        assert np.allclose(inc.variance, batch.variance)

    def test_running_moments_single_vector(self):
        moments = RunningMoments().update(np.array([1.0, 2.0]))
        assert moments.count == 1
        assert np.allclose(moments.variance, 0.0)

    def test_running_moments_dimension_mismatch(self):
        moments = RunningMoments().update(np.zeros(3))
        with pytest.raises(ValueError):
            moments.update(np.zeros(4))
        with pytest.raises(ValueError):
            moments.update(np.zeros((2, 2, 2)))

    def test_rolling_mean_window_one_is_identity(self):
        data = np.random.default_rng(2).standard_normal((2, 10))
        assert np.allclose(rolling_mean(data, 1), data)

    def test_rolling_mean_constant_series(self):
        assert np.allclose(rolling_mean(np.full(10, 3.0), 4), 3.0)

    def test_rolling_mean_smooths(self):
        gen = np.random.default_rng(3)
        noisy = gen.standard_normal(500)
        smooth = rolling_mean(noisy, 50)
        assert smooth.std() < noisy.std()

    def test_rolling_mean_validation(self):
        with pytest.raises(ValueError):
            rolling_mean(np.ones(5), 0)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_ensure_2d(self):
        out = ensure_2d([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        with pytest.raises(ValueError):
            ensure_2d(np.ones(3), name="thing")

    def test_ensure_positive(self):
        assert ensure_positive(2.0) == 2.0
        with pytest.raises(ValueError):
            ensure_positive(0.0)

    def test_ensure_probability(self):
        assert ensure_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            ensure_probability(1.5)

"""Unit tests for multi-log alignment (repro.align)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import (
    Timeline,
    bin_events,
    build_alignment_report,
    correlate_with_hardware,
    correlate_with_jobs,
    event_presence_matrix,
    job_activity_matrix,
    map_zscores_to_nodes,
)
from repro.core.baseline import BaselineModel, BaselineSpec, ZScoreCategory
from repro.hwlog import HardwareEvent, HardwareEventType, HardwareLog
from repro.joblog import JobLog, JobRecord


class TestTimeline:
    def test_durations(self):
        timeline = Timeline(n_timesteps=1920, dt=15.0)
        assert timeline.duration_seconds == pytest.approx(28_800.0)
        assert timeline.duration_hours == pytest.approx(8.0)

    def test_windows_split(self):
        timeline = Timeline(n_timesteps=100, dt=1.0)
        windows = timeline.windows(2)
        assert windows == [(0, 50), (50, 100)]
        assert timeline.windows(3)[0][0] == 0
        with pytest.raises(ValueError):
            timeline.windows(0)

    def test_step_of_seconds_clips(self):
        timeline = Timeline(n_timesteps=10, dt=2.0)
        assert timeline.step_of_seconds(5.0) == 2
        assert timeline.step_of_seconds(1e9) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            Timeline(0, 1.0)
        with pytest.raises(ValueError):
            Timeline(10, 0.0)


class TestMatrices:
    def test_job_activity_matrix(self):
        log = JobLog([JobRecord(0, "p", "u", (1, 2), 0, 10, 20, 30)])
        timeline = Timeline(n_timesteps=30, dt=1.0)
        activity = job_activity_matrix(log, 4, timeline)
        assert activity.shape == (4, 30)
        assert activity[1, 10:20].all()

    def test_event_presence_matrix(self):
        log = HardwareLog([
            HardwareEvent(node=2, event_type=HardwareEventType.NODE_DOWN,
                          start_step=5, end_step=15, severity=3),
            HardwareEvent(node=0, event_type=HardwareEventType.LINK_FAULT,
                          start_step=3, end_step=4),
        ])
        timeline = Timeline(n_timesteps=20, dt=1.0)
        presence = event_presence_matrix(log, 4, timeline)
        assert presence[2, 5:15].all()
        assert presence[0, 3]
        restricted = event_presence_matrix(log, 4, timeline,
                                           event_type=HardwareEventType.LINK_FAULT)
        assert not restricted[2].any()

    def test_bin_events(self):
        log = HardwareLog([
            HardwareEvent(node=1, event_type=HardwareEventType.LINK_FAULT,
                          start_step=2, end_step=3),
            HardwareEvent(node=1, event_type=HardwareEventType.LINK_FAULT,
                          start_step=90, end_step=91),
        ])
        timeline = Timeline(n_timesteps=100, dt=1.0)
        counts = bin_events(log, 3, timeline, n_bins=2)
        assert counts.shape == (3, 2)
        assert counts[1].tolist() == [1, 1]
        with pytest.raises(ValueError):
            bin_events(log, 3, timeline, n_bins=0)


def make_node_scores(n_nodes=20, hot=(3, 4), cold=(7,)):
    data = 50 + np.random.default_rng(0).standard_normal((n_nodes, 100))
    for n in hot:
        data[n] += 20
    for n in cold:
        data[n] -= 20
    model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
    result = model.score(data)
    return map_zscores_to_nodes(result, np.arange(n_nodes))


class TestZScoreMapping:
    def test_aggregation_over_multiple_rows_per_node(self):
        # Two rows per node: node 1 is hot on both channels.
        data = 50 + np.zeros((6, 50))
        data[1] += 20
        data[4] += 20
        node_of_row = np.array([0, 1, 2, 0, 1, 2])
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
        scores = model.score(data)
        node_scores = map_zscores_to_nodes(scores, node_of_row)
        assert node_scores.node_indices.tolist() == [0, 1, 2]
        assert node_scores.categories[1] is ZScoreCategory.VERY_HIGH
        assert node_scores.categories[0] is ZScoreCategory.BASELINE

    def test_reducers(self):
        data = 50 + np.zeros((2, 50))
        data[1] += 20
        node_of_row = np.array([0, 0])
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
        scores = model.score(data)
        mean_scores = map_zscores_to_nodes(scores, node_of_row, reducer="mean")
        max_scores = map_zscores_to_nodes(scores, node_of_row, reducer="max")
        absmax_scores = map_zscores_to_nodes(scores, node_of_row, reducer="absmax")
        assert max_scores.zscores[0] >= mean_scores.zscores[0]
        assert absmax_scores.zscores[0] == max_scores.zscores[0]
        with pytest.raises(ValueError):
            map_zscores_to_nodes(scores, node_of_row, reducer="bogus")

    def test_helpers_and_validation(self):
        node_scores = make_node_scores()
        assert set(node_scores.hot_nodes().tolist()) == {3, 4}
        assert set(node_scores.cold_nodes().tolist()) == {7}
        assert node_scores.as_dict()[3] > 2.0
        scores = BaselineModel.from_data(
            np.ones((3, 5)) * 50, BaselineSpec(value_range=(46, 54))
        ).score(np.ones((3, 5)) * 50)
        with pytest.raises(ValueError):
            map_zscores_to_nodes(scores, np.arange(2))


class TestCorrelation:
    def test_hardware_correlation_detects_association(self):
        node_scores = make_node_scores(hot=(3, 4, 5), cold=())
        hwlog = HardwareLog([
            HardwareEvent(node=n, event_type=HardwareEventType.THERMAL_TRIP,
                          start_step=10, end_step=11, severity=2)
            for n in (3, 4, 5)
        ])
        report = correlate_with_hardware(node_scores, hwlog)
        assert report.n_positive == 3
        assert report.odds_ratio > 1.0
        assert report.rate_by_category[ZScoreCategory.VERY_HIGH] == pytest.approx(1.0)

    def test_hardware_correlation_event_type_filter(self):
        node_scores = make_node_scores()
        hwlog = HardwareLog([
            HardwareEvent(node=0, event_type=HardwareEventType.LINK_FAULT,
                          start_step=1, end_step=2)
        ])
        report = correlate_with_hardware(
            node_scores, hwlog, event_type=HardwareEventType.NODE_DOWN
        )
        assert report.n_positive == 0

    def test_hardware_correlation_window_filter(self):
        node_scores = make_node_scores()
        hwlog = HardwareLog([
            HardwareEvent(node=3, event_type=HardwareEventType.THERMAL_TRIP,
                          start_step=500, end_step=501)
        ])
        inside = correlate_with_hardware(node_scores, hwlog, window=(400, 600))
        outside = correlate_with_hardware(node_scores, hwlog, window=(0, 100))
        assert inside.n_positive == 1
        assert outside.n_positive == 0

    def test_job_failure_correlation(self):
        node_scores = make_node_scores(hot=(3,), cold=())
        joblog = JobLog([
            JobRecord(0, "p", "u", (3,), 0, 0, 50, 60, exit_status=1),
            JobRecord(1, "p", "u", (10,), 0, 0, 50, 60, exit_status=0),
        ])
        report = correlate_with_jobs(node_scores, joblog)
        assert report.n_positive == 1
        assert report.rate_by_category[ZScoreCategory.VERY_HIGH] == pytest.approx(1.0)


class TestAlignmentReport:
    def test_full_report(self):
        node_scores = make_node_scores()
        hwlog = HardwareLog([
            HardwareEvent(node=3, event_type=HardwareEventType.CORRECTABLE_MEMORY_ERROR,
                          start_step=1, end_step=2)
        ])
        joblog = JobLog([JobRecord(0, "PROJ-A", "u", (3, 4), 0, 0, 50, 60)])
        report = build_alignment_report(node_scores, hwlog=hwlog, joblog=joblog)
        assert report.hardware is not None
        assert report.jobs is not None
        assert 3 in report.memory_error_nodes
        assert "PROJ-A" in report.flagged_projects
        text = report.render()
        assert "hot nodes" in text and "memory errors" in text

    def test_report_without_logs(self):
        node_scores = make_node_scores()
        report = build_alignment_report(node_scores)
        assert report.hardware is None and report.jobs is None
        assert report.memory_error_nodes.size == 0
        assert "Alignment report" in report.render()

"""Property-based tests (hypothesis) on the core numerical invariants.

These complement the example-based unit tests by checking structural
invariants over randomly generated inputs: SVHT rank bounds, incremental-SVD
factor consistency, mrDMD window tiling and slow-mode cutoffs, z-score
classification consistency, colormap bounds, and layout-grammar round trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.baseline import ZScoreCategory, classify_zscores, compute_zscores
from repro.core.dmd import compute_dmd, slow_mode_mask
from repro.core.isvd import IncrementalSVD
from repro.core.mrdmd import MrDMDConfig, compute_mrdmd
from repro.core.svht import svht_rank
from repro.util.chunking import chunk_indices
from repro.util.stats import RunningMoments
from repro.viz.colormap import DivergingTurbo, turbo_rgb
from repro.viz.layout import RackLayout
from repro.telemetry.machine import MachineDescription


SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# --------------------------------------------------------------------------- #
# SVHT
# --------------------------------------------------------------------------- #
@SETTINGS
@given(
    n_rows=st.integers(4, 60),
    n_cols=st.integers(4, 60),
    seed=st.integers(0, 10_000),
)
def test_svht_rank_bounded_by_matrix_rank(n_rows, n_cols, seed):
    gen = np.random.default_rng(seed)
    x = gen.standard_normal((n_rows, n_cols))
    s = np.linalg.svd(x, compute_uv=False)
    result = svht_rank(s, x.shape)
    assert 1 <= result.rank <= min(n_rows, n_cols)
    assert result.threshold >= 0.0


@SETTINGS
@given(
    scale=st.floats(0.01, 1e4),
    n=st.integers(4, 40),
    seed=st.integers(0, 1000),
)
def test_svht_rank_is_scale_invariant(scale, n, seed):
    gen = np.random.default_rng(seed)
    x = gen.standard_normal((n, n + 3))
    s = np.linalg.svd(x, compute_uv=False)
    assert svht_rank(s, x.shape).rank == svht_rank(s * scale, x.shape).rank


# --------------------------------------------------------------------------- #
# Incremental SVD
# --------------------------------------------------------------------------- #
@SETTINGS
@given(
    n_rows=st.integers(5, 30),
    n_initial=st.integers(5, 20),
    n_update=st.integers(1, 20),
    rank=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_isvd_invariants(n_rows, n_initial, n_update, rank, seed):
    gen = np.random.default_rng(seed)
    x = gen.standard_normal((n_rows, n_initial + n_update))
    isvd = IncrementalSVD(rank=rank, use_svht=False)
    isvd.initialize(x[:, :n_initial])
    isvd.update(x[:, n_initial:])
    # Singular values are non-negative and non-increasing.
    assert np.all(isvd.s >= -1e-12)
    assert np.all(np.diff(isvd.s) <= 1e-9)
    # The left basis stays orthonormal.
    gram = isvd.u.T @ isvd.u
    assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-6)
    # Column bookkeeping is exact.
    assert isvd.n_columns == n_initial + n_update
    assert isvd.vh.shape[1] == n_initial + n_update


@SETTINGS
@given(
    n_rows=st.integers(6, 24),
    rank=st.integers(1, 4),
    n_chunks=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_isvd_exact_for_low_rank_data(n_rows, rank, n_chunks, seed):
    gen = np.random.default_rng(seed)
    total_cols = 10 * (n_chunks + 1)
    x = gen.standard_normal((n_rows, rank)) @ gen.standard_normal((rank, total_cols))
    isvd = IncrementalSVD(rank=rank, use_svht=False)
    isvd.initialize(x[:, :10])
    for c in range(n_chunks):
        isvd.update(x[:, 10 * (c + 1) : 10 * (c + 2)])
    approx = (isvd.u * isvd.s) @ isvd.vh
    assert np.allclose(approx, x, atol=1e-6 * max(1.0, np.abs(x).max()))


# --------------------------------------------------------------------------- #
# DMD / mrDMD
# --------------------------------------------------------------------------- #
@SETTINGS
@given(
    n_sensors=st.integers(3, 12),
    n_steps=st.integers(20, 80),
    dt=st.floats(0.01, 10.0),
    seed=st.integers(0, 10_000),
)
def test_dmd_shapes_and_finiteness(n_sensors, n_steps, dt, seed):
    gen = np.random.default_rng(seed)
    data = gen.standard_normal((n_sensors, n_steps)).cumsum(axis=1)
    result = compute_dmd(data, dt)
    assert result.modes.shape[0] == n_sensors
    assert result.modes.shape[1] == result.eigenvalues.size == result.amplitudes.size
    assert np.all(np.isfinite(result.frequencies))
    assert np.all(result.frequencies >= 0)
    assert np.all(result.power >= 0)
    # Slow-mode mask respects its cutoff for any rho.
    rho = float(gen.uniform(0, 1.0 / dt))
    mask = slow_mode_mask(result, rho)
    assert np.all(result.frequencies[mask] <= rho + 1e-12)


@SETTINGS
@given(
    n_sensors=st.integers(3, 10),
    n_steps=st.integers(64, 200),
    max_levels=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_mrdmd_tree_invariants(n_sensors, n_steps, max_levels, seed):
    gen = np.random.default_rng(seed)
    t = np.arange(n_steps) * 0.1
    data = (
        np.sin(0.3 * t)[None, :]
        + 0.5 * gen.standard_normal((n_sensors, n_steps))
    )
    tree = compute_mrdmd(data, 0.1, MrDMDConfig(max_levels=max_levels, min_window=16))
    assert tree.n_levels <= max_levels
    for level in tree.levels():
        nodes = tree.nodes_at_level(level)
        # Windows at one level never overlap and are ordered.
        for a, b in zip(nodes[:-1], nodes[1:]):
            assert a.end <= b.start
        for node in nodes:
            assert node.n_snapshots >= 16
            assert np.all(node.frequencies <= node.rho + 1e-9)
    recon = tree.reconstruct(n_steps)
    assert recon.shape == data.shape
    assert np.all(np.isfinite(recon))


# --------------------------------------------------------------------------- #
# Baseline / z-scores
# --------------------------------------------------------------------------- #
@SETTINGS
@given(
    values=npst.arrays(
        dtype=np.float64,
        shape=st.integers(1, 50),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    ),
    mean=st.floats(-100, 100),
    std=st.floats(0.01, 100),
)
def test_zscore_classification_consistency(values, mean, std):
    z = compute_zscores(values, mean, std)
    cats = classify_zscores(z)
    for zi, cat in zip(z, cats):
        if cat is ZScoreCategory.VERY_HIGH:
            assert zi > 2.0
        elif cat is ZScoreCategory.VERY_LOW:
            assert zi < -2.0
        elif cat is ZScoreCategory.BASELINE:
            assert -1.5 <= zi <= 1.5


@SETTINGS
@given(
    data=npst.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 8), st.integers(2, 40)),
        elements=st.floats(-1e3, 1e3, allow_nan=False),
    )
)
def test_running_moments_match_numpy(data):
    moments = RunningMoments().update(data)
    assert np.allclose(moments.mean, data.mean(axis=1), atol=1e-6)
    assert np.allclose(moments.variance, data.var(axis=1), atol=1e-4, rtol=1e-4)


# --------------------------------------------------------------------------- #
# Utilities / viz
# --------------------------------------------------------------------------- #
@SETTINGS
@given(total=st.integers(0, 500), chunk=st.integers(1, 100))
def test_chunk_indices_partition(total, chunk):
    chunks = chunk_indices(total, chunk)
    covered = []
    for lo, hi in chunks:
        assert 0 <= lo < hi <= total
        covered.extend(range(lo, hi))
    assert covered == list(range(total))


@SETTINGS
@given(values=npst.arrays(dtype=np.float64, shape=st.integers(1, 100),
                          elements=st.floats(-1e6, 1e6, allow_nan=False)))
def test_turbo_rgb_always_valid(values):
    rgb = turbo_rgb(values)
    assert rgb.shape == (values.size, 3)
    assert np.all(rgb >= 0.0) and np.all(rgb <= 1.0)


@SETTINGS
@given(value=st.floats(-1e3, 1e3, allow_nan=False), limit=st.floats(0.1, 100))
def test_diverging_turbo_hex_format(value, limit):
    cmap = DivergingTurbo(limit=limit)
    colour = cmap.hex(value)
    assert len(colour) == 7 and colour.startswith("#")
    assert cmap.glyph(value) in {".", "-", "=", "+", "#"}


@SETTINGS
@given(
    n_rows=st.integers(1, 2),
    racks=st.integers(1, 3),
    cabinets=st.integers(1, 3),
    slots=st.integers(1, 4),
    nodes=st.integers(1, 4),
)
def test_layout_roundtrip_from_machine_spec(n_rows, racks, cabinets, slots, nodes):
    machine = MachineDescription(
        name="prop",
        n_rows=n_rows,
        racks_per_row=racks,
        cabinets_per_rack=cabinets,
        slots_per_cabinet=slots,
        blades_per_slot=1,
        nodes_per_blade=nodes,
    )
    layout = RackLayout.from_machine(machine)
    assert layout.n_nodes == machine.n_nodes
    # Every node has a unique centre.
    centres = {tuple(np.round(g.center, 6)) for g in layout.geometries}
    assert len(centres) == machine.n_nodes

"""Unit tests for the batch multiresolution DMD (repro.core.mrdmd)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mrdmd import MrDMDConfig, compute_mrdmd, decompose_window
from repro.core.tree import MrDMDTree

from helpers import make_multiscale_signal


class TestConfig:
    def test_defaults_match_paper_settings(self):
        config = MrDMDConfig()
        assert config.max_cycles == 2
        assert config.nyquist_factor == 4
        assert config.split == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_levels": 0},
            {"max_cycles": 0},
            {"nyquist_factor": 0},
            {"min_window": 2},
            {"split": 1},
            {"amplitude_method": "bogus"},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MrDMDConfig(**kwargs)

    def test_snapshots_required(self):
        config = MrDMDConfig(max_cycles=2, nyquist_factor=4)
        assert config.snapshots_required == 16

    def test_stride_scales_with_window(self):
        config = MrDMDConfig()
        assert config.stride_for(10) == 1           # below the requirement
        assert config.stride_for(16) == 1
        assert config.stride_for(160) == 10
        assert config.stride_for(1600) == 100

    def test_rho_is_cycles_over_window_seconds(self):
        config = MrDMDConfig(max_cycles=2)
        assert config.rho_for(1000, 0.5) == pytest.approx(2 / 500.0)
        assert config.rho_for(0, 0.5) == 0.0


class TestDecomposeWindow:
    def test_node_records_window_metadata(self):
        data, dt = make_multiscale_signal(n_sensors=8, n_timesteps=256)
        config = MrDMDConfig(max_levels=3)
        node, recon = decompose_window(
            data, dt, config, level=2, bin_index=1, start=128
        )
        assert node.level == 2
        assert node.bin_index == 1
        assert node.start == 128
        assert node.n_snapshots == 256
        assert node.step == config.stride_for(256)
        assert recon.shape == data.shape

    def test_slow_modes_respect_rho(self):
        data, dt = make_multiscale_signal(n_sensors=8, n_timesteps=512)
        config = MrDMDConfig(max_levels=3)
        node, _ = decompose_window(data, dt, config, level=1, bin_index=0, start=0)
        assert np.all(node.frequencies <= node.rho + 1e-12)


class TestComputeMrDMD:
    def test_tree_structure_binary_splits(self, multiscale_signal):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=3))
        assert isinstance(tree, MrDMDTree)
        assert tree.n_levels == 3
        assert len(tree.nodes_at_level(1)) == 1
        assert len(tree.nodes_at_level(2)) == 2
        assert len(tree.nodes_at_level(3)) == 4

    def test_windows_tile_the_timeline(self, multiscale_signal):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=4))
        for level in tree.levels():
            nodes = tree.nodes_at_level(level)
            starts = [n.start for n in nodes]
            ends = [n.end for n in nodes]
            assert starts[0] == 0
            assert ends[-1] == data.shape[1]
            for prev_end, next_start in zip(ends[:-1], starts[1:]):
                assert prev_end == next_start

    def test_reconstruction_tracks_data(self, multiscale_signal):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=4))
        recon = tree.reconstruct(data.shape[1])
        rel = np.linalg.norm(data - recon) / np.linalg.norm(data)
        assert rel < 0.1

    def test_reconstruction_is_smoother_than_data(self, multiscale_signal):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=4))
        recon = tree.reconstruct(data.shape[1])
        hf_data = np.linalg.norm(np.diff(data, axis=1))
        hf_recon = np.linalg.norm(np.diff(recon, axis=1))
        assert hf_recon < hf_data

    def test_level1_captures_slow_frequency(self, multiscale_signal):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=4))
        level1 = tree.nodes_at_level(1)[0]
        # The 0.05 Hz component oscillates ~2.5 times over the 51.2 s window,
        # so level 1 captures only the DC / drift component below rho.
        assert np.all(level1.frequencies <= level1.rho + 1e-12)

    def test_more_levels_capture_more_modes(self, multiscale_signal):
        data, dt = multiscale_signal
        shallow = compute_mrdmd(data, dt, MrDMDConfig(max_levels=2))
        deep = compute_mrdmd(data, dt, MrDMDConfig(max_levels=5))
        assert deep.total_modes >= shallow.total_modes

    def test_more_levels_improve_reconstruction(self, multiscale_signal):
        data, dt = multiscale_signal
        shallow = compute_mrdmd(data, dt, MrDMDConfig(max_levels=2))
        deep = compute_mrdmd(data, dt, MrDMDConfig(max_levels=5))
        err_shallow = np.linalg.norm(data - shallow.reconstruct(data.shape[1]))
        err_deep = np.linalg.norm(data - deep.reconstruct(data.shape[1]))
        assert err_deep <= err_shallow * 1.05

    def test_keyword_overrides(self, multiscale_signal):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, max_levels=2)
        assert tree.n_levels == 2

    def test_config_and_overrides_mutually_exclusive(self, multiscale_signal):
        data, dt = multiscale_signal
        with pytest.raises(TypeError):
            compute_mrdmd(data, dt, MrDMDConfig(), max_levels=3)

    def test_short_timeline_gives_empty_or_single_node_tree(self):
        data = np.random.default_rng(0).standard_normal((4, 6))
        tree = compute_mrdmd(data, 1.0, MrDMDConfig(max_levels=3, min_window=8))
        assert len(tree) == 0

    def test_min_window_limits_depth(self):
        data, dt = make_multiscale_signal(n_sensors=6, n_timesteps=64)
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=6, min_window=16))
        # 64 -> 32 -> 16 -> (8 < min_window): at most 3 levels
        assert tree.n_levels <= 3

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            compute_mrdmd(np.ones(10), 1.0)
        with pytest.raises(ValueError):
            compute_mrdmd(np.ones((2, 100)), 0.0)

    def test_split_into_three(self, multiscale_signal):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=2, split=3))
        assert len(tree.nodes_at_level(2)) == 3

    def test_node_step_and_dt_consistency(self, multiscale_signal):
        data, dt = multiscale_signal
        tree = compute_mrdmd(data, dt, MrDMDConfig(max_levels=3))
        for node in tree:
            assert node.dt == pytest.approx(dt)
            assert node.local_dt == pytest.approx(dt * node.step)
            assert node.step >= 1

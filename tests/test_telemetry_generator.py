"""Unit tests for telemetry dynamics, generation, anomalies, and streaming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry import (
    ChunkedSource,
    CoolingDegradation,
    HotNodes,
    SensorFault,
    StalledNodes,
    StreamingReplay,
    TelemetryGenerator,
    theta_machine,
)
from repro.telemetry.dynamics import (
    ar1_noise,
    cooling_loop,
    diurnal_cycle,
    synthetic_utilization,
    thermal_response,
)
from repro.telemetry.sensors import xc40_sensor_suite


class TestDynamics:
    def test_diurnal_cycle_period(self):
        times = np.array([0.0, 21_600.0, 43_200.0, 86_400.0])
        cycle = diurnal_cycle(times)
        assert cycle[0] == pytest.approx(0.0, abs=1e-12)
        assert cycle[1] == pytest.approx(1.0, abs=1e-12)
        assert cycle[3] == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            diurnal_cycle(times, period=0.0)

    def test_cooling_loop_shape_and_phase_lag(self):
        times = np.arange(100) * 15.0
        loops = cooling_loop(times, 4, rng=np.random.default_rng(0))
        assert loops.shape == (4, 100)
        # Different racks must not be identical (phase lag).
        assert not np.allclose(loops[0], loops[1])
        with pytest.raises(ValueError):
            cooling_loop(times, 0)

    def test_synthetic_utilization_bounds_and_target(self):
        rng = np.random.default_rng(1)
        util = synthetic_utilization(50, 400, rng=rng, target_utilization=0.5)
        assert util.shape == (50, 400)
        assert util.min() >= 0.0 and util.max() <= 1.0
        assert (util > 0).mean() >= 0.4
        with pytest.raises(ValueError):
            synthetic_utilization(0, 10, rng=rng)

    def test_thermal_response_lags_and_bounds(self):
        util = np.zeros((1, 100))
        util[0, 10:] = 1.0
        response = thermal_response(util, dt=15.0, time_constant=60.0)
        assert response[0, 9] == 0.0
        assert 0.0 < response[0, 12] < 1.0
        assert response[0, -1] > 0.9
        with pytest.raises(ValueError):
            thermal_response(util, dt=0.0)

    def test_ar1_noise_statistics(self):
        noise = ar1_noise((4, 5000), rng=np.random.default_rng(2), correlation=0.7, std=2.0)
        assert noise.shape == (4, 5000)
        assert noise.std() == pytest.approx(2.0, rel=0.15)
        # Lag-1 autocorrelation should be near the configured value.
        series = noise[0]
        ac = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert ac == pytest.approx(0.7, abs=0.1)
        with pytest.raises(ValueError):
            ar1_noise((2, 10), rng=np.random.default_rng(0), correlation=1.0)


@pytest.fixture(scope="module")
def tiny_machine():
    return theta_machine(racks_per_row=1, n_rows=1, node_limit=24)


class TestGenerator:
    def test_shapes_and_metadata(self, tiny_machine):
        generator = TelemetryGenerator(tiny_machine, seed=0)
        stream = generator.generate(100, sensors=["cpu_temp", "node_power"])
        assert stream.values.shape == (48, 100)
        assert stream.n_nodes == 24
        assert set(np.unique(stream.sensor_names)) == {"cpu_temp", "node_power"}
        assert stream.dt == tiny_machine.dt_seconds
        assert stream.times.shape == (100,)

    def test_determinism(self, tiny_machine):
        a = TelemetryGenerator(tiny_machine, seed=5).generate(50, sensors=["cpu_temp"])
        b = TelemetryGenerator(tiny_machine, seed=5).generate(50, sensors=["cpu_temp"])
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self, tiny_machine):
        a = TelemetryGenerator(tiny_machine, seed=1).generate(50, sensors=["cpu_temp"])
        b = TelemetryGenerator(tiny_machine, seed=2).generate(50, sensors=["cpu_temp"])
        assert not np.array_equal(a.values, b.values)

    def test_temperatures_physically_plausible(self, tiny_machine):
        stream = TelemetryGenerator(tiny_machine, seed=0).generate(200, sensors=["cpu_temp"])
        assert stream.values.min() > 0.0
        assert stream.values.max() < 120.0

    def test_unknown_sensor_rejected(self, tiny_machine):
        with pytest.raises(KeyError):
            TelemetryGenerator(tiny_machine).generate(10, sensors=["nonexistent"])

    def test_node_selection(self, tiny_machine):
        stream = TelemetryGenerator(tiny_machine, seed=0).generate(
            30, sensors=["cpu_temp"], nodes=[2, 5, 7]
        )
        assert stream.values.shape == (3, 30)
        assert set(stream.node_indices.tolist()) == {2, 5, 7}
        with pytest.raises(ValueError):
            TelemetryGenerator(tiny_machine).generate(10, nodes=[999])

    def test_external_utilization(self, tiny_machine):
        util = np.zeros((24, 60))
        util[:, 30:] = 1.0
        stream = TelemetryGenerator(tiny_machine, seed=0, noise_scale=0.0).generate(
            60, sensors=["cpu_temp"], utilization=util
        )
        # Temperatures rise after the load step.
        assert stream.values[:, 55:].mean() > stream.values[:, :25].mean()
        with pytest.raises(ValueError):
            TelemetryGenerator(tiny_machine).generate(60, utilization=np.zeros((3, 3)))

    def test_channel_and_window_and_node_average(self, tiny_machine):
        stream = TelemetryGenerator(tiny_machine, seed=0).generate(
            40, sensors=["cpu_temp", "node_power"]
        )
        cpu = stream.channel("cpu_temp")
        assert cpu.values.shape == (24, 40)
        with pytest.raises(KeyError):
            stream.channel("nope")
        window = stream.window(10, 30)
        assert window.values.shape == (48, 20)
        assert window.start_step == 10
        with pytest.raises(ValueError):
            stream.window(30, 10)
        averaged = stream.node_average()
        assert averaged.shape == (24, 40)
        selected = stream.select_nodes([0, 1])
        assert selected.n_nodes == 2
        with pytest.raises(ValueError):
            stream.select_nodes([999])

    def test_generate_matrix_tiles_rows(self, tiny_machine):
        generator = TelemetryGenerator(tiny_machine, seed=0)
        matrix = generator.generate_matrix(60, 50)
        assert matrix.shape == (60, 50)
        assert np.all(np.isfinite(matrix))
        with pytest.raises(ValueError):
            generator.generate_matrix(0, 50)

    def test_constructor_validation(self, tiny_machine):
        with pytest.raises(ValueError):
            TelemetryGenerator(tiny_machine, cooling_period=0.0)
        with pytest.raises(ValueError):
            TelemetryGenerator(tiny_machine, noise_scale=-1.0)
        with pytest.raises(ValueError):
            TelemetryGenerator(tiny_machine).generate(0)


class TestAnomalies:
    def test_hot_nodes_raise_temperature(self, tiny_machine):
        generator = TelemetryGenerator(tiny_machine, seed=0, utilization_target=0.0)
        clean = generator.generate(200, sensors=["cpu_temp"])
        hot = TelemetryGenerator(tiny_machine, seed=0, utilization_target=0.0).generate(
            200, sensors=["cpu_temp"],
            anomalies=[HotNodes(node_indices=(3,), start=50, delta=10.0)],
        )
        delta = hot.values[3, 150:].mean() - clean.values[3, 150:].mean()
        assert delta > 7.0
        untouched = np.abs(hot.values[10] - clean.values[10]).max()
        assert untouched < 1e-9

    def test_stalled_nodes_lower_temperature_and_power(self, tiny_machine):
        anomaly = StalledNodes(node_indices=(2,), start=20, drop=8.0)
        generator = TelemetryGenerator(tiny_machine, seed=1, utilization_target=0.0)
        clean = generator.generate(150, sensors=["cpu_temp", "node_power"])
        stalled = TelemetryGenerator(tiny_machine, seed=1, utilization_target=0.0).generate(
            150, sensors=["cpu_temp", "node_power"], anomalies=[anomaly]
        )
        assert stalled.values[2, 100:].mean() < clean.values[2, 100:].mean()

    def test_sensor_fault_injects_spikes(self, tiny_machine):
        fault = SensorFault(node_indices=(1,), sensor_name="cpu_temp",
                            spike_probability=0.5, spike_std=30.0)
        generator = TelemetryGenerator(tiny_machine, seed=2, noise_scale=0.0,
                                       utilization_target=0.0)
        clean = generator.generate(100, sensors=["cpu_temp"])
        faulty = TelemetryGenerator(tiny_machine, seed=2, noise_scale=0.0,
                                    utilization_target=0.0).generate(
            100, sensors=["cpu_temp"], anomalies=[fault]
        )
        assert np.abs(faulty.values[1] - clean.values[1]).max() > 10.0

    def test_cooling_degradation_creates_drift(self, tiny_machine):
        anomaly = CoolingDegradation(node_indices=tuple(range(5)), rate_per_hour=10.0,
                                     dt_seconds=tiny_machine.dt_seconds)
        generator = TelemetryGenerator(tiny_machine, seed=3, utilization_target=0.0,
                                       noise_scale=0.0)
        stream = generator.generate(480, sensors=["cpu_temp"], anomalies=[anomaly])
        drift = stream.values[0, -10:].mean() - stream.values[0, :10].mean()
        assert drift > 5.0

    def test_anomaly_window_clipping(self):
        anomaly = HotNodes(node_indices=(0,), start=50, stop=200)
        assert anomaly.active_slice(100) == slice(50, 100)
        assert anomaly.active_slice(40) == slice(40, 40)


class TestStreaming:
    def test_replay_initial_and_chunks(self, tiny_machine):
        stream = TelemetryGenerator(tiny_machine, seed=0).generate(100, sensors=["cpu_temp"])
        replay = StreamingReplay(stream, initial_size=40, chunk_size=25)
        assert replay.initial().shape == (24, 40)
        chunks = list(replay.chunks())
        assert [c.shape[1] for c in chunks] == [25, 25, 10]
        assert replay.n_chunks == 3

    def test_replay_validation(self, tiny_machine):
        stream = TelemetryGenerator(tiny_machine, seed=0).generate(50, sensors=["cpu_temp"])
        with pytest.raises(ValueError):
            StreamingReplay(stream, initial_size=0, chunk_size=10)
        with pytest.raises(ValueError):
            StreamingReplay(stream, initial_size=100, chunk_size=10)

    def test_chunked_source_advances_position(self, tiny_machine):
        source = ChunkedSource(TelemetryGenerator(tiny_machine, seed=0), sensors=["cpu_temp"])
        first = source.next_chunk(30)
        second = source.next_chunk(20)
        assert first.start_step == 0 and second.start_step == 30
        assert source.position == 50
        with pytest.raises(ValueError):
            source.next_chunk(0)

    def test_chunked_source_take(self, tiny_machine):
        source = ChunkedSource(TelemetryGenerator(tiny_machine, seed=0), sensors=["cpu_temp"])
        chunks = source.take([10, 10, 5])
        assert [c.n_timesteps for c in chunks] == [10, 10, 5]

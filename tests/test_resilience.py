"""Fault-tolerant fleet: supervision, retry/quarantine, crash recovery.

The contract under test: a supervised :class:`FleetMonitor` driven through
a deterministic :class:`FaultPlan` must (a) converge **bit-for-bit** with a
fault-free run for every recovered shard, on every backend — a worker
crash, a hang past the deadline or a transient exception costs retries and
rehydration but never changes the analysis — and (b) degrade *visibly* for
shards whose failures persist: the poisoned shard lands in quarantine, the
snapshot reports it, the quarantine alert fires, and the rest of the fleet
keeps answering.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.pipeline import PipelineConfig
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    PoisonChunkError,
    ResiliencePolicy,
    ShardRecoveryStore,
)
from repro.service import FleetMonitor, RackSharding, load_checkpoint, save_checkpoint
from repro.service.alerts import AlertEngine, default_rules
from repro.service.scenarios import ScenarioRunner, chaos_fleet, get_scenario, quiet_fleet
from repro.telemetry import TelemetryGenerator
from repro.util.parallel import (
    ProcessShardExecutor,
    ShardTaskError,
    ShardTimeoutError,
)

CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=4),
    baseline_range=(40.0, 75.0),
)

INITIAL = 200
CHUNKS = (slice(200, 280), slice(280, 360))  # ingest rounds 2 and 3


@pytest.fixture(scope="module")
def fleet_stream():
    scenario = quiet_fleet()
    generator = TelemetryGenerator(scenario.machine, seed=23, utilization_target=0.3)
    return generator.generate(360, sensors=["cpu_temp"])


def _drive(stream, backend, *, resilience=None, fault_plan=None, max_workers=2):
    """Initial fit + two alert-evaluated chunks; returns closed monitor + trail."""
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        alert_engine=AlertEngine(rules=default_rules(), cooldown=60),
        executor=backend,
        max_workers=max_workers,
        resilience=resilience,
        fault_plan=fault_plan,
    )
    alerts = []
    with monitor:
        monitor.ingest(stream.values[:, :INITIAL])
        snapshots = []
        for window in CHUNKS:
            snapshot, fired = monitor.ingest_and_alert(stream.values[:, window])
            snapshots.append(snapshot)
            alerts.extend(fired)
        states = monitor.shard_state_dicts()
    return monitor, snapshots, alerts, states


def _assert_state_equal(a, b, path=""):
    if isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys(), path
        for key in a:
            _assert_state_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_state_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray) and a.shape == b.shape, path
        assert np.array_equal(a, b, equal_nan=True), path
    else:
        assert a == b, path


# --------------------------------------------------------------------------- #
# Fault plan and policy units
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_spec_matches_exact_coordinates(self):
        spec = FaultSpec(FaultKind.EXCEPTION, "rack-1", 2)
        assert spec.matches("rack-1", 2, 1)
        assert not spec.matches("rack-1", 2, 2)  # attempt defaults to 1
        assert not spec.matches("rack-1", 3, 1)
        assert not spec.matches("rack-0", 2, 1)

    def test_attempt_none_fires_every_attempt(self):
        spec = FaultSpec(FaultKind.EXCEPTION, "rack-1", 2, attempt=None)
        assert all(spec.matches("rack-1", 2, a) for a in (1, 2, 3, 7))

    def test_task_fault_skips_data_borne_poison(self):
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.NAN_CHUNK, "rack-1", 2),
                FaultSpec(FaultKind.EXCEPTION, "rack-1", 2),
            ]
        )
        fault = plan.task_fault("rack-1", 2, 1)
        assert fault is not None and fault.kind is FaultKind.EXCEPTION
        assert plan.poisons("rack-1", 2)
        assert not plan.poisons("rack-1", 3)

    def test_poison_is_a_nan_copy(self):
        chunk = np.arange(12.0).reshape(3, 4)
        poisoned = FaultPlan.poison(chunk)
        assert poisoned.shape == chunk.shape
        assert np.all(np.isnan(poisoned))
        assert np.array_equal(chunk, np.arange(12.0).reshape(3, 4))  # untouched

    def test_persistent_faults_name_the_doomed_shards(self):
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.NAN_CHUNK, "rack-3", 5),
                FaultSpec(FaultKind.EXCEPTION, "rack-2", 2, attempt=None),
                FaultSpec(FaultKind.CRASH, "rack-0", 2),  # transient
            ]
        )
        assert plan.shards_with_persistent_faults() == ("rack-2", "rack-3")

    def test_rejects_non_spec_entries(self):
        with pytest.raises(TypeError):
            FaultPlan(["rack-1"])

    def test_executed_exception_is_typed(self):
        with pytest.raises(InjectedFaultError):
            FaultSpec(FaultKind.EXCEPTION, "rack-1", 2).execute()


class TestResiliencePolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = ResiliencePolicy(backoff_base=0.02, backoff_cap=0.05, seed=8)
        first = [policy.backoff_delay("rack-1", a) for a in (1, 2, 3, 4)]
        again = [policy.backoff_delay("rack-1", a) for a in (1, 2, 3, 4)]
        assert first == again
        # jittered by at most +jitter, never below the exponential base
        assert 0.02 <= first[0] <= 0.02 * 1.5
        assert all(delay <= 0.05 * 1.5 for delay in first)

    def test_jitter_decorrelates_shards(self):
        policy = ResiliencePolicy(seed=8)
        assert policy.backoff_delay("rack-0", 1) != policy.backoff_delay("rack-1", 1)

    def test_zero_jitter_is_pure_exponential(self):
        policy = ResiliencePolicy(backoff_base=0.01, backoff_cap=1.0, jitter=0.0)
        assert policy.backoff_delay("s", 1) == 0.01
        assert policy.backoff_delay("s", 3) == 0.04

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"task_deadline": 0.0},
            {"backoff_base": -1.0},
            {"jitter": 2.0},
            {"snapshot_every": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)


class TestShardTaskError:
    def test_carries_typed_context(self):
        cause = ValueError("boom")
        err = ShardTaskError("ingest failed", shard_id="rack-1", attempts=3, cause=cause)
        assert err.shard_id == "rack-1"
        assert err.attempts == 3
        assert err.cause is cause

    def test_survives_pickling(self):
        err = ShardTaskError("gone", shard_id="rack-2", attempts=2, kind="crash")
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, ShardTaskError)
        assert (back.shard_id, back.attempts, back.kind) == ("rack-2", 2, "crash")

    def test_timeout_is_a_task_error(self):
        assert issubclass(ShardTimeoutError, ShardTaskError)


class TestRecoveryStore:
    def test_rebuild_replays_the_tail(self, fleet_stream):
        from repro.pipeline.online import OnlineAnalysisPipeline

        rows = fleet_stream.values[:16]
        pipeline = OnlineAnalysisPipeline(dt=fleet_stream.dt, config=CONFIG)
        pipeline.ingest(rows[:, :INITIAL])
        store = ShardRecoveryStore(snapshot_every=8)
        store.record_snapshot("s", pipeline.state_dict())
        for window in CHUNKS:
            pipeline.ingest(rows[:, window])
            store.record_chunk("s", rows[:, window])
        rebuilt, n_replayed = store.rebuild("s")
        assert n_replayed == len(CHUNKS)
        _assert_state_equal(rebuilt.state_dict(), pipeline.state_dict())


# --------------------------------------------------------------------------- #
# Supervised monitor: parity, retry, quarantine
# --------------------------------------------------------------------------- #
class TestSupervisedMonitor:
    def test_fault_free_supervision_is_invisible(self, fleet_stream):
        _, _, _, plain = _drive(fleet_stream, "serial")
        _, _, _, supervised = _drive(
            fleet_stream, "serial", resilience=ResiliencePolicy()
        )
        _assert_state_equal(supervised, plain)

    def test_fault_plan_requires_resilience(self, fleet_stream):
        with pytest.raises(ValueError, match="resilience"):
            FleetMonitor.from_stream(
                fleet_stream,
                policy=RackSharding(),
                config=CONFIG,
                fault_plan=FaultPlan([FaultSpec(FaultKind.EXCEPTION, "rack-0", 2)]),
            )

    @pytest.mark.parametrize(
        "kind", [FaultKind.CRASH, FaultKind.EXCEPTION, FaultKind.SLOW]
    )
    def test_transient_faults_converge_bit_for_bit(self, fleet_stream, kind):
        _, _, _, reference = _drive(fleet_stream, "serial")
        duration = 0.02 if kind is FaultKind.SLOW else 30.0
        _, snapshots, _, recovered = _drive(
            fleet_stream,
            "serial",
            resilience=ResiliencePolicy(backoff_base=0.001, backoff_cap=0.002, seed=8),
            fault_plan=FaultPlan(
                [FaultSpec(kind, "rack-1", 2, duration=duration)], seed=8
            ),
        )
        _assert_state_equal(recovered, reference)
        assert all(not snap.degraded_shards for snap in snapshots)

    def test_poison_quarantines_and_fleet_keeps_answering(self, fleet_stream):
        _, _, _, reference = _drive(fleet_stream, "serial")
        monitor, snapshots, alerts, states = _drive(
            fleet_stream,
            "serial",
            resilience=ResiliencePolicy(
                max_attempts=2, backoff_base=0.001, backoff_cap=0.002, seed=8
            ),
            fault_plan=FaultPlan([FaultSpec(FaultKind.NAN_CHUNK, "rack-2", 2)], seed=8),
        )
        assert monitor.quarantined_shards == ("rack-2",)
        info = monitor.quarantine_info["rack-2"]
        assert info["attempts"] == 2
        assert "PoisonChunkError" in info["reason"]
        # the round the poison landed (and every one after) reports it
        assert snapshots[0].degraded_shards == ("rack-2",)
        assert snapshots[1].degraded_shards == ("rack-2",)
        quarantine_alerts = [a for a in alerts if a.rule == "shard_quarantined"]
        assert quarantine_alerts and quarantine_alerts[0].shard_id == "rack-2"
        # healthy shards never saw the fault
        for sid in ("rack-0", "rack-1", "rack-3"):
            _assert_state_equal(states[sid], reference[sid], sid)
        # merged products exclude the quarantined shard's nodes but answer
        quarantined_nodes = {
            node for node in monitor.rack_values()
        }
        assert quarantined_nodes  # non-empty: the fleet still answers
        assert not any(32 <= node < 48 for node in quarantined_nodes)

    def test_reinstate_rejoins_from_last_recovered_state(self, fleet_stream):
        monitor, _, _, _ = _drive(
            fleet_stream,
            "serial",
            resilience=ResiliencePolicy(
                max_attempts=2, backoff_base=0.001, backoff_cap=0.002, seed=8
            ),
            fault_plan=FaultPlan([FaultSpec(FaultKind.NAN_CHUNK, "rack-2", 3)], seed=8),
        )
        assert monitor.quarantined_shards == ("rack-2",)
        monitor.reinstate_shard("rack-2")
        assert monitor.quarantined_shards == ()
        # the rejoined shard answers queries again (from pre-poison state)
        assert set(monitor.rack_values()) == set(range(64))

    def test_poisoned_chunk_is_rejected_before_mutation(self, fleet_stream):
        from repro.pipeline.online import OnlineAnalysisPipeline

        pipeline = OnlineAnalysisPipeline(dt=fleet_stream.dt, config=CONFIG)
        pipeline.validate_chunks = True
        pipeline.ingest(fleet_stream.values[:16, :INITIAL])
        before = pipeline.state_dict()
        with pytest.raises(PoisonChunkError):
            pipeline.ingest(FaultPlan.poison(fleet_stream.values[:16, 200:280]))
        _assert_state_equal(pipeline.state_dict(), before)


class TestProcessRecovery:
    """Real crashes and real hangs: spawned workers die, state survives."""

    def test_worker_crash_recovers_bit_for_bit(self, fleet_stream):
        _, _, _, reference = _drive(fleet_stream, "serial")
        monitor, _, _, recovered = _drive(
            fleet_stream,
            "process",
            resilience=ResiliencePolicy(
                task_deadline=30.0, backoff_base=0.001, backoff_cap=0.002, seed=8
            ),
            fault_plan=FaultPlan([FaultSpec(FaultKind.CRASH, "rack-1", 2)], seed=8),
        )
        assert monitor.quarantined_shards == ()
        _assert_state_equal(recovered, reference)

    def test_hung_worker_is_reaped_and_recovers(self, fleet_stream):
        _, _, _, reference = _drive(fleet_stream, "serial")
        monitor, _, _, recovered = _drive(
            fleet_stream,
            "process",
            resilience=ResiliencePolicy(
                task_deadline=2.0, backoff_base=0.001, backoff_cap=0.002, seed=8
            ),
            fault_plan=FaultPlan(
                [FaultSpec(FaultKind.HANG, "rack-2", 2, duration=30.0)], seed=8
            ),
        )
        assert monitor.quarantined_shards == ()
        _assert_state_equal(recovered, reference)


# --------------------------------------------------------------------------- #
# Checkpoints carry quarantine state
# --------------------------------------------------------------------------- #
class TestQuarantineCheckpoint:
    def test_round_trips_through_save_load(self, fleet_stream, tmp_path):
        monitor, _, _, _ = _drive(
            fleet_stream,
            "serial",
            resilience=ResiliencePolicy(
                max_attempts=2, backoff_base=0.001, backoff_cap=0.002, seed=8
            ),
            fault_plan=FaultPlan([FaultSpec(FaultKind.NAN_CHUNK, "rack-2", 2)], seed=8),
        )
        assert monitor.quarantined_shards == ("rack-2",)
        save_checkpoint(str(tmp_path / "ckpt"), monitor)
        restored = load_checkpoint(
            str(tmp_path / "ckpt"),
            rules=default_rules(),
            resilience=ResiliencePolicy(),
        )
        assert restored.quarantined_shards == ("rack-2",)
        assert restored.quarantine_info["rack-2"]["attempts"] == 2
        # the restored monitor keeps excluding the shard from merges
        assert not any(32 <= node < 48 for node in restored.rack_values())


# --------------------------------------------------------------------------- #
# Executor shutdown with lost workers (satellite: close() force-terminate)
# --------------------------------------------------------------------------- #
def _sleep_forever(obj):
    time.sleep(60.0)
    return obj


def _identity(obj):
    return obj


class TestCloseWithHungWorker:
    def test_close_names_the_lost_shards(self):
        executor = ProcessShardExecutor(max_workers=2, close_timeout=0.5)
        executor.start({"a": 1, "b": 2})
        assert executor.call("a", _identity) == 1
        executor.submit("b", _sleep_forever)
        with pytest.raises(ShardTaskError, match="'b'") as excinfo:
            executor.close()
        assert excinfo.value.kind == "crash"
        assert executor.closed  # force-terminated, not leaked

    def test_clean_close_is_unaffected(self):
        executor = ProcessShardExecutor(max_workers=2, close_timeout=30.0)
        executor.start({"a": 1})
        assert executor.call("a", _identity) == 1
        executor.close()
        assert executor.closed


# --------------------------------------------------------------------------- #
# The chaos-fleet scenario end to end
# --------------------------------------------------------------------------- #
class TestChaosFleetScenario:
    def test_catalog_entry(self):
        scenario = get_scenario("chaos-fleet")
        assert scenario.resilience is not None
        assert scenario.fault_plan.shards_with_persistent_faults() == ("rack-3",)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_recovers_bit_for_bit_and_quarantines_the_poisoned_shard(
        self, backend
    ):
        from dataclasses import replace

        scenario = chaos_fleet()
        result = ScenarioRunner(
            scenario, executor=backend, max_workers=2
        ).run()
        reference = ScenarioRunner(
            replace(scenario, fault_plan=None, resilience=None)
        ).run()
        assert result.monitor.quarantined_shards == ("rack-3",)
        assert [a.rule for a in result.alerts if a.rule == "shard_quarantined"]
        for sid in ("rack-0", "rack-1", "rack-2"):
            _assert_state_equal(
                result.monitor.shard_state_dict(sid),
                reference.monitor.shard_state_dict(sid),
                sid,
            )
        # rack 3's nodes (48..63) are excluded; the rest match the clean run
        assert set(result.rack_values) == set(range(48))
        for node, value in result.rack_values.items():
            assert value == reference.rack_values[node]

"""Plain-function helpers shared by test modules.

Lives outside ``conftest.py`` so tests can import it by a unique module
name: ``from conftest import ...`` breaks whenever another rootdir
directory (``benchmarks/``) also exposes a top-level ``conftest`` module.
"""

from __future__ import annotations

import numpy as np


def make_multiscale_signal(
    n_sensors: int = 16,
    n_timesteps: int = 1024,
    dt: float = 0.05,
    *,
    slow_hz: float = 0.05,
    fast_hz: float = 0.5,
    noise: float = 0.2,
    offset: float = 50.0,
    seed: int = 7,
) -> tuple[np.ndarray, float]:
    """Matrix with two known oscillation frequencies plus noise.

    Every sensor sees both oscillations with its own phase, so the data has
    spatial rank ~5 and both frequencies are recoverable by DMD.
    """
    gen = np.random.default_rng(seed)
    t = np.arange(n_timesteps) * dt
    phases = gen.uniform(0, 2 * np.pi, n_sensors)
    data = (
        offset
        + 5.0 * np.sin(2 * np.pi * slow_hz * t[None, :] + phases[:, None])
        + 2.0 * np.sin(2 * np.pi * fast_hz * t[None, :] + 2 * phases[:, None])
        + noise * gen.standard_normal((n_sensors, n_timesteps))
    )
    return data, dt

"""Unit tests for the optimal singular value hard threshold (repro.core.svht)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.svht import (
    SVHTResult,
    lambda_star,
    median_marchenko_pastur,
    omega_approx,
    svht_rank,
    svht_threshold,
    truncate_singular_triplets,
)


class TestLambdaStar:
    def test_square_matrix_value_is_4_over_sqrt3(self):
        assert lambda_star(1.0) == pytest.approx(4.0 / math.sqrt(3.0), rel=1e-12)

    def test_monotone_in_beta(self):
        betas = np.linspace(0.05, 1.0, 20)
        values = [lambda_star(float(b)) for b in betas]
        assert all(b <= a for a, b in zip(values[1:], values[:-1])) or all(
            a <= b for a, b in zip(values[:-1], values[1:])
        )

    @pytest.mark.parametrize("beta", [0.0, -0.1, 1.5])
    def test_invalid_beta_rejected(self, beta):
        with pytest.raises(ValueError):
            lambda_star(beta)


class TestOmega:
    def test_approx_close_to_exact_formula(self):
        # omega(beta) = lambda*(beta) / sqrt(median MP); the rational
        # approximation should be within a few percent.
        for beta in (0.1, 0.25, 0.5, 0.75, 1.0):
            exact = lambda_star(beta) / math.sqrt(median_marchenko_pastur(beta))
            assert omega_approx(beta) == pytest.approx(exact, rel=0.05)

    def test_square_matrix_omega_near_2_858(self):
        # Known reference value from Gavish & Donoho: omega(1) ~= 2.858
        exact = lambda_star(1.0) / math.sqrt(median_marchenko_pastur(1.0))
        assert exact == pytest.approx(2.858, abs=0.01)

    @pytest.mark.parametrize("beta", [0.0, 2.0])
    def test_invalid_beta_rejected(self, beta):
        with pytest.raises(ValueError):
            omega_approx(beta)


class TestMedianMP:
    def test_median_between_support_edges(self):
        for beta in (0.2, 0.6, 1.0):
            med = median_marchenko_pastur(beta)
            lower = (1 - math.sqrt(beta)) ** 2
            upper = (1 + math.sqrt(beta)) ** 2
            assert lower < med < upper

    def test_median_of_square_case(self):
        # For beta=1 the MP distribution has median ~ 1.0 - ish but below the
        # mean (which is 1); accept the known numeric value ~0.85-1.0.
        med = median_marchenko_pastur(1.0)
        assert 0.5 < med < 1.5


class TestThresholdAndRank:
    def test_known_sigma_threshold(self):
        s = np.array([10.0, 5.0, 1.0])
        tau = svht_threshold(s, (100, 100), sigma=0.1)
        assert tau == pytest.approx(lambda_star(1.0) * 10.0 * 0.1, rel=1e-12)

    def test_unknown_sigma_uses_median(self):
        s = np.array([100.0, 3.0, 2.0, 1.0])
        tau = svht_threshold(s, (4, 1000))
        beta = 4 / 1000
        assert tau == pytest.approx(omega_approx(beta) * 2.5, rel=1e-12)

    def test_rank_detects_low_rank_plus_noise(self):
        gen = np.random.default_rng(0)
        n = 200
        u = gen.standard_normal((n, 3))
        v = gen.standard_normal((3, n))
        x = u @ v * 10 + 0.01 * gen.standard_normal((n, n))
        s = np.linalg.svd(x, compute_uv=False)
        result = svht_rank(s, x.shape)
        assert result.rank == 3

    def test_rank_at_least_min_rank(self):
        s = np.array([1e-8, 1e-9])
        result = svht_rank(s, (10, 10), min_rank=1)
        assert result.rank >= 1

    def test_max_rank_cap_applies(self):
        s = np.linspace(100, 50, 20)
        result = svht_rank(s, (20, 200), max_rank=5)
        assert result.rank <= 5

    def test_result_records_beta(self):
        s = np.array([5.0, 1.0])
        result = svht_rank(s, (10, 40))
        assert isinstance(result, SVHTResult)
        assert result.beta == pytest.approx(0.25)

    def test_empty_singular_values(self):
        result = svht_rank(np.array([]), (5, 5))
        assert result.rank == 0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            svht_threshold(np.array([1.0]), (0, 5))

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            svht_threshold(np.array([1.0]), (5, 5), sigma=-1.0)

    def test_non_1d_singular_values_rejected(self):
        with pytest.raises(ValueError):
            svht_threshold(np.ones((2, 2)), (5, 5))


class TestTruncateTriplets:
    def test_truncation_shapes_consistent(self):
        gen = np.random.default_rng(1)
        x = gen.standard_normal((30, 50))
        u, s, vh = np.linalg.svd(x, full_matrices=False)
        u_r, s_r, vh_r, decision = truncate_singular_triplets(u, s, vh, x.shape)
        r = decision.rank
        assert u_r.shape == (30, r)
        assert s_r.shape == (r,)
        assert vh_r.shape == (r, 50)

    def test_disable_svht_keeps_full_or_capped_rank(self):
        gen = np.random.default_rng(2)
        x = gen.standard_normal((10, 20))
        u, s, vh = np.linalg.svd(x, full_matrices=False)
        u_r, s_r, vh_r, decision = truncate_singular_triplets(
            u, s, vh, x.shape, use_svht=False, max_rank=4
        )
        assert decision.rank == 4
        assert s_r.shape == (4,)

    def test_low_rank_data_reconstructs_after_truncation(self):
        gen = np.random.default_rng(3)
        base = gen.standard_normal((40, 2)) @ gen.standard_normal((2, 60))
        u, s, vh = np.linalg.svd(base, full_matrices=False)
        u_r, s_r, vh_r, decision = truncate_singular_triplets(u, s, vh, base.shape)
        approx = (u_r * s_r) @ vh_r
        assert np.linalg.norm(base - approx) / np.linalg.norm(base) < 1e-8

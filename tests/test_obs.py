"""Unit tests for repro.obs: metrics, tracer, provider lifecycle, report."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    OBS,
    Histogram,
    JsonLinesTraceSink,
    MetricsRegistry,
    RingBufferTraceSink,
    Tracer,
)
from repro.obs.metrics import metric_key


@pytest.fixture(autouse=True)
def pristine_provider():
    """Every test starts and ends with the module provider disabled/empty."""
    OBS.reset()
    yield
    OBS.reset()


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.inc("rows", 5)
    registry.inc("rows", 2.5)
    registry.set_gauge("rank", 3)
    registry.set_gauge("rank", 7)
    for value in (0.001, 0.002, 0.004):
        registry.observe("latency", value)

    assert registry.counter("rows").value == 7.5
    gauge = registry.gauge("rank")
    assert gauge.value == 7 and gauge.n_samples == 2
    hist = registry.histogram("latency")
    assert hist.count == 3
    assert hist.sum == pytest.approx(0.007)
    assert hist.min == 0.001 and hist.max == 0.004
    assert hist.mean == pytest.approx(0.007 / 3)


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="only go up"):
        registry.inc("rows", -1)


def test_labels_are_order_insensitive():
    registry = MetricsRegistry()
    registry.inc("tasks", 1, shard="a", backend="thread")
    registry.inc("tasks", 1, backend="thread", shard="a")
    assert registry.counter("tasks", shard="a", backend="thread").value == 2
    assert metric_key("x", {"a": 1, "b": 2}) == metric_key("x", {"b": 2, "a": 1})


def test_histogram_quantiles_are_clamped_to_observed_range():
    hist = Histogram(bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.6, 3.0, 10.0):
        hist.observe(value)
    assert hist.quantile(0.0) >= hist.min
    assert hist.quantile(1.0) == hist.max
    assert hist.min <= hist.quantile(0.5) <= hist.max
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        hist.quantile(1.5)


def test_histogram_merge_requires_identical_bounds():
    a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 3.0))
    with pytest.raises(ValueError, match="bounds"):
        a.merge(b)


def test_registry_merge_is_exact():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("rows", 3)
    b.inc("rows", 4)
    b.inc("only_b", 1, shard="s1")
    a.set_gauge("rank", 2)
    b.set_gauge("rank", 5)
    a.observe("lat", 0.01)
    b.observe("lat", 0.02)
    b.observe("lat", 0.03)

    a.merge(b)
    assert a.counter("rows").value == 7
    assert a.counter("only_b", shard="s1").value == 1
    # Merge takes the other side's gauge sample (it is the newer one).
    assert a.gauge("rank").value == 5
    hist = a.histogram("lat")
    assert hist.count == 3 and hist.sum == pytest.approx(0.06)


def test_registry_round_trips_through_json_and_pickle():
    registry = MetricsRegistry()
    registry.inc("rows", 9, shard="rack-0")
    registry.set_gauge("rank", 4)
    registry.observe("lat", 0.25)

    # JSON round trip.
    restored = MetricsRegistry.from_dict(
        json.loads(json.dumps(registry.to_dict()))
    )
    assert restored.totals() == registry.totals()
    assert restored.histogram("lat").sum == pytest.approx(0.25)

    # Pickle round trip (the transport the process backend uses).
    cloned = pickle.loads(pickle.dumps(registry))
    assert cloned.totals() == registry.totals()
    cloned.inc("rows", 1, shard="rack-0")  # the recreated lock works
    assert cloned.counter("rows", shard="rack-0").value == 10


def test_empty_histogram_serialises_without_inf():
    state = Histogram().to_dict()
    assert state["min"] is None and state["max"] is None
    assert Histogram.from_dict(json.loads(json.dumps(state))).count == 0


# --------------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------------- #
def test_spans_nest_and_feed_histograms(tmp_path):
    registry = MetricsRegistry()
    ring = RingBufferTraceSink(capacity=16)
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(metrics=registry, sinks=[ring, JsonLinesTraceSink(str(path))])

    with tracer.span("outer", kind="test"):
        with tracer.span("inner"):
            pass
        tracer.record("leaf", 0.005, detail=np.int64(3))
    tracer.close_sinks()

    events = {event["name"]: event for event in ring.events}
    assert set(events) == {"outer", "inner", "leaf"}
    assert events["inner"]["parent_id"] == events["outer"]["span_id"]
    assert events["leaf"]["parent_id"] == events["outer"]["span_id"]
    assert events["outer"]["parent_id"] is None
    assert events["outer"]["attrs"] == {"kind": "test"}
    # record() back-dates the leaf inside the enclosing span.
    assert events["leaf"]["duration"] == pytest.approx(0.005)
    assert events["leaf"]["end"] <= events["outer"]["end"]
    # numpy attrs are coerced to JSON-safe scalars.
    assert events["leaf"]["attrs"] == {"detail": 3}

    # Every span observed its duration histogram.
    for name in ("outer", "inner", "leaf"):
        assert registry.histogram(f"span.{name}").count == 1

    # The JSON-lines file parses to the same events, after a version header.
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["kind"] == "trace_header"
    assert lines[0]["schema_version"] == 1
    parsed = [line for line in lines if line.get("kind") != "trace_header"]
    assert {event["name"] for event in parsed} == {"outer", "inner", "leaf"}


def test_span_marks_errors():
    registry = MetricsRegistry()
    ring = RingBufferTraceSink()
    tracer = Tracer(metrics=registry, sinks=[ring])
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    (event,) = ring.events
    assert event["error"] is True
    assert registry.histogram("span.doomed").count == 1


def test_ring_buffer_keeps_most_recent():
    registry = MetricsRegistry()
    ring = RingBufferTraceSink(capacity=3)
    tracer = Tracer(metrics=registry, sinks=[ring])
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert [event["name"] for event in ring.events] == ["s2", "s3", "s4"]


# --------------------------------------------------------------------------- #
# Provider lifecycle
# --------------------------------------------------------------------------- #
def test_disabled_provider_is_inert():
    assert not OBS.enabled
    span = OBS.span("anything", shard=1)
    with span:
        OBS.inc("c")
        OBS.gauge("g", 1.0)
        OBS.observe("h", 0.1)
        OBS.record("r", 0.1)
    assert span is OBS.span("something-else"), "shared no-op span"
    assert len(OBS.metrics) == 0
    assert OBS.ring is None


def test_enable_disable_reset_cycle(tmp_path):
    obs.enable(trace_path=str(tmp_path / "t.jsonl"))
    with OBS.span("work"):
        OBS.inc("c")
    assert OBS.enabled
    assert len(OBS.ring) == 1
    obs.disable()
    with OBS.span("ignored"):
        pass
    # Metrics survive disable (report after the run)...
    assert OBS.metrics.counter("c").value == 1
    assert OBS.metrics.histogram("span.work").count == 1
    # ...and reset clears everything.
    OBS.reset()
    assert len(OBS.metrics) == 0


def test_drain_detaches_registry():
    obs.enable()
    OBS.inc("c", 5)
    drained = OBS.drain()
    assert drained.counter("c").value == 5
    assert len(OBS.metrics) == 0
    OBS.inc("c", 1)
    assert OBS.metrics.counter("c").value == 1
    assert drained.counter("c").value == 5, "drained snapshot is detached"


# --------------------------------------------------------------------------- #
# Report
# --------------------------------------------------------------------------- #
def _loaded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    for value in (0.010, 0.020, 0.030, 0.040):
        registry.observe("span.service.ingest", value)
        registry.observe("service.chunk.seconds", value)
    registry.observe("span.core.partial_fit", 0.015)
    registry.inc("service.rows", 4_000)
    registry.inc("alerts.fired", 3, rule="zscore")
    registry.set_gauge("service.rows_per_sec", 123_456.0)
    return registry


def test_summarize_digest():
    digest = obs.report.summarize(_loaded_registry())
    spans = {entry["span"]: entry for entry in digest["spans"]}
    assert spans["service.ingest"]["count"] == 4
    assert spans["service.ingest"]["total"] == pytest.approx(0.1)
    assert digest["spans"][0]["span"] == "service.ingest", "sorted by total"
    assert digest["hotspots"][0]["share_of_busiest"] == 1.0
    assert digest["throughput"]["rows_per_sec_overall"] == pytest.approx(
        4_000 / 0.1
    )
    assert digest["alerts_by_rule"] == {"zscore": 3}


def test_report_renders_text_and_markdown():
    registry = _loaded_registry()
    text = obs.report.render_text(registry)
    markdown = obs.report.render_markdown(registry)
    assert "service.ingest" in text and "p95" in text
    assert "rows_per_sec_overall" in text
    assert markdown.count("|") > 4 and "## " in markdown


def test_metrics_json_is_json_safe_and_complete():
    payload = obs.report.metrics_json(_loaded_registry())
    parsed = json.loads(json.dumps(payload))
    assert set(parsed) == {
        "counters", "gauges", "histograms", "derived", "schema_version",
    }
    assert parsed["schema_version"] == obs.report.METRICS_SCHEMA_VERSION
    restored = MetricsRegistry.from_dict(parsed)
    assert restored.counter("service.rows").value == 4_000
    # The stamped payload loads back through the version-checked loader too.
    reloaded = obs.report.load_metrics_json(parsed)
    assert reloaded.counter("service.rows").value == 4_000

"""Shared-memory chunk transport for the process backend.

Covers the slab ring's bump-allocate / refcount / recycle lifecycle in
isolation, then the executor-level contract: ``transport="shm"`` and
``transport="pickle"`` return identical results (shm changes how bytes
move, never what arrives), the ``REPRO_DISABLE_SHM`` kill switch forces
the pickle fallback, and broadcast payloads are deduplicated per worker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.parallel import (
    ProcessShardExecutor,
    _SlabRing,
    _resolve_shm_value,
    make_shard_executor,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable here"
)


# --------------------------------------------------------------------------- #
# Slab ring
# --------------------------------------------------------------------------- #
class TestSlabRing:
    def test_place_roundtrips_bitwise(self):
        ring = _SlabRing(slab_bytes=1 << 16)
        try:
            array = np.random.default_rng(0).standard_normal((64, 32))
            ref, index = ring.place(array)
            cache = {}
            out = _resolve_shm_value(ref, cache)
            assert np.array_equal(out, array) and out.dtype == array.dtype
            # The resolved array is a copy, not a view into the slab.
            assert out.base is None
            ring.release(index)
            for seg in cache.values():
                seg.close()
        finally:
            ring.close()

    def test_refcounted_recycling_bounds_the_ring(self):
        ring = _SlabRing(slab_bytes=1 << 12, max_slabs=4)
        try:
            array = np.ones(400)  # 3200 bytes: one per slab
            for _ in range(16):  # 4x the capacity — recycling must kick in
                placed = ring.place(array)
                assert placed is not None
                ring.release(placed[1])
            assert ring.n_slabs <= 2
            assert ring.occupancy() == 0.0
        finally:
            ring.close()

    def test_exhaustion_returns_none_for_pickle_fallback(self):
        ring = _SlabRing(slab_bytes=1 << 12, max_slabs=2)
        try:
            held = [ring.place(np.ones(200)) for _ in range(2 * 2)]  # 2 per slab
            assert all(p is not None for p in held)
            # Every slab holds live references: nothing left to claim.
            assert ring.place(np.ones(200)) is None
            ring.release(held[0][1])
        finally:
            ring.close()

    def test_oversized_array_gets_a_dedicated_slab(self):
        ring = _SlabRing(slab_bytes=1 << 12, max_slabs=2)
        try:
            big = np.arange(1 << 16, dtype=np.float64)  # 512 KiB >> 4 KiB slab
            ref, index = ring.place(big)
            cache = {}
            assert np.array_equal(_resolve_shm_value(ref, cache), big)
            for seg in cache.values():
                seg.close()
            ring.release(index)
        finally:
            ring.close()

    def test_empty_array_and_closed_ring_place_nothing(self):
        ring = _SlabRing()
        assert ring.place(np.empty(0)) is None
        ring.close()
        assert ring.place(np.ones(16)) is None


# --------------------------------------------------------------------------- #
# Executor transport
# --------------------------------------------------------------------------- #
def _total(obj, values):
    return float(np.asarray(values).sum()) + obj["offset"]


def _shapes(obj, a, scale=None, b=None):
    parts = [np.asarray(a).shape]
    if scale is not None:
        parts.append(np.asarray(scale).shape)
    if b is not None:
        parts.append(np.asarray(b).shape)
    return parts


def _describe(obj):
    return obj["offset"]


OBJECTS = {"a": {"offset": 1.0}, "b": {"offset": 2.0}, "c": {"offset": 3.0}}


def _run_workload(executor):
    """A chunk-shaped workload: big arrays positional, keyword, broadcast."""
    gen = np.random.default_rng(5)
    chunk = gen.standard_normal((48, 512))  # ~196 KiB, well above _SHM_MIN_BYTES
    with executor:
        executor.start(dict(OBJECTS))
        totals = [
            executor.call(shard, _total, chunk + i)
            for i, shard in enumerate(("a", "b", "c"))
        ]
        shapes = executor.call(
            "a", _shapes, chunk, scale=gen.standard_normal(2048), b=np.ones(4)
        )
        broadcast = executor.broadcast(_total, chunk)
    return totals, shapes, broadcast


def test_shm_and_pickle_transports_agree():
    shm = _run_workload(ProcessShardExecutor(max_workers=2, transport="shm"))
    pickled = _run_workload(ProcessShardExecutor(max_workers=2, transport="pickle"))
    assert shm == pickled
    totals, shapes, broadcast = shm
    assert shapes == [(48, 512), (2048,), (4,)]
    assert set(broadcast) == set(OBJECTS)


def test_transport_property_reflects_the_ring():
    with ProcessShardExecutor(max_workers=1, transport="shm") as executor:
        executor.start({"a": {"offset": 0.0}})
        assert executor.transport == "shm"
    with ProcessShardExecutor(max_workers=1, transport="pickle") as executor:
        executor.start({"a": {"offset": 0.0}})
        assert executor.transport == "pickle"


def test_env_kill_switch_forces_pickle(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
    with ProcessShardExecutor(max_workers=1, transport="auto") as executor:
        executor.start({"a": {"offset": 0.5}})
        assert executor.transport == "pickle"
        chunk = np.random.default_rng(3).standard_normal((32, 256))
        assert executor.call("a", _total, chunk) == pytest.approx(chunk.sum() + 0.5)


def test_env_kill_switch_overrides_strict_shm(monkeypatch):
    """The operator escape hatch wins even over transport="shm"."""
    monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
    with ProcessShardExecutor(max_workers=1, transport="shm") as executor:
        executor.start({"a": {"offset": 0.0}})
        assert executor.transport == "pickle"


def test_strict_shm_raises_when_platform_lacks_it(monkeypatch):
    import repro.util.parallel as parallel

    monkeypatch.setattr(parallel, "shm_available", lambda: False)
    executor = ProcessShardExecutor(max_workers=1, transport="shm")
    with pytest.raises(RuntimeError, match="shared memory"):
        executor.start({"a": {}})
    executor.close()

    with pytest.raises(ValueError, match="transport"):
        ProcessShardExecutor(transport="mmap")


def test_make_shard_executor_threads_transport_through():
    executor = make_shard_executor("process", max_workers=1, transport="pickle")
    try:
        assert isinstance(executor, ProcessShardExecutor)
        executor.start({"a": {"offset": 0.0}})
        assert executor.transport == "pickle"
    finally:
        executor.close()
    with pytest.raises(ValueError, match="transport"):
        make_shard_executor("thread", transport="shm")


def test_broadcast_dedup_ships_one_payload_per_worker():
    """Shards co-resident on a worker reuse one broadcast payload."""
    with ProcessShardExecutor(max_workers=2, transport="shm") as executor:
        executor.start(dict(OBJECTS))  # 3 shards on 2 workers
        for _ in range(3):  # repeated rounds: payload cleanup must not leak
            result = executor.broadcast(_describe)
            assert result == {"a": 1.0, "b": 2.0, "c": 3.0}


def test_small_arguments_skip_the_slab():
    """Tiny arrays ride the pickle path even under transport="shm"."""
    with ProcessShardExecutor(max_workers=1, transport="shm") as executor:
        executor.start({"a": {"offset": 0.0}})
        small = np.arange(8.0)  # 64 bytes < _SHM_MIN_BYTES
        assert executor.call("a", _total, small) == pytest.approx(small.sum())


# --------------------------------------------------------------------------- #
# Fleet-level parity: the transport must be invisible in the products
# --------------------------------------------------------------------------- #
def _drive_fleet(transport: str):
    from repro.core import MrDMDConfig
    from repro.pipeline import PipelineConfig
    from repro.service import FleetMonitor, RackSharding
    from repro.telemetry import HotNodes, TelemetryGenerator, theta_machine

    machine = theta_machine(racks_per_row=1, n_rows=2, node_limit=64)
    generator = TelemetryGenerator(machine, seed=31, utilization_target=0.3)
    stream = generator.generate(
        480,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(20, 21), start=240, delta=12.0)],
    )
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=3), baseline_range=(40.0, 75.0)
        ),
        executor=ProcessShardExecutor(max_workers=2, transport=transport),
    )
    snapshots = []
    with monitor:
        snapshots.append(monitor.ingest(stream.values[:, :240]))
        for lo, hi in ((240, 320), (320, 400), (400, 480)):
            snapshots.append(monitor.ingest(stream.values[:, lo:hi]))
        rack_values = monitor.rack_values()
    return snapshots, rack_values


def test_fleet_products_identical_across_transports():
    snaps_shm, racks_shm = _drive_fleet("shm")
    snaps_pickle, racks_pickle = _drive_fleet("pickle")
    assert racks_shm == racks_pickle
    for a, b in zip(snaps_shm, snaps_pickle):
        assert a.step == b.step and a.total_modes == b.total_modes
        for shard_id, pa in a.shard_snapshots.items():
            pb = b.shard_snapshots[shard_id]
            assert pa.n_modes == pb.n_modes
            if pa.update is not None:
                assert pa.update.drift == pb.update.drift

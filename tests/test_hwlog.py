"""Unit tests for the hardware-error-log substrate (repro.hwlog)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hwlog import HardwareErrorModel, HardwareEvent, HardwareEventType, HardwareLog


def make_event(node=0, etype=HardwareEventType.CORRECTABLE_MEMORY_ERROR, start=10, end=11,
               severity=1) -> HardwareEvent:
    return HardwareEvent(node=node, event_type=etype, start_step=start, end_step=end,
                         severity=severity)


class TestHardwareEvent:
    def test_duration(self):
        event = make_event(start=5, end=20)
        assert event.duration == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            make_event(start=10, end=5)
        with pytest.raises(ValueError):
            make_event(severity=7)


class TestHardwareLog:
    def test_queries(self):
        log = HardwareLog([
            make_event(0),
            make_event(0, HardwareEventType.NODE_DOWN, start=0, end=240, severity=3),
            make_event(3, HardwareEventType.LINK_FAULT),
        ])
        assert len(log) == 3
        assert len(log.events_on_node(0)) == 2
        assert len(log.events_of_type(HardwareEventType.LINK_FAULT)) == 1
        assert log.nodes_with(HardwareEventType.CORRECTABLE_MEMORY_ERROR).tolist() == [0]
        counts = log.event_counts(5)
        assert counts[0] == 2 and counts[3] == 1
        counts_mem = log.event_counts(5, HardwareEventType.CORRECTABLE_MEMORY_ERROR)
        assert counts_mem.sum() == 1

    def test_downtime_hours(self):
        log = HardwareLog([make_event(1, HardwareEventType.NODE_DOWN, start=0, end=240, severity=3)])
        hours = log.downtime_hours(3, dt_seconds=15.0)
        assert hours[1] == pytest.approx(1.0)
        assert hours[0] == 0.0

    def test_events_in_window(self):
        log = HardwareLog([
            make_event(0, start=10, end=11),
            make_event(1, HardwareEventType.NODE_DOWN, start=50, end=150, severity=3),
        ])
        assert len(log.events_in_window(0, 20)) == 1
        assert len(log.events_in_window(100, 200)) == 1
        assert len(log.events_in_window(20, 40)) == 0

    def test_summary_counts_every_category(self):
        log = HardwareLog([make_event(0), make_event(1)])
        summary = log.summary()
        assert summary["correctable_memory_error"] == 2
        assert set(summary) == {e.value for e in HardwareEventType}

    def test_add_and_iterate(self):
        log = HardwareLog()
        log.add(make_event())
        assert len(list(log)) == 1
        assert log.events[0].node == 0


class TestHardwareErrorModel:
    def test_generation_is_deterministic(self):
        a = HardwareErrorModel(n_nodes=50, seed=4).generate(2000)
        b = HardwareErrorModel(n_nodes=50, seed=4).generate(2000)
        assert len(a) == len(b)
        assert [(e.node, e.start_step) for e in a] == [(e.node, e.start_step) for e in b]

    def test_events_within_bounds(self):
        log = HardwareErrorModel(n_nodes=30, seed=1).generate(1000)
        for event in log:
            assert 0 <= event.node < 30
            assert 0 <= event.start_step < 1000
            assert event.end_step <= 1000

    def test_hot_nodes_receive_more_events(self):
        model = HardwareErrorModel(n_nodes=100, seed=2, hot_node_multiplier=40.0,
                                   flaky_fraction=0.0)
        hot = list(range(10))
        log = model.generate(5000, hot_nodes=hot)
        counts = log.event_counts(100)
        hot_rate = counts[hot].mean()
        cold_rate = counts[10:].mean()
        assert hot_rate > cold_rate

    def test_flaky_nodes_dominate_memory_errors(self):
        model = HardwareErrorModel(n_nodes=200, seed=3, flaky_fraction=0.05,
                                   flaky_multiplier=50.0)
        log = model.generate(5000)
        flaky = set(model.flaky_nodes().tolist())
        assert flaky
        counts = log.event_counts(200, HardwareEventType.CORRECTABLE_MEMORY_ERROR)
        flaky_mean = np.mean([counts[n] for n in flaky])
        other_mean = np.mean([counts[n] for n in range(200) if n not in flaky])
        assert flaky_mean > other_mean

    def test_hot_window_restricts_extra_events(self):
        model = HardwareErrorModel(n_nodes=20, seed=5, hot_node_multiplier=60.0,
                                   flaky_fraction=0.0)
        log = model.generate(4000, hot_nodes=[0], hot_window=(0, 1000))
        thermally_tagged = [e for e in log if "thermally correlated" in e.message]
        assert all(e.start_step < 1000 for e in thermally_tagged)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareErrorModel(n_nodes=0)
        with pytest.raises(ValueError):
            HardwareErrorModel(n_nodes=5, hot_node_multiplier=0.5)
        with pytest.raises(ValueError):
            HardwareErrorModel(n_nodes=5).generate(0)

    def test_zero_flaky_fraction(self):
        model = HardwareErrorModel(n_nodes=10, seed=0, flaky_fraction=0.0)
        assert model.flaky_nodes().size == 0


def test_generation_is_deterministic_across_hash_seeds():
    """The generator's RNG draw order must not depend on the process's
    hash seed (regression: thermally-correlated event types were iterated
    from a set of enum members, whose order is identity-hash randomized —
    scenario hardware logs differed from process to process)."""
    import json
    import os
    import subprocess
    import sys

    script = (
        "from repro.hwlog import HardwareErrorModel\n"
        "import json\n"
        "model = HardwareErrorModel(n_nodes=32, seed=9, hot_node_multiplier=60.0)\n"
        "log = model.generate(2000, hot_nodes=[3, 4, 5])\n"
        "print(json.dumps([(e.node, e.event_type.value, e.start_step, e.end_step)"
        " for e in log]))\n"
    )
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    outputs = []
    for hash_seed in ("0", "1"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(json.loads(result.stdout))
    assert outputs[0] == outputs[1]
    assert len(outputs[0]) > 0

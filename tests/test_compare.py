"""Unit tests for the comparison dimensionality-reduction methods (repro.compare)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compare import (
    PCA,
    AlignedUMAPLite,
    IncrementalPCA,
    NotIncrementalError,
    TSNE,
    UMAPLite,
    find_ab_params,
    fuzzy_simplicial_set,
)


def two_cluster_data(n_per_class: int = 15, n_features: int = 120, seed: int = 0):
    gen = np.random.default_rng(seed)
    t = np.arange(n_features)
    base = 50 + 2 * np.sin(0.1 * t)
    a = base + gen.standard_normal((n_per_class, n_features))
    b = base + 12 + 4 * np.sin(0.4 * t) + gen.standard_normal((n_per_class, n_features))
    data = np.vstack([a, b])
    labels = np.array([0] * n_per_class + [1] * n_per_class)
    return data, labels


def separation(embedding: np.ndarray, labels: np.ndarray) -> float:
    a, b = embedding[labels == 0], embedding[labels == 1]
    spread = (a.std(axis=0).mean() + b.std(axis=0).mean()) / 2.0
    return float(np.linalg.norm(a.mean(axis=0) - b.mean(axis=0)) / max(spread, 1e-12))


class TestPCA:
    def test_embedding_shape_and_variance_ordering(self):
        data, _ = two_cluster_data()
        pca = PCA(n_components=2).fit(data)
        assert pca.embedding_.shape == (30, 2)
        assert pca.explained_variance_[0] >= pca.explained_variance_[1]
        assert 0 < pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9

    def test_separates_clusters(self):
        data, labels = two_cluster_data()
        emb = PCA().fit_transform(data)
        assert separation(emb, labels) > 2.0

    def test_transform_matches_fit_embedding(self):
        data, _ = two_cluster_data()
        pca = PCA().fit(data)
        assert np.allclose(np.abs(pca.transform(data)), np.abs(pca.embedding_), atol=1e-8)

    def test_transform_validation(self):
        data, _ = two_cluster_data()
        pca = PCA()
        with pytest.raises(RuntimeError):
            pca.transform(data)
        pca.fit(data)
        with pytest.raises(ValueError):
            pca.transform(data[:, :10])

    def test_partial_fit_not_supported(self):
        pca = PCA()
        assert not pca.supports_partial_fit
        with pytest.raises(NotIncrementalError):
            pca.partial_fit(np.ones((3, 3)))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA().fit(np.ones(5))


class TestIncrementalPCA:
    def test_partial_fit_tracks_batch_pca(self):
        data, labels = two_cluster_data(n_features=200)
        batch = PCA().fit_transform(data)
        ipca = IncrementalPCA()
        ipca.fit(data[:, :100])
        ipca.partial_fit(data[:, 100:])
        inc = ipca.embedding_
        # Both should separate the clusters clearly (IPCA centres rows rather
        # than columns, so its score is not identical to batch PCA's).
        assert separation(inc, labels) > 5.0
        assert separation(inc, labels) > 0.3 * separation(batch, labels)

    def test_supports_partial_fit_flag(self):
        assert IncrementalPCA().supports_partial_fit

    def test_partial_fit_before_fit(self):
        data, _ = two_cluster_data()
        ipca = IncrementalPCA()
        ipca.partial_fit(data)
        assert ipca.embedding_.shape == (30, 2)

    def test_row_mismatch_rejected(self):
        data, _ = two_cluster_data()
        ipca = IncrementalPCA().fit(data)
        with pytest.raises(ValueError):
            ipca.partial_fit(np.ones((5, 10)))

    def test_transform(self):
        data, _ = two_cluster_data()
        ipca = IncrementalPCA().fit(data)
        out = ipca.transform(data)
        assert out.shape == (30, 2)
        with pytest.raises(ValueError):
            ipca.transform(data[:, :10])
        fresh = IncrementalPCA()
        with pytest.raises(RuntimeError):
            fresh.transform(data)

    def test_row_mean_tracking(self):
        data, _ = two_cluster_data()
        ipca = IncrementalPCA().fit(data[:, :60])
        ipca.partial_fit(data[:, 60:])
        assert np.allclose(ipca.row_mean_, data.mean(axis=1))


class TestTSNE:
    def test_embedding_shape_and_finite(self):
        data, labels = two_cluster_data(n_per_class=10, n_features=60)
        tsne = TSNE(n_iter=120, perplexity=8, random_state=1)
        emb = tsne.fit_transform(data)
        assert emb.shape == (20, 2)
        assert np.all(np.isfinite(emb))
        assert tsne.kl_divergence_ is not None and tsne.kl_divergence_ >= 0

    def test_separates_well_separated_clusters(self):
        data, labels = two_cluster_data(n_per_class=12, n_features=80, seed=2)
        emb = TSNE(n_iter=400, perplexity=8, random_state=0).fit_transform(data)
        assert separation(emb, labels) > 1.0

    def test_no_transform_or_partial_fit(self):
        data, _ = two_cluster_data(n_per_class=5, n_features=30)
        tsne = TSNE(n_iter=50, perplexity=3)
        tsne.fit(data)
        with pytest.raises(NotImplementedError):
            tsne.transform(data)
        with pytest.raises(NotIncrementalError):
            tsne.partial_fit(data)

    def test_validation(self):
        with pytest.raises(ValueError):
            TSNE(perplexity=1.0)
        with pytest.raises(ValueError):
            TSNE(n_iter=2)
        with pytest.raises(ValueError):
            TSNE().fit(np.ones((2, 5)))

    def test_determinism(self):
        data, _ = two_cluster_data(n_per_class=8, n_features=40)
        a = TSNE(n_iter=80, random_state=7).fit_transform(data)
        b = TSNE(n_iter=80, random_state=7).fit_transform(data)
        assert np.allclose(a, b)


class TestUMAPLite:
    def test_find_ab_params_default_range(self):
        a, b = find_ab_params(0.1)
        assert 0.5 < a < 3.0
        assert 0.5 < b < 1.5
        with pytest.raises(ValueError):
            find_ab_params(1.5, spread=1.0)

    def test_fuzzy_graph_structure(self):
        data, _ = two_cluster_data(n_per_class=10, n_features=40)
        rows, cols, weights = fuzzy_simplicial_set(data, n_neighbors=5)
        assert rows.shape == cols.shape == weights.shape
        assert np.all(weights > 0) and np.all(weights <= 1.0 + 1e-9)
        assert np.all(rows != cols)

    def test_embedding_shape_and_separation(self):
        data, labels = two_cluster_data(n_per_class=12, n_features=60, seed=4)
        umap = UMAPLite(n_epochs=120, n_neighbors=8, random_state=2)
        emb = umap.fit_transform(data)
        assert emb.shape == (24, 2)
        assert np.all(np.isfinite(emb))
        assert separation(emb, labels) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UMAPLite(n_neighbors=1)
        with pytest.raises(ValueError):
            UMAPLite(n_epochs=1)

    def test_transform_not_supported(self):
        data, _ = two_cluster_data(n_per_class=6, n_features=30)
        umap = UMAPLite(n_epochs=20, n_neighbors=4).fit(data)
        with pytest.raises(NotImplementedError):
            umap.transform(data)

    def test_fit_with_anchors_stays_near_anchors(self):
        data, _ = two_cluster_data(n_per_class=8, n_features=40)
        base = UMAPLite(n_epochs=60, n_neighbors=5, random_state=0).fit(data)
        anchored = UMAPLite(n_epochs=60, n_neighbors=5, random_state=1)
        anchored.fit_with_anchors(data, base.embedding_, anchor_strength=0.5)
        drift = np.linalg.norm(anchored.embedding_ - base.embedding_, axis=1).mean()
        scale = np.abs(base.embedding_).max()
        assert drift < scale
        with pytest.raises(ValueError):
            anchored.fit_with_anchors(data, base.embedding_[:3])


class TestAlignedUMAPLite:
    def test_partial_fit_sequence(self):
        data, labels = two_cluster_data(n_per_class=10, n_features=120, seed=6)
        aligned = AlignedUMAPLite(n_epochs=60, n_neighbors=6, random_state=0)
        aligned.fit(data[:, :60])
        aligned.partial_fit(data[:, 60:])
        assert aligned.embedding_.shape == (20, 2)
        assert len(aligned.embeddings_) == 2
        drifts = aligned.alignment_drift()
        assert drifts.shape == (1,)
        assert np.isfinite(drifts[0])

    def test_partial_fit_before_fit(self):
        data, _ = two_cluster_data(n_per_class=8, n_features=40)
        aligned = AlignedUMAPLite(n_epochs=30, n_neighbors=5)
        aligned.partial_fit(data)
        assert aligned.embedding_ is not None

    def test_row_mismatch_rejected(self):
        data, _ = two_cluster_data(n_per_class=8, n_features=40)
        aligned = AlignedUMAPLite(n_epochs=30, n_neighbors=5).fit(data)
        with pytest.raises(ValueError):
            aligned.partial_fit(np.ones((3, 10)))

    def test_window_limits_columns(self):
        data, _ = two_cluster_data(n_per_class=8, n_features=90)
        aligned = AlignedUMAPLite(n_epochs=30, n_neighbors=5, window=40)
        aligned.fit(data[:, :45])
        aligned.partial_fit(data[:, 45:])
        assert aligned._current_view().shape[1] == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            AlignedUMAPLite(alignment_strength=-1.0)
        with pytest.raises(ValueError):
            AlignedUMAPLite(window=1)
        with pytest.raises(NotImplementedError):
            AlignedUMAPLite().transform(np.ones((3, 3)))

"""Cross-process trace propagation, clock calibration, lost registries.

The causal-telemetry contract: a ``(trace_id, parent span id)`` pair ships
with every executor task, worker spans adopt it, per-worker clock offsets
land every event on the coordinator's monotonic timeline, and the drained
JSON-lines trace merges into ONE tree rooted at the coordinator's round
spans.  The acceptance test at the bottom asserts exactly that for a
process-backend ``federated-fleet`` CLI run.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import obs
from repro.obs import (
    OBS,
    MetricsRegistry,
    RingBufferTraceSink,
    TraceContext,
    Tracer,
    worker_drain_trace,
    worker_enable_metrics,
)
from repro.service.__main__ import main as service_main
from repro.util.parallel import (
    ProcessShardExecutor,
    ShardTaskError,
    ThreadShardExecutor,
)


@pytest.fixture(autouse=True)
def pristine_provider():
    OBS.reset()
    yield
    OBS.reset()


def _identity(obj):
    return obj


def _sleep_forever(obj):
    time.sleep(60.0)
    return obj


# --------------------------------------------------------------------------- #
# TraceContext capture / adoption (in-process units)
# --------------------------------------------------------------------------- #
class TestTraceContext:
    def test_none_while_disabled(self):
        assert not OBS.enabled
        assert OBS.current_context() is None

    def test_none_without_an_open_span(self):
        obs.enable()
        assert OBS.current_context() is None

    def test_captured_inside_a_span(self):
        obs.enable()
        with OBS.span("round"):
            ctx = OBS.current_context()
        assert isinstance(ctx, TraceContext)
        assert ctx.trace_id == OBS.trace_id
        assert ctx.span_id is not None

    def test_adopt_parents_remote_spans(self):
        coordinator_ring = RingBufferTraceSink()
        coordinator = Tracer(
            metrics=MetricsRegistry(), sinks=[coordinator_ring],
            trace_id="t-1",
        )
        with coordinator.span("round"):
            ctx = coordinator.current_context()

        worker_ring = RingBufferTraceSink()
        worker = Tracer(metrics=MetricsRegistry(), sinks=[worker_ring])
        with worker.adopt(ctx):
            with worker.span("task"):
                pass

        (event,) = worker_ring.events
        assert event["parent_id"] == ctx.span_id
        assert event["trace_id"] == "t-1", "trace id travels with the context"
        # Outside the adoption scope, spans are unparented again.
        with worker.span("later"):
            pass
        assert worker_ring.events[-1]["parent_id"] is None

    def test_adopt_accepts_the_pickled_tuple_form(self):
        ring = RingBufferTraceSink()
        worker = Tracer(metrics=MetricsRegistry(), sinks=[ring])
        with worker.adopt(("t-2", 42)):
            with worker.span("task"):
                pass
        assert ring.events[0]["parent_id"] == 42

    def test_adopt_none_and_spanless_context_are_noops(self):
        ring = RingBufferTraceSink()
        worker = Tracer(metrics=MetricsRegistry(), sinks=[ring])
        with worker.adopt(None):
            with worker.span("a"):
                pass
        with worker.adopt(TraceContext("t-3", None)):
            with worker.span("b"):
                pass
        assert [event["parent_id"] for event in ring.events] == [None, None]


class TestClockOffset:
    def test_offset_shifts_events_but_never_durations(self):
        plain_ring, shifted_ring = RingBufferTraceSink(), RingBufferTraceSink()
        plain = Tracer(metrics=MetricsRegistry(), sinks=[plain_ring])
        shifted_registry = MetricsRegistry()
        shifted = Tracer(
            metrics=shifted_registry, sinks=[shifted_ring], clock_offset=123.0
        )
        with plain.span("s"):
            pass
        with shifted.span("s"):
            pass
        plain_event, shifted_event = plain_ring.events[0], shifted_ring.events[0]
        assert shifted_event["end"] - plain_event["end"] == pytest.approx(
            123.0, abs=1.0
        )
        # The metric side sees the raw duration, not the shifted clock.
        assert shifted_event["duration"] < 1.0
        assert shifted_registry.histogram("span.s").max < 1.0

    def test_set_remote_context_applies_immediately(self):
        obs.enable()
        OBS.set_remote_context("t-9", 55.0)
        assert OBS.tracer.trace_id == "t-9"
        assert OBS.tracer.clock_offset == 55.0
        # ...and survives a re-enable (respawned workers re-handshake).
        obs.enable()
        assert OBS.tracer.trace_id == "t-9"
        assert OBS.tracer.clock_offset == 55.0

    def test_in_process_backends_have_nothing_to_calibrate(self):
        obs.enable()
        executor = ThreadShardExecutor(max_workers=2)
        executor.start({"a": 0, "b": 0})
        try:
            assert executor.remote_worker_shards() == ()
            assert executor.calibrate_clocks() == {}
        finally:
            executor.close()


# --------------------------------------------------------------------------- #
# Process backend: calibration handshake + parented worker spans
# --------------------------------------------------------------------------- #
class TestProcessPropagation:
    def test_calibration_and_worker_span_parenting(self):
        executor = ProcessShardExecutor(max_workers=2)
        executor.start({"a": 0, "b": 0})
        try:
            # Disabled provider: the handshake is skipped entirely.
            assert executor.calibrate_clocks() == {}

            obs.enable()
            offsets = executor.calibrate_clocks()
            assert set(offsets) == set(executor.remote_worker_shards())
            for offset in offsets.values():
                assert abs(offset) < 5.0, "same-host offsets are small"
            totals = OBS.metrics.totals()
            assert any(
                key.startswith("executor.clock.offset_seconds{")
                for key in totals
            )
            assert any(
                key.startswith("executor.clock.rtt_seconds{")
                for key in totals
            )

            executor.broadcast(worker_enable_metrics)
            with OBS.span("service.round"):
                round_id = OBS.tracer.current_span_id()
                executor.map(_identity, {"a": (), "b": ()})

            events = []
            for name in executor.remote_worker_shards():
                events.extend(executor.call(name, worker_drain_trace))
            task_events = [e for e in events if e["name"] == "executor.task"]
            assert len(task_events) == 2, "one span per shard task"
            for event in task_events:
                assert event["parent_id"] == round_id
                assert event["pid"] != os.getpid()
                assert event["trace_id"] == OBS.trace_id
                assert event["attrs"]["backend"] == "process"

            # Merging drops them into the coordinator's sinks verbatim.
            OBS.tracer.ingest_events(task_events)
            merged = [
                e for e in OBS.ring.events if e["name"] == "executor.task"
            ]
            assert len(merged) == 2
        finally:
            executor.close()

    def test_contextless_tasks_stay_out_of_the_trace(self):
        """Housekeeping submitted outside any span must not pollute the
        merged timeline with unparented events."""
        obs.enable()
        executor = ProcessShardExecutor(max_workers=2)
        executor.start({"a": 0, "b": 0})
        try:
            executor.calibrate_clocks()
            executor.broadcast(worker_enable_metrics)
            executor.map(_identity, {"a": (), "b": ()})  # no open span
            events = []
            for name in executor.remote_worker_shards():
                events.extend(executor.call(name, worker_drain_trace))
            assert events == [], "context-free tasks emit no span events"
        finally:
            executor.close()


# --------------------------------------------------------------------------- #
# Lost registries: force-terminated workers are counted, not silent
# --------------------------------------------------------------------------- #
class TestLostRegistries:
    def test_force_terminated_worker_increments_counter(self):
        obs.enable()
        executor = ProcessShardExecutor(max_workers=2, close_timeout=0.5)
        executor.start({"a": 0, "b": 0})
        executor.broadcast(worker_enable_metrics)
        executor.submit("b", _sleep_forever)
        with pytest.raises(ShardTaskError, match="'b'"):
            executor.close()

        totals = OBS.metrics.totals()
        lost = sum(
            value
            for key, value in totals.items()
            if key.startswith("obs.metrics.lost_registries")
        )
        assert lost >= 1

        digest = obs.report.summarize(OBS.metrics)
        assert digest["resilience"]["lost_registries"] >= 1
        text = obs.report.render_text(OBS.metrics)
        assert "metric registries lost" in text

    def test_clean_close_loses_nothing(self):
        obs.enable()
        executor = ProcessShardExecutor(max_workers=2)
        executor.start({"a": 0, "b": 0})
        executor.broadcast(worker_enable_metrics)
        executor.map(_identity, {"a": (), "b": ()})
        executor.close()
        totals = OBS.metrics.totals()
        assert not any(
            key.startswith("obs.metrics.lost_registries") for key in totals
        )


# --------------------------------------------------------------------------- #
# Acceptance: one merged, calibrated, fully-chained federated trace
# --------------------------------------------------------------------------- #
def test_federated_process_trace_is_one_causal_timeline(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    code = service_main(
        [
            "federated-fleet",
            "--executor", "process",
            "--workers", "2",
            "--trace-out", str(trace_path),
        ]
    )
    assert code == 0

    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    header = lines[0]
    assert header["kind"] == "trace_header"
    assert header["schema_version"] == 1
    events = [line for line in lines if line.get("kind") != "trace_header"]
    assert events

    # One trace id across coordinator and every worker process.
    assert {event.get("trace_id") for event in events} == {header["trace_id"]}

    coordinator_pid = os.getpid()
    by_id = {event["span_id"]: event for event in events}
    worker_events = [e for e in events if e["pid"] != coordinator_pid]
    assert worker_events, "process workers contributed spans"
    assert {e["pid"] for e in worker_events}, "distinct worker pids"

    roots = set()
    for event in worker_events:
        # Every worker span's parent chain resolves, link by link, to a
        # span recorded by the coordinator process.
        current = event
        while current.get("parent_id") is not None:
            assert current["parent_id"] in by_id, (
                f"broken chain at {current['name']}"
            )
            current = by_id[current["parent_id"]]
        assert current["pid"] == coordinator_pid, (
            f"worker span {event['name']} is not rooted at the coordinator"
        )
        roots.add(current["name"])
        # Calibrated timeline: the worker span nests inside its
        # coordinator root's envelope (generous bound, far below the
        # seconds-scale error an uncalibrated clock pair would show).
        root = current
        assert event["start"] >= root["start"] - 0.25
        assert event["end"] <= root["end"] + 0.25

    # Ingest rounds and the executor-parallel per-machine checkpoint
    # fan-out both cross the process boundary; every worker span chains
    # back to one of those two coordinator roots.
    assert roots == {"federation.round", "checkpoint.federated_save"}

"""Unit tests for the amortized-growth buffers (repro.util.growbuf)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.util.growbuf import GrowableMatrix, RingBuffer


class TestGrowableMatrix:
    def test_append_matches_hstack(self):
        gen = np.random.default_rng(0)
        blocks = [gen.standard_normal((6, c)) for c in (3, 1, 7, 2, 16, 5)]
        buf = GrowableMatrix(6)
        for block in blocks:
            buf.append(block)
        reference = np.hstack(blocks)
        assert buf.shape == reference.shape
        assert np.array_equal(buf.view(), reference)
        assert np.array_equal(buf.materialize(), reference)

    def test_from_array_copies(self):
        base = np.arange(12.0).reshape(3, 4)
        buf = GrowableMatrix.from_array(base)
        base[0, 0] = 99.0
        assert buf.view()[0, 0] == 0.0

    def test_capacity_doubles_not_per_append(self):
        buf = GrowableMatrix(4, capacity=4)
        capacities = set()
        for _ in range(100):
            buf.append(np.zeros((4, 1)))
            capacities.add(buf.capacity)
        assert buf.n_cols == 100
        # Geometric growth: O(log T) distinct capacities, not O(T).
        assert len(capacities) <= 8
        assert buf.capacity >= 100

    def test_single_column_append(self):
        buf = GrowableMatrix(3)
        buf.append(np.array([1.0, 2.0, 3.0]))
        assert buf.shape == (3, 1)
        assert np.array_equal(buf.column(0), [1.0, 2.0, 3.0])
        assert np.array_equal(buf.column(-1), [1.0, 2.0, 3.0])

    def test_empty_append_is_noop(self):
        buf = GrowableMatrix(3)
        buf.append(np.zeros((3, 2)))
        buf.append(np.zeros((3, 0)))
        assert buf.n_cols == 2

    def test_slice_returns_contiguous_copy(self):
        buf = GrowableMatrix.from_array(np.arange(20.0).reshape(4, 5))
        part = buf.slice(1, 4)
        assert part.flags["C_CONTIGUOUS"]
        assert np.array_equal(part, np.arange(20.0).reshape(4, 5)[:, 1:4])
        part[0, 0] = -1.0
        assert buf.view()[0, 1] == 1.0  # copy, not a view

    def test_validation(self):
        with pytest.raises(ValueError):
            GrowableMatrix(0)
        with pytest.raises(ValueError):
            GrowableMatrix(3, capacity=0)
        buf = GrowableMatrix(3)
        with pytest.raises(ValueError):
            buf.append(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            buf.append(np.zeros((2, 2, 2)))
        with pytest.raises(IndexError):
            buf.column(0)
        with pytest.raises(IndexError):
            buf.slice(0, 1)

    def test_pickle_round_trip_compact_and_identical(self):
        gen = np.random.default_rng(1)
        buf = GrowableMatrix(5, capacity=4)
        for _ in range(9):
            buf.append(gen.standard_normal((5, 3)))
        clone = pickle.loads(pickle.dumps(buf))
        assert np.array_equal(clone.view(), buf.view())
        assert clone.dtype == buf.dtype
        # Spare capacity is not shipped.
        assert clone.capacity <= max(buf.n_cols, 16)
        # The clone keeps growing correctly.
        clone.append(np.ones((5, 2)))
        assert clone.n_cols == buf.n_cols + 2

    def test_dtype_preserved(self):
        buf = GrowableMatrix.from_array(np.ones((2, 3), dtype=np.complex128))
        assert buf.dtype == np.complex128
        assert buf.materialize().dtype == np.complex128


class TestRingBuffer:
    def test_keeps_most_recent(self):
        ring = RingBuffer(3)
        for i in range(7):
            ring.append(i)
        assert list(ring) == [4, 5, 6]
        assert ring.items() == [4, 5, 6]
        assert len(ring) == 3

    def test_partial_fill(self):
        ring = RingBuffer(5)
        ring.append("a")
        ring.append("b")
        assert list(ring) == ["a", "b"]
        assert len(ring) == 2

    def test_clear(self):
        ring = RingBuffer(2)
        ring.append(1)
        ring.clear()
        assert len(ring) == 0
        assert list(ring) == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

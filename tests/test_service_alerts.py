"""Alert rules, cooldown deduplication, sinks and engine state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.zscore_map import NodeZScores
from repro.core.baseline import classify_zscores
from repro.core.imrdmd import UpdateRecord
from repro.hwlog import HardwareEvent, HardwareEventType, HardwareLog
from repro.service import (
    Alert,
    AlertContext,
    AlertEngine,
    AlertSeverity,
    DriftRule,
    HardwareCorrelationRule,
    JsonLinesSink,
    RingBufferSink,
    ZScoreRule,
)


def node_scores(z_by_node: dict[int, float]) -> NodeZScores:
    nodes = np.array(sorted(z_by_node), dtype=int)
    z = np.array([z_by_node[int(n)] for n in nodes], dtype=float)
    return NodeZScores(
        node_indices=nodes, zscores=z, categories=classify_zscores(z)
    )


def context(step=100, scores=None, updates=None, hwlog=None, window=50):
    return AlertContext(
        step=step,
        node_zscores=scores,
        updates=updates or {},
        hwlog=hwlog,
        window=window,
    )


# --------------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------------- #
def test_zscore_rule_flags_both_tails():
    scores = node_scores({0: 0.1, 1: 2.5, 2: -2.6, 3: 1.9})
    alerts = ZScoreRule().evaluate(context(scores=scores))
    by_node = {a.node: a for a in alerts}
    assert set(by_node) == {1, 2}, "only beyond-extreme nodes alert"
    assert by_node[1].severity is AlertSeverity.CRITICAL
    assert by_node[2].severity is AlertSeverity.WARNING


def test_zscore_rule_without_baseline_is_silent():
    assert ZScoreRule().evaluate(context(scores=None)) == []


def make_update(drift: float, stale: bool) -> UpdateRecord:
    return UpdateRecord(
        chunk_size=10, total_snapshots=100, level1_rank=3, level1_modes=2,
        drift=drift, stale=stale, new_nodes=4,
    )


def test_drift_rule_fires_on_stale_shards():
    updates = {"rack-0": make_update(0.1, False), "rack-1": make_update(9.0, True)}
    alerts = DriftRule().evaluate(context(updates=updates))
    assert [a.shard_id for a in alerts] == ["rack-1"]
    assert alerts[0].value == pytest.approx(9.0)


def test_drift_rule_explicit_threshold():
    updates = {"rack-0": make_update(0.5, False)}
    assert DriftRule(threshold=1.0).evaluate(context(updates=updates)) == []
    fired = DriftRule(threshold=0.2).evaluate(context(updates=updates))
    assert len(fired) == 1


def test_hardware_correlation_needs_both_signals():
    scores = node_scores({1: 3.0, 2: 0.0})
    hwlog = HardwareLog([
        HardwareEvent(node=1, event_type=HardwareEventType.THERMAL_TRIP,
                      start_step=95, end_step=96),
        HardwareEvent(node=2, event_type=HardwareEventType.THERMAL_TRIP,
                      start_step=95, end_step=96),
        # Outside the recent window: must not count.
        HardwareEvent(node=1, event_type=HardwareEventType.NODE_DOWN,
                      start_step=1, end_step=2),
    ])
    alerts = HardwareCorrelationRule().evaluate(
        context(step=100, scores=scores, hwlog=hwlog, window=20)
    )
    assert [a.node for a in alerts] == [1]
    assert alerts[0].value == pytest.approx(1.0)


# --------------------------------------------------------------------------- #
# Engine: dedup / cooldown / sinks
# --------------------------------------------------------------------------- #
def test_engine_cooldown_suppresses_repeats():
    engine = AlertEngine(rules=[ZScoreRule()], cooldown=50)
    scores = node_scores({1: 3.0})
    assert len(engine.evaluate(context(step=100, scores=scores))) == 1
    assert len(engine.evaluate(context(step=120, scores=scores))) == 0, "within cooldown"
    assert len(engine.evaluate(context(step=160, scores=scores))) == 1, "cooldown elapsed"
    assert engine.stats["suppressed"] == 1


def test_engine_dedups_per_node_not_globally():
    engine = AlertEngine(rules=[ZScoreRule()], cooldown=50)
    assert len(engine.evaluate(context(step=100, scores=node_scores({1: 3.0})))) == 1
    # A different node fires immediately even within node 1's cooldown.
    assert len(engine.evaluate(context(step=110, scores=node_scores({2: 3.0})))) == 1


def test_ring_buffer_sink_caps_capacity():
    sink = RingBufferSink(capacity=2)
    engine = AlertEngine(rules=[ZScoreRule()], sinks=[sink], cooldown=0)
    for step, node in ((10, 1), (20, 2), (30, 3)):
        engine.evaluate(context(step=step, scores=node_scores({node: 3.0})))
    assert len(sink) == 2
    assert [a.node for a in sink.alerts] == [2, 3]


def test_json_lines_sink_round_trip(tmp_path):
    path = str(tmp_path / "alerts.jsonl")
    sink = JsonLinesSink(path)
    engine = AlertEngine(rules=[ZScoreRule()], sinks=[sink], cooldown=0)
    engine.evaluate(context(step=10, scores=node_scores({1: 3.0, 2: -4.0})))
    restored = sink.read()
    assert len(restored) == 2
    assert {a.node for a in restored} == {1, 2}
    assert all(isinstance(a, Alert) for a in restored)


def test_alert_dict_round_trip_with_machine():
    alert = Alert(
        rule="zscore", severity=AlertSeverity.CRITICAL, step=42,
        message="hot", node=7, shard_id="rack-1", value=3.2, machine="east",
    )
    assert Alert.from_dict(alert.to_dict()) == alert


def test_alert_from_dict_loads_pre_federation_payloads():
    """Alerts serialised before the machine field existed still load."""
    old = {
        "rule": "zscore", "severity": "WARNING", "step": 10,
        "message": "cold", "node": 3, "shard_id": "rack-0", "value": -2.5,
    }
    alert = Alert.from_dict(old)
    assert alert.machine is None
    assert alert.node == 3 and alert.severity is AlertSeverity.WARNING


def test_alert_from_dict_tolerates_forward_compatible_extras():
    """Payloads from newer writers (unknown keys) load; known keys win."""
    payload = Alert(
        rule="drift", severity=AlertSeverity.WARNING, step=5,
        message="m", shard_id="rack-2", machine="west",
    ).to_dict()
    payload["not_yet_invented"] = {"nested": True}
    payload["another_extra"] = 123
    alert = Alert.from_dict(payload)
    assert alert.machine == "west"
    assert alert.shard_id == "rack-2"
    # And the round trip back out only carries the schema's keys.
    assert "not_yet_invented" not in alert.to_dict()


def test_engine_state_round_trip_preserves_cooldown():
    engine = AlertEngine(rules=[ZScoreRule()], cooldown=50)
    engine.evaluate(context(step=100, scores=node_scores({1: 3.0})))

    fresh = AlertEngine(rules=[ZScoreRule()])
    fresh.load_state_dict(engine.state_dict())
    # Restored engine must keep suppressing within the original cooldown...
    assert fresh.evaluate(context(step=120, scores=node_scores({1: 3.0}))) == []
    # ...and fire again once it elapses.
    assert len(fresh.evaluate(context(step=151, scores=node_scores({1: 3.0})))) == 1

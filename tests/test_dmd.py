"""Unit tests for exact DMD (repro.core.dmd)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dmd import DMDResult, compute_dmd, slow_mode_mask

from helpers import make_multiscale_signal


def linear_system_data(n_steps: int = 200, dt: float = 0.1) -> tuple[np.ndarray, np.ndarray]:
    """Snapshots of a known 2x2 linear system (damped oscillator)."""
    theta = 0.3
    decay = 0.98
    a = decay * np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    x = np.zeros((2, n_steps))
    x[:, 0] = [1.0, 0.5]
    for t in range(1, n_steps):
        x[:, t] = a @ x[:, t - 1]
    return x, a


class TestComputeDMDBasics:
    def test_recovers_linear_operator_eigenvalues(self):
        data, a = linear_system_data()
        result = compute_dmd(data, dt=0.1, use_svht=False, svd_rank=2)
        expected = np.sort_complex(np.linalg.eigvals(a))
        got = np.sort_complex(result.eigenvalues)
        assert np.allclose(got, expected, atol=1e-6)

    def test_recovers_injected_frequencies(self):
        data, dt = make_multiscale_signal(n_sensors=12, n_timesteps=800)
        result = compute_dmd(data, dt)
        freqs = np.unique(np.round(result.frequencies, 3))
        assert any(abs(f - 0.05) < 0.01 for f in freqs)
        assert any(abs(f - 0.5) < 0.02 for f in freqs)

    def test_reconstruction_error_small_for_clean_signal(self):
        # A whisper of noise keeps the SVHT's median-based noise estimate
        # meaningful (it is designed for noisy data).
        data, dt = make_multiscale_signal(noise=0.01, n_sensors=10, n_timesteps=600)
        result = compute_dmd(data, dt, amplitude_method="window")
        recon = result.reconstruct()
        rel = np.linalg.norm(data - recon) / np.linalg.norm(data)
        assert rel < 0.01

    def test_noiseless_data_with_explicit_rank_reconstructs_exactly(self):
        data, dt = make_multiscale_signal(noise=0.0, n_sensors=10, n_timesteps=600)
        result = compute_dmd(data, dt, use_svht=False, svd_rank=6, amplitude_method="window")
        recon = result.reconstruct()
        rel = np.linalg.norm(data - recon) / np.linalg.norm(data)
        assert rel < 1e-6

    def test_window_amplitudes_beat_first_snapshot_on_noisy_start(self):
        data, dt = make_multiscale_signal(noise=0.5, seed=11)
        first = compute_dmd(data, dt, amplitude_method="first")
        window = compute_dmd(data, dt, amplitude_method="window")
        err_first = np.linalg.norm(data - first.reconstruct())
        err_window = np.linalg.norm(data - window.reconstruct())
        assert err_window <= err_first * 1.05  # window fit never much worse

    def test_modes_shape_matches_rank(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        assert result.modes.shape == (data.shape[0], result.svd_rank)
        assert result.eigenvalues.shape == (result.svd_rank,)
        assert result.amplitudes.shape == (result.svd_rank,)

    def test_svd_rank_cap(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt, svd_rank=2)
        assert result.n_modes <= 2

    def test_power_is_squared_mode_norm(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        expected = np.sum(np.abs(result.modes) ** 2, axis=0)
        assert np.allclose(result.power, expected)

    def test_frequencies_nonnegative(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        assert np.all(result.frequencies >= 0)


class TestDegenerateInputs:
    def test_single_snapshot_gives_empty_result(self):
        result = compute_dmd(np.ones((4, 1)), dt=1.0)
        assert result.n_modes == 0
        assert result.reconstruct(3).shape == (4, 3)

    def test_zero_matrix_gives_empty_result(self):
        result = compute_dmd(np.zeros((4, 20)), dt=1.0)
        assert result.n_modes == 0

    def test_empty_feature_dimension(self):
        result = compute_dmd(np.zeros((0, 10)), dt=1.0)
        assert result.n_modes == 0

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            compute_dmd(np.ones(10), dt=1.0)

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ValueError):
            compute_dmd(np.ones((2, 10)), dt=0.0)

    def test_bad_amplitude_method_rejected(self):
        with pytest.raises(ValueError):
            compute_dmd(np.random.default_rng(0).standard_normal((3, 20)), dt=1.0,
                        amplitude_method="nope")


class TestSVDFactors:
    def test_precomputed_factors_match_direct_computation(self):
        data, dt = make_multiscale_signal(n_sensors=8, n_timesteps=300)
        x = data[:, :-1]
        u, s, vh = np.linalg.svd(x, full_matrices=False)
        direct = compute_dmd(data, dt)
        via_factors = compute_dmd(data, dt, svd_factors=(u, s, vh))
        assert np.allclose(
            np.sort_complex(direct.eigenvalues), np.sort_complex(via_factors.eigenvalues),
            atol=1e-8,
        )

    def test_inconsistent_factor_shapes_rejected(self):
        data, dt = make_multiscale_signal(n_sensors=8, n_timesteps=100)
        u, s, vh = np.linalg.svd(data[:, :50], full_matrices=False)
        with pytest.raises(ValueError):
            compute_dmd(data, dt, svd_factors=(u, s, vh))


class TestTimeDynamicsAndSubsets:
    def test_time_dynamics_shape(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        dyn = result.time_dynamics(50)
        assert dyn.shape == (result.n_modes, 50)

    def test_time_dynamics_explicit_times(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        times = np.array([0.0, dt, 5 * dt])
        dyn = result.time_dynamics(times)
        assert dyn.shape == (result.n_modes, 3)

    def test_forecast_longer_than_training(self):
        data, dt = make_multiscale_signal(noise=0.0)
        result = compute_dmd(data, dt, amplitude_method="window")
        forecast = result.reconstruct(data.shape[1] + 100)
        assert forecast.shape == (data.shape[0], data.shape[1] + 100)
        assert np.all(np.isfinite(forecast))

    def test_mode_subset_bool_mask(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        mask = np.zeros(result.n_modes, dtype=bool)
        mask[:1] = True
        subset = result.mode_subset(mask)
        assert subset.n_modes == 1
        assert subset.n_features == result.n_features

    def test_mode_subset_index_array(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        subset = result.mode_subset(np.array([0]))
        assert subset.n_modes == 1


class TestSlowModeMask:
    def test_slow_mask_selects_low_frequencies(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        mask = slow_mode_mask(result, rho=0.1)
        assert np.all(result.frequencies[mask] <= 0.1)
        assert np.all(result.frequencies[~mask] > 0.1)

    def test_rho_zero_keeps_only_nonoscillating(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        mask = slow_mode_mask(result, rho=0.0)
        assert np.all(result.frequencies[mask] == 0.0)

    def test_negative_rho_rejected(self):
        data, dt = make_multiscale_signal()
        result = compute_dmd(data, dt)
        with pytest.raises(ValueError):
            slow_mode_mask(result, rho=-1.0)

"""Unit tests for the incremental SVD (repro.core.isvd)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.isvd import IncrementalSVD, ISVDState, blockwise_rotate


def low_rank_matrix(n_rows: int, n_cols: int, rank: int, seed: int = 0, noise: float = 0.0) -> np.ndarray:
    gen = np.random.default_rng(seed)
    x = gen.standard_normal((n_rows, rank)) @ gen.standard_normal((rank, n_cols))
    if noise:
        x = x + noise * gen.standard_normal((n_rows, n_cols))
    return x


class TestInitialization:
    def test_initialize_matches_batch_svd(self):
        x = low_rank_matrix(30, 40, 4)
        isvd = IncrementalSVD(rank=4, use_svht=False)
        isvd.initialize(x)
        s_exact = np.linalg.svd(x, compute_uv=False)
        assert np.allclose(isvd.s, s_exact[:4], rtol=1e-10)

    def test_uninitialized_access_raises(self):
        isvd = IncrementalSVD(rank=2)
        with pytest.raises(RuntimeError):
            _ = isvd.s
        with pytest.raises(RuntimeError):
            _ = isvd.state

    def test_update_before_initialize_falls_back(self):
        x = low_rank_matrix(10, 12, 2)
        isvd = IncrementalSVD(rank=2, use_svht=False)
        isvd.update(x)
        assert isvd.initialized
        assert isvd.n_columns == 12

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            IncrementalSVD(rank=0)
        with pytest.raises(ValueError):
            IncrementalSVD(max_rank_cap=0)
        with pytest.raises(ValueError):
            IncrementalSVD(reorthogonalize_every=-1)

    def test_1d_initial_block_rejected_when_empty(self):
        isvd = IncrementalSVD(rank=2)
        with pytest.raises(ValueError):
            isvd.initialize(np.zeros((3, 0)))


class TestUpdates:
    def test_single_column_update_tracks_exact_svd(self):
        x = low_rank_matrix(20, 30, 3, noise=0.001)
        isvd = IncrementalSVD(rank=6, use_svht=False)
        isvd.initialize(x[:, :10])
        for j in range(10, 30):
            isvd.update(x[:, j])
        s_exact = np.linalg.svd(x, compute_uv=False)
        assert np.allclose(isvd.s[:3], s_exact[:3], rtol=1e-3)

    def test_block_update_tracks_exact_svd(self):
        x = low_rank_matrix(25, 60, 4, noise=0.01)
        isvd = IncrementalSVD(rank=8, use_svht=False)
        isvd.initialize(x[:, :20])
        isvd.update(x[:, 20:40])
        isvd.update(x[:, 40:])
        s_exact = np.linalg.svd(x, compute_uv=False)
        assert np.allclose(isvd.s[:4], s_exact[:4], rtol=1e-3)

    def test_wide_update_block_larger_than_row_count(self):
        x = low_rank_matrix(8, 200, 3, noise=0.01)
        isvd = IncrementalSVD(rank=5, use_svht=False)
        isvd.initialize(x[:, :20])
        isvd.update(x[:, 20:])          # update block wider than P=8
        s_exact = np.linalg.svd(x, compute_uv=False)
        assert np.allclose(isvd.s[:3], s_exact[:3], rtol=1e-3)

    def test_reconstruction_error_small_for_low_rank_data(self):
        x = low_rank_matrix(30, 80, 3)
        isvd = IncrementalSVD(rank=3, use_svht=False)
        isvd.initialize(x[:, :30])
        isvd.update(x[:, 30:])
        assert isvd.reconstruction_error(x) < 1e-6 * np.linalg.norm(x)

    def test_left_basis_stays_orthonormal(self):
        x = low_rank_matrix(20, 120, 4, noise=0.05)
        isvd = IncrementalSVD(rank=6, use_svht=False, reorthogonalize_every=4)
        isvd.initialize(x[:, :20])
        for lo in range(20, 120, 10):
            isvd.update(x[:, lo : lo + 10])
        gram = isvd.u.T @ isvd.u
        assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8)

    def test_singular_values_nonincreasing(self):
        x = low_rank_matrix(15, 60, 5, noise=0.1)
        isvd = IncrementalSVD(rank=8, use_svht=False)
        isvd.initialize(x[:, :20])
        isvd.update(x[:, 20:])
        assert np.all(np.diff(isvd.s) <= 1e-12)

    def test_empty_update_is_noop(self):
        x = low_rank_matrix(10, 20, 2)
        isvd = IncrementalSVD(rank=2, use_svht=False)
        isvd.initialize(x)
        before = isvd.s.copy()
        isvd.update(np.zeros((10, 0)))
        assert np.allclose(isvd.s, before)
        assert isvd.n_columns == 20

    def test_row_mismatch_rejected(self):
        isvd = IncrementalSVD(rank=2, use_svht=False)
        isvd.initialize(low_rank_matrix(10, 20, 2))
        with pytest.raises(ValueError):
            isvd.update(np.zeros((5, 3)))

    def test_rank_capped_by_max_rank_cap(self):
        x = np.random.default_rng(3).standard_normal((30, 100))
        isvd = IncrementalSVD(rank=None, use_svht=False, max_rank_cap=7)
        isvd.initialize(x[:, :50])
        isvd.update(x[:, 50:])
        assert isvd.current_rank <= 7

    def test_partial_fit_alias(self):
        x = low_rank_matrix(10, 30, 2)
        isvd = IncrementalSVD(rank=2, use_svht=False)
        isvd.partial_fit(x[:, :10])
        isvd.partial_fit(x[:, 10:])
        assert isvd.n_columns == 30

    def test_svht_mode_tracks_rank_of_noisy_low_rank_data(self):
        x = low_rank_matrix(60, 200, 3, noise=0.01, seed=7) * 10
        isvd = IncrementalSVD(rank=None, use_svht=True, max_rank_cap=32)
        isvd.initialize(x[:, :80])
        isvd.update(x[:, 80:])
        assert 3 <= isvd.current_rank <= 8


class TestStateAndFactors:
    def test_state_shapes(self):
        x = low_rank_matrix(12, 25, 3)
        isvd = IncrementalSVD(rank=3, use_svht=False)
        isvd.initialize(x)
        state = isvd.state
        assert isinstance(state, ISVDState)
        assert state.u.shape == (12, 3)
        assert state.vh.shape == (3, 25)
        assert state.rank == 3
        assert state.n_rows == 12
        assert state.n_cols == 25

    def test_state_reconstruct(self):
        x = low_rank_matrix(10, 15, 2)
        isvd = IncrementalSVD(rank=2, use_svht=False)
        isvd.initialize(x)
        assert np.allclose(isvd.state.reconstruct(), x, atol=1e-8)

    def test_factors_tuple(self):
        x = low_rank_matrix(10, 15, 2)
        isvd = IncrementalSVD(rank=2, use_svht=False)
        isvd.initialize(x)
        u, s, vh = isvd.factors()
        assert u.shape == (10, 2) and s.shape == (2,) and vh.shape == (2, 15)

    def test_reconstruction_error_shape_mismatch_rejected(self):
        x = low_rank_matrix(10, 15, 2)
        isvd = IncrementalSVD(rank=2, use_svht=False)
        isvd.initialize(x)
        with pytest.raises(ValueError):
            isvd.reconstruction_error(np.zeros((10, 14)))


class TestBlockwiseRotate:
    def test_blockwise_rotation_equals_full_product(self):
        gen = np.random.default_rng(0)
        u = gen.standard_normal((20, 5))
        rotation = gen.standard_normal((5, 5))
        blocks = [u[:7], u[7:14], u[14:]]
        rotated = blockwise_rotate(blocks, rotation)
        assert np.allclose(np.vstack(rotated), u @ rotation)

"""Unit tests for the job-log substrate (repro.joblog)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.joblog import (
    JobLog,
    JobRecord,
    JobRequest,
    SchedulerSimulator,
    WorkloadModel,
    simulate_joblog,
)


def make_record(job_id=0, nodes=(0, 1), start=10, end=50, project="PROJ-000",
                exit_status=0) -> JobRecord:
    return JobRecord(
        job_id=job_id,
        project=project,
        user="user",
        nodes=tuple(nodes),
        submit_step=5,
        start_step=start,
        end_step=end,
        requested_steps=60,
        exit_status=exit_status,
    )


class TestJobRecord:
    def test_basic_properties(self):
        record = make_record()
        assert record.n_nodes == 2
        assert record.duration == 40
        assert record.queued_steps == 5
        assert record.active_at(10)
        assert record.active_at(49)
        assert not record.active_at(50)
        assert not record.active_at(5)

    def test_running_job_has_no_duration(self):
        record = JobRecord(
            job_id=1, project="p", user="u", nodes=(0,), submit_step=0,
            start_step=0, end_step=None, requested_steps=10,
        )
        assert record.duration is None
        assert record.active_at(10_000)


class TestJobLog:
    def test_queries(self):
        log = JobLog([
            make_record(0, nodes=(0, 1), project="A"),
            make_record(1, nodes=(2,), project="B", exit_status=1),
            make_record(2, nodes=(1, 3), project="A", start=60, end=80),
        ])
        assert len(log) == 3
        assert log.projects() == ["A", "B"]
        assert len(log.jobs_for_project("A")) == 2
        assert len(log.jobs_on_node(1)) == 2
        assert len(log.active_jobs(15)) == 2
        assert log.nodes_for_projects(["A"]).tolist() == [0, 1, 3]
        assert len(log.failed_jobs()) == 1

    def test_utilization_matrix(self):
        log = JobLog([make_record(0, nodes=(0, 2), start=10, end=20)])
        util = log.utilization_matrix(4, 30)
        assert util.shape == (4, 30)
        assert util[0, 10:20].all() and util[2, 10:20].all()
        assert util[1].sum() == 0
        assert util[0, :10].sum() == 0 and util[0, 20:].sum() == 0
        with pytest.raises(ValueError):
            log.utilization_matrix(0, 30)

    def test_node_hours(self):
        log = JobLog([make_record(0, nodes=(0,), start=0, end=240)])
        hours = log.node_hours(2, dt_seconds=15.0, n_timesteps=240)
        assert hours[0] == pytest.approx(1.0)
        assert hours[1] == 0.0

    def test_summary(self):
        empty = JobLog()
        assert empty.summary()["n_jobs"] == 0
        log = JobLog([make_record(), make_record(1, exit_status=1)])
        summary = log.summary()
        assert summary["n_jobs"] == 2
        assert summary["failure_rate"] == pytest.approx(0.5)


class TestWorkloadModel:
    def test_generates_requests_within_bounds(self):
        model = WorkloadModel(100, seed=0, submit_rate=0.2)
        requests = model.generate_requests(500)
        assert len(requests) > 0
        for req in requests:
            assert 1 <= req.n_nodes <= 100
            assert 0 <= req.submit_step < 500
            assert req.requested_steps >= 8
            assert req.project in model.project_names()

    def test_determinism(self):
        a = WorkloadModel(50, seed=3).generate_requests(300)
        b = WorkloadModel(50, seed=3).generate_requests(300)
        assert [(r.job_id, r.submit_step, r.n_nodes) for r in a] == [
            (r.job_id, r.submit_step, r.n_nodes) for r in b
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadModel(0)
        with pytest.raises(ValueError):
            WorkloadModel(10, submit_rate=0.0)
        with pytest.raises(ValueError):
            WorkloadModel(10).generate_requests(0)


class TestScheduler:
    def test_no_node_oversubscription(self):
        log = simulate_joblog(30, 800, seed=7, submit_rate=0.3, mean_nodes=8)
        util_by_job = np.zeros((30, 800), dtype=int)
        for record in log:
            end = record.end_step if record.end_step is not None else 800
            for node in record.nodes:
                util_by_job[node, record.start_step:end] += 1
        assert util_by_job.max() <= 1

    def test_jobs_start_after_submission(self):
        log = simulate_joblog(20, 500, seed=1, submit_rate=0.2)
        for record in log:
            assert record.start_step >= record.submit_step

    def test_contiguous_placement_preferred(self):
        simulator = SchedulerSimulator(50, seed=0)
        requests = [JobRequest(job_id=0, project="p", user="u", n_nodes=10,
                               requested_steps=100, submit_step=0)]
        log = simulator.run(requests, 200)
        nodes = sorted(log[0].nodes)
        assert nodes == list(range(nodes[0], nodes[0] + 10))

    def test_backfill_allows_small_jobs_to_jump(self):
        # Job 0 leaves two nodes free; the head job (job 1) needs the whole
        # machine and must wait for it, so a short 1-node job submitted later
        # should backfill into the free nodes before the head job starts.
        requests = [
            JobRequest(job_id=0, project="p", user="u", n_nodes=6, requested_steps=100, submit_step=0),
            JobRequest(job_id=1, project="p", user="u", n_nodes=8, requested_steps=100, submit_step=1),
            JobRequest(job_id=2, project="p", user="u", n_nodes=1, requested_steps=10, submit_step=2),
        ]
        with_backfill = SchedulerSimulator(8, backfill=True, seed=0).run(list(requests), 400)
        small_started = [r for r in with_backfill if r.job_id == 2]
        head_started = [r for r in with_backfill if r.job_id == 1]
        assert small_started
        if head_started:
            assert small_started[0].start_step <= head_started[0].start_step

    def test_fcfs_vs_backfill_differ_or_match_sensibly(self):
        requests = WorkloadModel(16, seed=5, submit_rate=0.3, mean_nodes=6).generate_requests(300)
        fcfs = SchedulerSimulator(16, backfill=False, seed=0).run(list(requests), 300)
        easy = SchedulerSimulator(16, backfill=True, seed=0).run(list(requests), 300)
        assert len(easy) >= len(fcfs)

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerSimulator(0)
        with pytest.raises(ValueError):
            SchedulerSimulator(5).run([], 0)

    def test_simulate_joblog_end_to_end(self):
        log = simulate_joblog(64, 1000, seed=2)
        assert len(log) > 0
        summary = log.summary()
        assert summary["mean_nodes"] >= 1
        assert 0.0 <= summary["failure_rate"] <= 0.2

"""Unit tests for baseline selection and z-score analysis (repro.core.baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import (
    BaselineModel,
    BaselineSpec,
    ZScoreCategory,
    classify_zscores,
    compute_zscores,
    select_baseline_mask,
)


class TestBaselineSpec:
    def test_valid_spec(self):
        spec = BaselineSpec(value_range=(46.0, 57.0), time_range=(0, 100))
        assert spec.value_range == (46.0, 57.0)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            BaselineSpec(value_range=(57.0, 46.0))
        with pytest.raises(ValueError):
            BaselineSpec(time_range=(100, 0))
        with pytest.raises(ValueError):
            BaselineSpec(min_fraction=1.5)


class TestSelectBaselineMask:
    def test_value_range_selection(self):
        data = np.array([[45.0, 50.0, 60.0], [55.0, 58.0, 47.0]])
        mask = select_baseline_mask(data, BaselineSpec(value_range=(46.0, 57.0)))
        assert mask.tolist() == [[False, True, False], [True, False, True]]

    def test_time_range_selection(self):
        data = np.ones((2, 5))
        mask = select_baseline_mask(data, BaselineSpec(time_range=(1, 3)))
        assert mask[:, 1:3].all() and not mask[:, 0].any() and not mask[:, 3:].any()

    def test_row_indices_selection(self):
        data = np.ones((3, 4))
        mask = select_baseline_mask(data, BaselineSpec(row_indices=np.array([1])))
        assert mask[1].all() and not mask[0].any() and not mask[2].any()

    def test_conjunction_of_selectors(self):
        data = np.arange(12, dtype=float).reshape(3, 4)
        spec = BaselineSpec(value_range=(4.0, 11.0), time_range=(0, 2), row_indices=np.array([1, 2]))
        mask = select_baseline_mask(data, spec)
        assert mask.sum() == 4  # rows 1-2, cols 0-1, values 4,5,8,9

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            select_baseline_mask(np.ones(5), BaselineSpec())


class TestZScoreFunctions:
    def test_compute_zscores_basic(self):
        z = compute_zscores(np.array([5.0, 10.0]), 5.0, 2.5)
        assert np.allclose(z, [0.0, 2.0])

    def test_compute_zscores_std_floor(self):
        z = compute_zscores(np.array([1.0]), 0.0, 0.0, std_floor=0.5)
        assert z[0] == pytest.approx(2.0)

    def test_classification_thresholds(self):
        z = np.array([-3.0, -1.7, 0.0, 1.7, 3.0])
        cats = classify_zscores(z)
        assert cats.tolist() == [
            ZScoreCategory.VERY_LOW,
            ZScoreCategory.LOW,
            ZScoreCategory.BASELINE,
            ZScoreCategory.ELEVATED,
            ZScoreCategory.VERY_HIGH,
        ]

    def test_classification_boundary_values(self):
        cats = classify_zscores(np.array([1.5, -1.5, 2.0, -2.0]))
        assert cats[0] is ZScoreCategory.BASELINE
        assert cats[1] is ZScoreCategory.BASELINE
        assert cats[2] is ZScoreCategory.ELEVATED
        assert cats[3] is ZScoreCategory.LOW

    def test_classification_invalid_thresholds(self):
        with pytest.raises(ValueError):
            classify_zscores(np.zeros(3), near=2.0, extreme=1.0)
        with pytest.raises(ValueError):
            classify_zscores(np.zeros(3), near=0.0)


class TestBaselineModel:
    def make_data(self):
        gen = np.random.default_rng(0)
        data = 50.0 + gen.standard_normal((20, 200))
        data[3] += 15.0     # hot row
        data[7] -= 15.0     # cold row
        return data

    def test_from_data_flags_hot_and_cold_rows(self):
        data = self.make_data()
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
        result = model.score(data)
        assert result.categories[3] is ZScoreCategory.VERY_HIGH
        assert result.categories[7] is ZScoreCategory.VERY_LOW
        assert result.categories[0] is ZScoreCategory.BASELINE

    def test_result_helpers(self):
        data = self.make_data()
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
        result = model.score(data)
        assert 3 in result.hot_rows()
        assert 7 in result.cold_rows()
        assert len(result.baseline_rows()) >= 15
        counts = result.counts()
        assert sum(counts.values()) == 20
        assert 0.0 < result.fraction_outside_baseline() < 0.5

    def test_rows_without_baseline_samples_fall_back_to_global(self):
        data = self.make_data()
        # Row 3 is entirely outside the band; it must still get finite stats.
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
        assert np.all(np.isfinite(model.mean))
        assert np.all(model.std > 0)

    def test_score_reducers(self):
        data = self.make_data()
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
        for reducer in ("mean", "max", "median", "last"):
            result = model.score(data, reducer=reducer)
            assert result.zscores.shape == (20,)
        with pytest.raises(ValueError):
            model.score(data, reducer="nope")

    def test_score_time_range(self):
        data = self.make_data()
        data[5, 100:] += 20.0    # becomes hot only in the second half
        model = BaselineModel.from_data(data[:, :100], BaselineSpec(value_range=(46.0, 54.0)))
        first = model.score(data, time_range=(0, 100))
        second = model.score(data, time_range=(100, 200))
        assert first.categories[5] is ZScoreCategory.BASELINE
        assert second.categories[5] is ZScoreCategory.VERY_HIGH
        with pytest.raises(ValueError):
            model.score(data, time_range=(300, 400))

    def test_score_vector_input(self):
        data = self.make_data()
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
        result = model.score(data.mean(axis=1))
        assert result.zscores.shape == (20,)
        with pytest.raises(ValueError):
            model.score(np.zeros((2, 2, 2)))

    def test_score_values_shape_check(self):
        data = self.make_data()
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(46.0, 54.0)))
        with pytest.raises(ValueError):
            model.score_values(np.zeros(5))

    def test_from_reference_rows(self):
        data = self.make_data()
        model = BaselineModel.from_reference_rows(data, np.array([0, 1, 2]))
        result = model.score(data)
        assert result.categories[3] is ZScoreCategory.VERY_HIGH
        with pytest.raises(ValueError):
            BaselineModel.from_reference_rows(data, np.array([], dtype=int))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BaselineModel(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            BaselineModel(np.zeros(3), -np.ones(3))

    def test_custom_thresholds_propagate(self):
        data = self.make_data()
        model = BaselineModel.from_data(
            data, BaselineSpec(value_range=(46.0, 54.0)), near=1.0, extreme=3.0
        )
        result = model.score(data)
        assert result.near == 1.0 and result.extreme == 3.0

    def test_no_baseline_samples_at_all(self):
        data = np.full((4, 10), 100.0)
        model = BaselineModel.from_data(data, BaselineSpec(value_range=(0.0, 1.0)))
        result = model.score(data)
        assert np.all(np.isfinite(result.zscores))

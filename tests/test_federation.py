"""Federation layer: registry, routing, federated products, checkpoints.

The central properties, mirroring the ISSUE acceptance criteria:

* a :class:`FederatedMonitor` over N machines produces per-machine
  products **bit-for-bit identical** to N standalone
  :class:`FleetMonitor` instances fed the same chunks, across
  serial/thread/process fan-out backends;
* a rotated federated checkpoint restores and resumes bit-for-bit;
* alerts are machine-stamped, deduplicated across the federation, and
  :class:`FleetWideRule` fires exactly when >= k machines drift within a
  window — a condition no per-machine rule can express.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.core.imrdmd import UpdateRecord
from repro.federation import (
    AlertRouter,
    FederatedAlertContext,
    FederatedMonitor,
    FleetWideRule,
    MachineRegistry,
    get_federated_scenario,
    load_federated_checkpoint,
    read_federated_manifest,
    save_federated_checkpoint,
)
from repro.pipeline import PipelineConfig
from repro.service import (
    Alert,
    AlertEngine,
    AlertSeverity,
    FleetMonitor,
    RackSharding,
    RingBufferSink,
    ZScoreRule,
    default_rules,
    list_checkpoints,
    save_checkpoint,
)
from repro.telemetry import HotNodes, MachineDescription, TelemetryGenerator
from repro.telemetry.sensors import xc40_sensor_suite


CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=4),
    baseline_range=(40.0, 75.0),
    power_quantile=0.0,
)
TOTAL, INITIAL = 360, 200
CHUNKS = ((200, 280), (280, 360))


def small_machine() -> MachineDescription:
    """16 nodes in 2 racks — big enough to shard, small enough to be fast."""
    return MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=2,
        cabinets_per_rack=1,
        slots_per_cabinet=2,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )


@pytest.fixture(scope="module")
def streams():
    """Two machines' telemetry; 'west' runs nodes 2-3 hot (alerts fire)."""
    machine = small_machine()
    east = TelemetryGenerator(machine, seed=5, utilization_target=0.3).generate(
        TOTAL, sensors=["cpu_temp"]
    )
    west = TelemetryGenerator(machine, seed=6, utilization_target=0.3).generate(
        TOTAL,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(2, 3), start=220, delta=40.0)],
    )
    return {"east": east, "west": west}


def build_machine(stream, *, executor=None, cooldown=100) -> FleetMonitor:
    engine = AlertEngine(rules=default_rules(), cooldown=cooldown)
    return FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        alert_engine=engine,
        executor=executor,
    )


def build_federated(streams, *, executor=None, machine_executor=None) -> FederatedMonitor:
    registry = MachineRegistry(
        {name: build_machine(s, executor=machine_executor) for name, s in streams.items()}
    )
    return FederatedMonitor(
        registry,
        router=AlertRouter(fleet_rules=[FleetWideRule(min_machines=2)]),
        executor=executor,
    )


def drive(federated: FederatedMonitor, streams) -> list[Alert]:
    federated.ingest({n: s.values[:, :INITIAL] for n, s in streams.items()})
    alerts = []
    for lo, hi in CHUNKS:
        _, fired = federated.ingest_and_alert(
            {n: s.values[:, lo:hi] for n, s in streams.items()}
        )
        alerts.extend(fired)
    return alerts


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_registry_register_deregister(streams):
    registry = MachineRegistry()
    monitor = build_machine(streams["east"])
    assert registry.register("east", monitor) is monitor
    assert registry.names == ("east",)
    assert "east" in registry and registry["east"] is monitor
    version = registry.version
    returned = registry.deregister("east")
    assert returned is monitor
    assert len(registry) == 0
    assert registry.version > version


def test_registry_rejects_bad_names_and_duplicates(streams):
    registry = MachineRegistry()
    monitor = build_machine(streams["east"])
    for bad in ("", "a/b", "-lead", ".hidden", "sp ace"):
        with pytest.raises(ValueError, match="invalid machine name"):
            registry.register(bad, monitor)
    registry.register("east", monitor)
    with pytest.raises(ValueError, match="already registered"):
        registry.register("east", monitor)
    with pytest.raises(TypeError, match="FleetMonitor"):
        registry.register("west", object())
    with pytest.raises(KeyError):
        registry.deregister("nope")


# --------------------------------------------------------------------------- #
# Router + FleetWideRule
# --------------------------------------------------------------------------- #
def make_update(drift: float, stale: bool) -> UpdateRecord:
    return UpdateRecord(
        chunk_size=10, total_snapshots=100, level1_rank=3, level1_modes=2,
        drift=drift, stale=stale, new_nodes=4,
    )


def zalert(step: int, node: int) -> Alert:
    return Alert(
        rule="zscore", severity=AlertSeverity.CRITICAL, step=step,
        node=node, shard_id="rack-0", message=f"node {node} hot",
    )


def ctx(step: int, updates=None, window: int = 100) -> FederatedAlertContext:
    return FederatedAlertContext(step=step, updates=updates or {}, window=window)


def test_router_stamps_machine_origin():
    router = AlertRouter(fleet_rules=(), cooldown=0)
    routed = router.route({"east": [zalert(10, 1)], "west": [zalert(10, 1)]}, ctx(10))
    assert [(a.machine, a.node) for a in routed] == [("east", 1), ("west", 1)]


def test_router_dedups_per_machine_not_across():
    """The same (rule, shard, node) on two machines is two distinct alerts;
    a repeat from the *same* machine within the cooldown is suppressed."""
    router = AlertRouter(fleet_rules=(), cooldown=50)
    first = router.route({"east": [zalert(10, 1)], "west": [zalert(10, 1)]}, ctx(10))
    assert len(first) == 2
    again = router.route({"east": [zalert(30, 1)], "west": []}, ctx(30))
    assert again == []
    assert router.stats["suppressed"] == 1
    later = router.route({"east": [zalert(70, 1)], "west": []}, ctx(70))
    assert len(later) == 1


def test_router_sinks_global_and_per_machine():
    global_sink, east_sink = RingBufferSink(), RingBufferSink()
    router = AlertRouter(
        sinks=[global_sink], machine_sinks={"east": [east_sink]},
        fleet_rules=(), cooldown=0,
    )
    router.route({"east": [zalert(10, 1)], "west": [zalert(10, 2)]}, ctx(10))
    assert len(global_sink) == 2
    assert [a.machine for a in east_sink.alerts] == ["east"]


def test_fleet_wide_rule_needs_k_machines():
    rule = FleetWideRule(min_machines=2)
    one = rule.evaluate(ctx(100, {"east": {"rack-0": make_update(9.0, True)}}))
    assert one == []
    both = rule.evaluate(ctx(110, {
        "east": {"rack-0": make_update(0.1, False)},
        "west": {"rack-0": make_update(9.0, True)},
    }))
    assert len(both) == 1
    assert both[0].rule == "fleet-wide-drift"
    assert both[0].machine is None, "fleet-wide alerts span machines"
    assert both[0].value == pytest.approx(2.0)
    assert "east" in both[0].message and "west" in both[0].message


def test_fleet_wide_rule_window_expires():
    rule = FleetWideRule(min_machines=2, window=50)
    rule.evaluate(ctx(100, {"east": {"s": make_update(9.0, True)}, "west": {}}))
    # 60 steps later, east's drift has aged out: west alone is not enough.
    assert rule.evaluate(
        ctx(160, {"west": {"s": make_update(9.0, True)}, "east": {}})
    ) == []
    # But a re-drift within the window counts both.
    fired = rule.evaluate(
        ctx(170, {"east": {"s": make_update(9.0, True)}, "west": {}})
    )
    assert len(fired) == 1


def test_fleet_wide_rule_forgets_deregistered_machines():
    """A machine absent from a round has left the federation; its past
    drift must stop counting toward the burst threshold."""
    rule = FleetWideRule(min_machines=2, window=200)
    rule.evaluate(ctx(100, {"east": {"s": make_update(9.0, True)}, "west": {}}))
    # east is deregistered; west drifting alone must not complete a pair
    # with the departed machine's memory.
    assert rule.evaluate(ctx(110, {"west": {"s": make_update(9.0, True)}})) == []


def test_fleet_wide_rule_threshold():
    rule = FleetWideRule(min_machines=1, threshold=0.5)
    assert rule.evaluate(ctx(10, {"east": {"s": make_update(0.4, False)}})) == []
    assert len(rule.evaluate(ctx(20, {"east": {"s": make_update(0.6, False)}}))) == 1


def test_router_state_round_trip():
    router = AlertRouter(fleet_rules=[FleetWideRule(min_machines=2)], cooldown=50)
    router.route(
        {"east": [zalert(100, 1)]},
        ctx(100, {"east": {"s": make_update(9.0, True)}}),
    )
    fresh = AlertRouter(fleet_rules=[FleetWideRule(min_machines=2)], cooldown=0)
    fresh.load_state_dict(router.state_dict())
    assert fresh.cooldown == 50
    # Restored dedup memory keeps suppressing within the cooldown...
    assert fresh.route(
        {"east": [zalert(120, 1)]}, ctx(120, {"east": {}, "west": {}})
    ) == []
    # ...and the restored fleet rule remembers east's drift: west alone
    # completes the pair.
    fired = fresh.route(
        {}, ctx(130, {"west": {"s": make_update(9.0, True)}, "east": {}})
    )
    assert [a.rule for a in fired] == ["fleet-wide-drift"]


# --------------------------------------------------------------------------- #
# Federated monitor: products + parity with standalone monitors
# --------------------------------------------------------------------------- #
def test_federated_matches_standalone_machines(streams):
    """ISSUE acceptance: federated per-machine products are bit-for-bit
    what N standalone monitors produce from the same chunks."""
    federated = build_federated(streams)
    drive(federated, streams)

    standalone = {}
    for name, stream in streams.items():
        monitor = build_machine(stream)
        monitor.ingest(stream.values[:, :INITIAL])
        for lo, hi in CHUNKS:
            monitor.ingest_and_alert(stream.values[:, lo:hi])
        standalone[name] = monitor

    rack = federated.rack_values()
    spectrum = federated.fleet_spectrum()
    by_shard = spectrum.total_power_by_shard()
    for name, monitor in standalone.items():
        assert rack[name] == monitor.rack_values()
        solo_scores = monitor.node_zscores()
        fed_scores = federated.node_zscores()[name]
        assert np.array_equal(solo_scores.zscores, fed_scores.zscores)
        for shard_id, power in monitor.fleet_spectrum().total_power_by_shard().items():
            assert by_shard[f"{name}/{shard_id}"] == power


def test_federated_snapshot_merges_drift(streams):
    federated = build_federated(streams)
    federated.ingest({n: s.values[:, :INITIAL] for n, s in streams.items()})
    snapshot, _ = federated.ingest_and_alert(
        {n: s.values[:, CHUNKS[0][0]:CHUNKS[0][1]] for n, s in streams.items()}
    )
    assert set(snapshot.drift_by_machine) == {"east", "west"}
    assert snapshot.max_drift == max(snapshot.drift_by_machine.values())
    assert snapshot.step == CHUNKS[0][1]
    assert snapshot.total_modes > 0


def test_federated_alerts_are_machine_stamped(streams):
    federated = build_federated(streams)
    alerts = drive(federated, streams)
    assert alerts, "the hot-node machine must alert"
    assert {a.machine for a in alerts if a.rule == "zscore"} == {"west"}


def test_zscore_map_keys(streams):
    federated = build_federated(streams)
    drive(federated, streams)
    zmap = federated.zscore_map()
    n_nodes = small_machine().n_nodes
    assert len(zmap) == 2 * n_nodes
    assert f"east/0" in zmap and f"west/{n_nodes - 1}" in zmap
    assert zmap["west/2"] == federated.rack_values()["west"][2]


def test_ingest_validates_machine_set(streams):
    federated = build_federated(streams)
    # Rounds may be partial (staggered federation): a subset ingests and
    # only those machines advance.
    snapshot = federated.ingest({"east": streams["east"].values[:, :INITIAL]})
    assert snapshot.n_machines == 1
    assert federated.machine_steps() == {"east": INITIAL, "west": 0}
    with pytest.raises(ValueError, match="at least one machine"):
        federated.ingest({})
    with pytest.raises(ValueError, match="unknown machines \\['north'\\]"):
        federated.ingest(
            {
                "east": streams["east"].values[:, :INITIAL],
                "west": streams["west"].values[:, :INITIAL],
                "north": streams["east"].values[:, :INITIAL],
            }
        )
    with pytest.raises(ValueError, match="unknown machines"):
        federated.ingest_and_alert(
            {n: s.values[:, :INITIAL] for n, s in streams.items()},
            hwlogs={"nope": None},
        )


def test_membership_change_rebuilds_fanout(streams):
    """Register/deregister between rounds: the pool follows the registry."""
    registry = MachineRegistry({"east": build_machine(streams["east"])})
    federated = FederatedMonitor(registry, executor="thread")
    federated.ingest({"east": streams["east"].values[:, :INITIAL]})
    registry.register("west", build_machine(streams["west"]))
    snapshot = federated.ingest(
        {
            "east": streams["east"].values[:, INITIAL:280],
            "west": streams["west"].values[:, :280],
        }
    )
    assert set(snapshot.machine_snapshots) == {"east", "west"}
    registry.deregister("west")
    snapshot = federated.ingest({"east": streams["east"].values[:, 280:360]})
    assert set(snapshot.machine_snapshots) == {"east"}
    federated.close()


# --------------------------------------------------------------------------- #
# Backend parity at the federated level
# --------------------------------------------------------------------------- #
def _run_with_backends(streams, executor, machine_executor=None):
    federated = build_federated(
        streams, executor=executor, machine_executor=machine_executor
    )
    alerts = drive(federated, streams)
    rack = federated.rack_values()
    power = federated.fleet_spectrum().total_power_by_shard()
    federated.close()
    federated.registry.close()
    return rack, [a.to_dict() for a in alerts], power


def test_process_pool_does_not_resurrect_replaced_machine(streams):
    """Re-registering a machine under a name the live process pool still
    holds must not let the replaced machine's resident state clobber the
    fresh monitor when pulled state lands."""
    registry = MachineRegistry({"east": build_machine(streams["east"])})
    federated = FederatedMonitor(registry, executor="process")
    federated.ingest({"east": streams["east"].values[:, :INITIAL]})
    registry.deregister("east")
    fresh = build_machine(streams["east"])
    registry.register("east", fresh)

    # Landing resident state (pull via .machines) must keep the fresh,
    # un-ingested monitor, not the pool's step-INITIAL copy.
    assert federated.machines["east"] is fresh
    assert federated.machines["east"].step == 0
    # The rebuilt pool then serves the fresh machine from step 0.
    snapshot = federated.ingest({"east": streams["east"].values[:, :INITIAL]})
    assert snapshot.machine_snapshots["east"].step == INITIAL
    federated.close()
    registry.close()


def test_backend_parity_serial_thread_process(streams):
    """serial == thread == process fan-out, bit for bit (incl. alerts)."""
    reference = _run_with_backends(streams, None)
    for executor, machine_executor in (
        ("thread", None),
        ("process", None),
        ("serial", "thread"),
    ):
        candidate = _run_with_backends(streams, executor, machine_executor)
        assert candidate[0] == reference[0], (executor, machine_executor)
        assert candidate[1] == reference[1], (executor, machine_executor)
        assert candidate[2] == reference[2], (executor, machine_executor)


# --------------------------------------------------------------------------- #
# Federated checkpoints: rotation + bit-for-bit restore
# --------------------------------------------------------------------------- #
def test_federated_checkpoint_restores_bit_for_bit(streams, tmp_path):
    """Checkpoint after chunk 1, restore, stream chunk 2: every product
    matches the uninterrupted federation exactly — including the router's
    dedup memory (no re-fired alerts)."""
    root = str(tmp_path / "fed")

    # Run A: uninterrupted.
    fed_a = build_federated(streams)
    alerts_a = drive(fed_a, streams)

    # Run B: checkpoint mid-run (rotated), tear down, restore, resume.
    fed_b = build_federated(streams)
    fed_b.ingest({n: s.values[:, :INITIAL] for n, s in streams.items()})
    lo, hi = CHUNKS[0]
    _, fired = fed_b.ingest_and_alert(
        {n: s.values[:, lo:hi] for n, s in streams.items()}
    )
    alerts_b = list(fired)
    info = save_federated_checkpoint(root, fed_b, keep_last=3)
    assert info.step == hi
    assert info.machines == ("east", "west")
    assert info.total_bytes > 0
    fed_b.close()
    fed_b.registry.close()
    del fed_b

    fed_b = load_federated_checkpoint(
        root,
        rules=default_rules(),
        router=AlertRouter(fleet_rules=[FleetWideRule(min_machines=2)]),
    )
    assert fed_b.step == hi
    lo, hi = CHUNKS[1]
    _, fired = fed_b.ingest_and_alert(
        {n: s.values[:, lo:hi] for n, s in streams.items()}
    )
    alerts_b.extend(fired)

    assert [a.to_dict() for a in alerts_b] == [a.to_dict() for a in alerts_a]
    assert fed_b.rack_values() == fed_a.rack_values()
    spec_a, spec_b = fed_a.fleet_spectrum(), fed_b.fleet_spectrum()
    assert np.array_equal(spec_a.power, spec_b.power)
    assert np.array_equal(spec_a.frequencies, spec_b.frequencies)
    assert spec_a.total_power_by_shard() == spec_b.total_power_by_shard()


def test_federated_checkpoint_rotation_prunes(streams, tmp_path):
    root = str(tmp_path / "fed")
    federated = build_federated(streams)
    federated.ingest({n: s.values[:, :INITIAL] for n, s in streams.items()})
    save_federated_checkpoint(root, federated, keep_last=2)
    for lo, hi in CHUNKS:
        federated.ingest_and_alert({n: s.values[:, lo:hi] for n, s in streams.items()})
        save_federated_checkpoint(root, federated, keep_last=2)
    history = list_checkpoints(root)
    assert [entry.step for entry in history] == [CHUNKS[1][1], CHUNKS[0][1]]
    # The pruned initial-fit checkpoint is gone; the newest restores.
    restored = load_federated_checkpoint(root, rules=default_rules())
    assert restored.step == CHUNKS[1][1]


def test_federated_manifest_rejects_single_machine_checkpoint(streams, tmp_path):
    monitor = build_machine(streams["east"])
    monitor.ingest(streams["east"].values[:, :INITIAL])
    save_checkpoint(str(tmp_path / "single"), monitor)
    with pytest.raises(ValueError, match="single-machine"):
        read_federated_manifest(str(tmp_path / "single"))


def test_load_federated_rejects_router_plus_sinks(streams, tmp_path):
    federated = build_federated(streams)
    federated.ingest({n: s.values[:, :INITIAL] for n, s in streams.items()})
    save_federated_checkpoint(str(tmp_path / "fed"), federated)
    with pytest.raises(ValueError, match="not both"):
        load_federated_checkpoint(
            str(tmp_path / "fed"),
            router=AlertRouter(),
            sinks=[RingBufferSink()],
        )


# --------------------------------------------------------------------------- #
# Scenario catalog
# --------------------------------------------------------------------------- #
def test_federated_scenario_catalog_lookup():
    scenario = get_federated_scenario("federated_fleet")  # underscores accepted
    assert scenario.name == "federated-fleet"
    assert scenario.n_machines == 3
    assert scenario.restart_after_chunk == 2
    with pytest.raises(KeyError, match="unknown federated scenario"):
        get_federated_scenario("no-such-federation")

"""Scenario catalog and runner: end-to-end workloads behave as designed."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.service import (
    SCENARIOS,
    RingBufferSink,
    ScenarioRunner,
    get_scenario,
)


def test_catalog_names_and_factories():
    assert set(SCENARIOS) == {
        "quiet-fleet",
        "rack-cooling-failure",
        "noisy-neighbor-job",
        "sensor-dropout",
        "mid-run-restart",
        "mid-run-add-sensors",
        "chaos-fleet",
    }
    for name in SCENARIOS:
        scenario = get_scenario(name)
        assert scenario.name == name
        assert scenario.n_chunks >= 1
        assert scenario.machine.n_racks > 1, "scenarios must exercise sharding"


def test_get_scenario_unknown_name():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("definitely-not-a-scenario")


def test_scenario_streams_are_deterministic():
    a = get_scenario("quiet-fleet").build_stream()
    b = get_scenario("quiet-fleet").build_stream()
    assert (a.values == b.values).all()


@pytest.fixture(scope="module")
def quiet_result():
    return ScenarioRunner(get_scenario("quiet-fleet")).run()


@pytest.fixture(scope="module")
def cooling_result():
    sink = RingBufferSink()
    result = ScenarioRunner(get_scenario("rack-cooling-failure"), sinks=[sink]).run()
    return result, sink


def test_quiet_fleet_is_quiet(quiet_result):
    assert quiet_result.alerts == []
    assert quiet_result.monitor.step == quiet_result.scenario.total_steps
    assert len(quiet_result.rack_values) == quiet_result.scenario.machine.n_nodes


def test_cooling_failure_alerts_on_the_right_rack(cooling_result):
    result, sink = cooling_result
    assert result.alerts, "cooling failure must raise alerts"
    machine = result.scenario.machine
    alerted_racks = {machine.rack_of_node(n) for n in result.alerted_nodes()}
    assert alerted_racks == {1}, "only the degraded rack should alert"
    # Sink saw exactly what the runner collected.
    assert [a.to_dict() for a in sink.alerts] == [a.to_dict() for a in result.alerts]


def test_noisy_neighbor_flags_job_nodes():
    result = ScenarioRunner(get_scenario("noisy-neighbor-job")).run()
    assert result.alerted_nodes() == set(result.scenario.hot_nodes)
    assert result.alerts_for_rule("zscore"), "job nodes must trip the z-score rule"
    assert result.alerts_for_rule("hardware-correlation"), (
        "thermally-correlated hardware events must corroborate the z-scores"
    )


def test_sensor_dropout_stays_calm():
    result = ScenarioRunner(get_scenario("sensor-dropout")).run()
    # The mrDMD reconstruction filters high-frequency spikes; a handful of
    # nodes with persistent faults may still alert, but the fleet must not.
    assert len(result.alerted_nodes()) <= 3


def test_mid_run_restart_matches_uninterrupted(tmp_path):
    """Acceptance criterion: restart mid-stream, resume bit-for-bit."""
    restarted = ScenarioRunner(
        get_scenario("mid-run-restart"), checkpoint_dir=str(tmp_path / "ckpt")
    ).run()
    assert restarted.restarted

    uninterrupted = ScenarioRunner(
        replace(get_scenario("mid-run-restart"), restart_after_chunk=None)
    ).run()
    assert not uninterrupted.restarted

    assert restarted.rack_values == uninterrupted.rack_values
    assert [a.to_dict() for a in restarted.alerts] == [
        a.to_dict() for a in uninterrupted.alerts
    ]


def test_restart_scenario_requires_checkpoint_dir():
    with pytest.raises(ValueError, match="checkpoint_dir"):
        ScenarioRunner(get_scenario("mid-run-restart"))

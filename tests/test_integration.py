"""Integration tests: end-to-end flows across subsystems.

These tests exercise the same paths as the examples and benchmarks, at a
scale small enough for CI: telemetry generation -> streaming I-mrDMD ->
spectrum/baseline analysis -> rack view / alignment, plus the Table I and
Q1/Q2 claims in miniature.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.align import map_zscores_to_nodes
from repro.core import (
    BaselineModel,
    BaselineSpec,
    IncrementalMrDMD,
    MrDMDConfig,
    MrDMDSpectrum,
    compute_mrdmd,
)
from repro.core.reconstruction import evaluate_reconstruction
from repro.hwlog import HardwareEventType
from repro.pipeline import (
    OnlineAnalysisPipeline,
    PipelineConfig,
    build_case_study_1,
    build_case_study_2,
)
from repro.telemetry import StreamingReplay, TelemetryGenerator, theta_machine
from repro.viz import RackLayout, RackView, SpectrumPlot, TimeSeriesView


class TestStreamingEndToEnd:
    def test_replay_through_incremental_model(self):
        machine = theta_machine(racks_per_row=1, n_rows=1, node_limit=32)
        stream = TelemetryGenerator(machine, seed=2).generate(800, sensors=["cpu_temp"])
        replay = StreamingReplay(stream, initial_size=400, chunk_size=200)
        model = IncrementalMrDMD(dt=stream.dt, max_levels=4, keep_data=True)
        model.fit(replay.initial())
        for chunk in replay.chunks():
            model.partial_fit(chunk)
        assert model.n_snapshots == 800
        report = evaluate_reconstruction(model.tree, stream.values)
        assert report.relative < 0.15
        assert report.noise_reduction > 0.0

    def test_incremental_matches_batch_modes_roughly_q2(self):
        machine = theta_machine(racks_per_row=1, n_rows=1, node_limit=24)
        stream = TelemetryGenerator(machine, seed=4).generate(600, sensors=["cpu_temp"])
        config = MrDMDConfig(max_levels=4)
        incremental = IncrementalMrDMD(dt=stream.dt, config=config, keep_data=True)
        incremental.fit(stream.values[:, :300])
        incremental.partial_fit(stream.values[:, 300:])
        batch = compute_mrdmd(stream.values, stream.dt, config)
        err_inc = np.linalg.norm(stream.values - incremental.reconstruct())
        err_batch = np.linalg.norm(stream.values - batch.reconstruct(600))
        # Q2: online accuracy is close to batch accuracy.
        assert err_inc <= 1.5 * err_batch + 1e-9

    def test_table1_shape_partial_fit_flat_initial_fit_growing(self):
        """Miniature Table I: initial-fit time grows with T, partial-fit stays flat-ish.

        Wall-clock comparisons are noisy on shared CI machines, so the sizes
        are far apart (8x), each measurement is the best of three runs, and
        the growth assertion carries a generous tolerance.
        """
        machine = theta_machine(racks_per_row=1, n_rows=1, node_limit=64)
        generator = TelemetryGenerator(machine, seed=6)
        config = MrDMDConfig(max_levels=5)
        initial_times, partial_times = [], []
        for total in (1000, 8000):
            data = generator.generate_matrix(64, total + 500)
            best_initial, best_partial = np.inf, np.inf
            for _ in range(3):
                model = IncrementalMrDMD(dt=machine.dt_seconds, config=config)
                t0 = time.perf_counter()
                model.fit(data[:, :total])
                best_initial = min(best_initial, time.perf_counter() - t0)
                t0 = time.perf_counter()
                model.partial_fit(data[:, total:])
                best_partial = min(best_partial, time.perf_counter() - t0)
            initial_times.append(best_initial)
            partial_times.append(best_partial)
        assert initial_times[1] > 1.2 * initial_times[0]
        # Partial fit does not blow up with history length (generous factor
        # to keep CI timing noise from flaking the test).
        assert partial_times[1] < initial_times[1]


class TestCaseStudy1EndToEnd:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_case_study_1(scale=0.05, n_timesteps=800, initial_steps=400)

    @pytest.fixture(scope="class")
    def pipeline(self, scenario):
        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=5),
            baseline_range=scenario.baseline_range,
            frequency_range=(0.0, 60.0),
        )
        pipe = OnlineAnalysisPipeline.from_stream(scenario.stream, config)
        pipe.ingest(scenario.initial_block())
        pipe.ingest(scenario.streaming_block())
        return pipe

    def test_hot_node_recall(self, scenario, pipeline):
        detected = set(int(n) for n in pipeline.node_zscores().hot_nodes())
        injected = set(int(n) for n in scenario.hot_nodes)
        recall = len(detected & injected) / len(injected)
        assert recall >= 0.8

    def test_reconstruction_denoises(self, scenario, pipeline):
        report = pipeline.reconstruction_report(scenario.stream.values)
        assert report.noise_reduction > 0.2
        assert report.relative < 0.1

    def test_rack_view_renders_with_memory_error_outlines(self, scenario, pipeline, tmp_path):
        node_scores = pipeline.node_zscores()
        memory_nodes = scenario.hwlog.nodes_with(HardwareEventType.CORRECTABLE_MEMORY_ERROR)
        layout = RackLayout.from_machine(scenario.machine)
        view = RackView(layout, title="integration")
        path = view.save_svg(
            str(tmp_path / "case1.svg"),
            node_scores.as_dict(),
            outlined_nodes=[int(n) for n in memory_nodes],
        )
        content = (tmp_path / "case1.svg").read_text()
        assert content.count("<rect") >= scenario.machine.n_nodes

    def test_fig3_and_fig5_artifacts(self, scenario, pipeline, tmp_path):
        recon = pipeline.reconstruction()
        TimeSeriesView().save_svg(
            str(tmp_path / "fig3.svg"),
            {"actual": scenario.stream.values[0], "reconstructed": recon[0]},
        )
        SpectrumPlot().save_svg(str(tmp_path / "fig5.svg"), pipeline.spectrum(label="case 1"))
        assert (tmp_path / "fig3.svg").exists()
        assert (tmp_path / "fig5.svg").exists()

    def test_alignment_report_references_both_logs(self, scenario, pipeline):
        report = pipeline.alignment_report(hwlog=scenario.hwlog, joblog=scenario.joblog)
        assert report.hardware is not None and report.jobs is not None
        text = report.render()
        assert "hardware correlation" in text


class TestCaseStudy2EndToEnd:
    def test_hot_then_cool_windows(self):
        scenario = build_case_study_2(scale=0.03, n_timesteps=640)
        stream = scenario.stream
        half = scenario.initial_steps
        config = PipelineConfig(mrdmd=MrDMDConfig(max_levels=5),
                                baseline_range=scenario.window_baselines[0])
        pipeline = OnlineAnalysisPipeline.from_stream(stream, config)
        pipeline.ingest(stream.values[:, :half])
        pipeline.ingest(stream.values[:, half:])
        recon = pipeline.reconstruction()

        hot_window = recon[:, :half]
        cool_window = recon[:, half:]
        assert hot_window.mean() > cool_window.mean()

        # Score each window against its own baseline band (paper's protocol).
        frac_out = []
        for window, band in zip((hot_window, cool_window), scenario.window_baselines):
            model = BaselineModel.from_data(window, BaselineSpec(value_range=band))
            scores = model.score(window)
            node_scores = map_zscores_to_nodes(scores, stream.node_indices)
            frac_out.append(float(np.mean(node_scores.zscores > 2.0)))
        # The paper's Fig. 6(a) shows the hot window significantly above its
        # baselines while the cool window sits much closer to its own band.
        assert frac_out[0] > frac_out[1]
        assert frac_out[1] < 0.9

    def test_spectrum_labels_for_overlay(self):
        scenario = build_case_study_2(scale=0.03, n_timesteps=480)
        stream = scenario.stream
        half = scenario.initial_steps
        hot_tree = compute_mrdmd(stream.values[:, :half], stream.dt, MrDMDConfig(max_levels=4))
        cool_tree = compute_mrdmd(stream.values[:, half:], stream.dt, MrDMDConfig(max_levels=4))
        hot_spec = MrDMDSpectrum(hot_tree, label="hot")
        cool_spec = MrDMDSpectrum(cool_tree, label="cool")
        svg = SpectrumPlot().render_svg([hot_spec, cool_spec], title="Fig 7")
        assert "hot" in svg and "cool" in svg

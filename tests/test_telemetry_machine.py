"""Unit tests for machine descriptions and sensors (repro.telemetry.machine / sensors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.machine import MachineDescription, polaris_machine, theta_machine
from repro.telemetry.sensors import SensorKind, SensorSpec, gpu_sensor_suite, xc40_sensor_suite


class TestSensorSuites:
    def test_xc40_suite_has_four_temperature_channels(self):
        suite = xc40_sensor_suite()
        temps = [s for s in suite if s.kind is SensorKind.TEMPERATURE]
        assert len(temps) == 4                 # "four readings of each type per node"
        assert any(s.name == "cpu_temp" for s in suite)

    def test_gpu_suite_has_four_gpu_temperatures(self):
        suite = gpu_sensor_suite()
        gpu_temps = [s for s in suite if s.name.startswith("gpu") and s.name.endswith("_temp")]
        assert len(gpu_temps) == 4             # four A100s per Polaris node

    def test_sensor_spec_validation(self):
        with pytest.raises(ValueError):
            SensorSpec(name="x", kind=SensorKind.TEMPERATURE, unit="degC", nominal=1.0, noise_std=-1.0)


class TestThetaMachine:
    def test_full_scale_matches_paper(self):
        theta = theta_machine()
        assert theta.n_racks == 24
        assert theta.n_nodes == 4392
        assert theta.dt_seconds == 15.0
        assert theta.n_sensors_per_node == len(xc40_sensor_suite())

    def test_node_limit_caps_population(self):
        theta = theta_machine(racks_per_row=2, node_limit=100)
        assert theta.n_nodes == 100
        assert theta.capacity >= 100

    def test_node_locations_and_names(self):
        theta = theta_machine(racks_per_row=1, n_rows=1, node_limit=10)
        locations = theta.node_locations()
        assert len(locations) == 10
        names = theta.node_names()
        assert len(set(names)) == 10
        assert names[0].startswith("c0-0")

    def test_rack_of_node(self):
        theta = theta_machine(racks_per_row=2, node_limit=None)
        assert theta.rack_of_node(0) == 0
        assert theta.rack_of_node(theta.nodes_per_rack) == 1
        with pytest.raises(ValueError):
            theta.rack_of_node(theta.n_nodes)

    def test_layout_spec_grammar(self):
        theta = theta_machine()
        spec = theta.layout_spec()
        assert spec.startswith("xc40 ")
        assert "row0-1:0-11" in spec
        assert "c:0-2" in spec and "s:0-15" in spec and "n:0-3" in spec

    def test_scaled_reduces_rack_count(self):
        theta = theta_machine()
        small = theta.scaled(0.25)
        assert small.n_racks < theta.n_racks
        assert small.n_nodes < theta.n_nodes
        assert small.name == theta.name
        with pytest.raises(ValueError):
            theta.scaled(0.0)


class TestPolarisMachine:
    def test_full_scale(self):
        polaris = polaris_machine()
        assert polaris.n_nodes == 560
        assert polaris.dt_seconds == 3.0
        assert polaris.name == "polaris"

    def test_gpu_sensor_count(self):
        polaris = polaris_machine()
        assert polaris.n_sensors_per_node == len(gpu_sensor_suite())


class TestMachineValidation:
    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            MachineDescription(
                name="bad", n_rows=0, racks_per_row=1, cabinets_per_rack=1,
                slots_per_cabinet=1, blades_per_slot=1, nodes_per_blade=1,
            )
        with pytest.raises(ValueError):
            MachineDescription(
                name="bad", n_rows=1, racks_per_row=1, cabinets_per_rack=1,
                slots_per_cabinet=1, blades_per_slot=1, nodes_per_blade=1,
                node_limit=0,
            )
        with pytest.raises(ValueError):
            MachineDescription(
                name="bad", n_rows=1, racks_per_row=1, cabinets_per_rack=1,
                slots_per_cabinet=1, blades_per_slot=1, nodes_per_blade=1,
                dt_seconds=0.0,
            )

    def test_capacity_formula(self):
        machine = MachineDescription(
            name="m", n_rows=2, racks_per_row=3, cabinets_per_rack=2,
            slots_per_cabinet=4, blades_per_slot=1, nodes_per_blade=2,
        )
        assert machine.nodes_per_rack == 16
        assert machine.capacity == 96
        assert machine.n_nodes == 96

    def test_single_of_everything_layout_spec(self):
        machine = MachineDescription(
            name="mini", n_rows=1, racks_per_row=1, cabinets_per_rack=1,
            slots_per_cabinet=1, blades_per_slot=1, nodes_per_blade=1,
        )
        spec = machine.layout_spec()
        assert "row0:0" in spec
        assert "c:0" in spec and "n:0" in spec

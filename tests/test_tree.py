"""Unit tests for the mrDMD tree data structures (repro.core.tree)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tree import ModeTable, MrDMDNode, MrDMDTree


def make_node(
    level: int = 1,
    bin_index: int = 0,
    start: int = 0,
    n_snapshots: int = 100,
    dt: float = 1.0,
    n_features: int = 4,
    n_modes: int = 2,
    eigenvalue: complex = 0.999 + 0.01j,
) -> MrDMDNode:
    gen = np.random.default_rng(level * 100 + bin_index)
    modes = gen.standard_normal((n_features, n_modes)) + 1j * gen.standard_normal((n_features, n_modes))
    eigenvalues = np.full(n_modes, eigenvalue, dtype=complex)
    amplitudes = gen.standard_normal(n_modes) + 0j
    return MrDMDNode(
        level=level,
        bin_index=bin_index,
        start=start,
        n_snapshots=n_snapshots,
        dt=dt,
        step=1,
        rho=0.1,
        modes=modes,
        eigenvalues=eigenvalues,
        amplitudes=amplitudes,
        svd_rank=n_modes,
    )


class TestMrDMDNode:
    def test_basic_properties(self):
        node = make_node()
        assert node.n_modes == 2
        assert node.n_features == 4
        assert node.end == 100
        assert node.local_dt == 1.0
        assert node.time_span == (0.0, 100.0)

    def test_frequencies_and_power_shapes(self):
        node = make_node()
        assert node.frequencies.shape == (2,)
        assert node.power.shape == (2,)
        assert np.all(node.power > 0)

    def test_empty_node_properties(self):
        node = make_node(n_modes=0)
        assert node.n_modes == 0
        assert node.frequencies.shape == (0,)
        assert node.power.shape == (0,)
        recon = node.local_reconstruction(10)
        assert recon.shape == (4, 10)
        assert np.allclose(recon, 0.0)

    def test_local_reconstruction_is_real_and_finite(self):
        node = make_node()
        recon = node.local_reconstruction()
        assert recon.shape == (4, 100)
        assert np.isrealobj(recon)
        assert np.all(np.isfinite(recon))

    def test_local_reconstruction_range_matches_full(self):
        node = make_node()
        full = node.local_reconstruction(100)
        part = node.local_reconstruction_range(30, 20)
        assert np.allclose(part, full[:, 30:50])

    def test_contribution_window_defaults_to_full_span(self):
        node = make_node(start=10, n_snapshots=50)
        assert node.contribution_window == (10, 60)

    def test_contribution_window_clipping(self):
        node = make_node(start=0, n_snapshots=100)
        node.contribution_start = 40
        node.contribution_end = 80
        assert node.contribution_window == (40, 80)

    def test_copy_with_overrides(self):
        node = make_node()
        copy = node.copy_with(level=5, start=7)
        assert copy.level == 5 and copy.start == 7
        assert copy.n_snapshots == node.n_snapshots
        assert copy.modes is node.modes  # shallow copy

    def test_growth_rates_sign(self):
        decaying = make_node(eigenvalue=0.9 + 0.0j)
        growing = make_node(eigenvalue=1.1 + 0.0j)
        assert np.all(decaying.growth_rates < 0)
        assert np.all(growing.growth_rates > 0)


class TestMrDMDTreeStructure:
    def test_add_and_iterate(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=1))
        tree.add(make_node(level=2, start=0, n_snapshots=50))
        tree.add(make_node(level=2, bin_index=1, start=50, n_snapshots=50))
        assert len(tree) == 3
        assert tree.n_levels == 2
        assert tree.n_snapshots == 100
        assert [n.level for n in tree] == [1, 2, 2]
        assert tree[0].level == 1

    def test_feature_mismatch_rejected(self):
        # On a tree that never grew, any width mismatch is a bug.
        tree = MrDMDTree(dt=1.0, n_features=5)
        with pytest.raises(ValueError):
            tree.add(make_node(n_features=4))
        with pytest.raises(ValueError):
            tree.add(make_node(n_features=6))
        # After an add_features topology event, nodes down to the
        # pre-event width are legal and zero-extend lazily.
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add_features(1)
        tree.add(make_node(n_features=4))
        with pytest.raises(ValueError):
            tree.add(make_node(n_features=3))  # narrower than pre-event
        assert tree.mode_table().mode_vectors.shape[1] == 5
        assert tree.reconstruct(100).shape == (5, 100)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            MrDMDTree(dt=0.0, n_features=4)
        with pytest.raises(ValueError):
            MrDMDTree(dt=1.0, n_features=0)

    def test_nodes_at_level_sorted_by_start(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=2, bin_index=1, start=50, n_snapshots=50))
        tree.add(make_node(level=2, bin_index=0, start=0, n_snapshots=50))
        nodes = tree.nodes_at_level(2)
        assert [n.start for n in nodes] == [0, 50]

    def test_shift_levels(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=1))
        tree.add(make_node(level=2))
        tree.shift_levels(1)
        assert tree.levels() == [2, 3]
        with pytest.raises(ValueError):
            tree.shift_levels(-1)

    def test_extend_and_mismatch(self):
        a = MrDMDTree(dt=1.0, n_features=4)
        a.add(make_node(level=1))
        b = MrDMDTree(dt=1.0, n_features=4)
        b.add(make_node(level=2))
        a.extend(b)
        assert len(a) == 2
        with pytest.raises(ValueError):
            a.extend(MrDMDTree(dt=2.0, n_features=4))
        with pytest.raises(ValueError):
            a.extend(MrDMDTree(dt=1.0, n_features=3))

    def test_replace_level(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=1))
        tree.add(make_node(level=2))
        tree.replace_level(2, [make_node(level=2, bin_index=5)])
        nodes = tree.nodes_at_level(2)
        assert len(nodes) == 1 and nodes[0].bin_index == 5

    def test_total_modes_and_summary(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=1, n_modes=3))
        tree.add(make_node(level=2, n_modes=1))
        assert tree.total_modes == 4
        summary = tree.summary()
        assert "level 1" in summary and "level 2" in summary


class TestModeTableAndReconstruction:
    def test_mode_table_flattening(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=1, n_modes=2))
        tree.add(make_node(level=2, n_modes=3))
        table = tree.mode_table()
        assert len(table) == 5
        assert table.mode_vectors.shape == (5, 4)
        assert set(table.levels.tolist()) == {1, 2}

    def test_mode_table_empty_tree(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        table = tree.mode_table()
        assert len(table) == 0
        assert table.mode_vectors.shape == (0, 4)

    def test_mode_table_filter(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=1, n_modes=4))
        table = tree.mode_table()
        filtered = table.filter(table.power > np.median(table.power))
        assert isinstance(filtered, ModeTable)
        assert len(filtered) <= len(table)

    def test_reconstruct_sums_node_contributions(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        node1 = make_node(level=1, n_snapshots=100)
        node2 = make_node(level=2, start=0, n_snapshots=50)
        tree.add(node1)
        tree.add(node2)
        recon = tree.reconstruct(100)
        expected = node1.local_reconstruction(100)
        expected[:, :50] += node2.local_reconstruction(50)
        assert np.allclose(recon, expected)

    def test_reconstruct_respects_contribution_window(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        node = make_node(level=1, n_snapshots=100)
        node.contribution_start = 60
        tree.add(node)
        recon = tree.reconstruct(100)
        assert np.allclose(recon[:, :60], 0.0)
        assert not np.allclose(recon[:, 60:], 0.0)

    def test_reconstruct_level_filter(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=1))
        tree.add(make_node(level=2))
        only_level1 = tree.reconstruct(100, levels=[1])
        both = tree.reconstruct(100)
        assert not np.allclose(only_level1, both)

    def test_reconstruct_frequency_filter_drops_fast_modes(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        slow = make_node(level=1, eigenvalue=np.exp(1j * 0.001))
        fast = make_node(level=2, eigenvalue=np.exp(1j * 2.0))
        tree.add(slow)
        tree.add(fast)
        # keep only modes below 0.01 Hz
        recon = tree.reconstruct(100, frequency_range=(0.0, 0.01))
        expected = slow.local_reconstruction(100)
        assert np.allclose(recon, expected)

    def test_reconstruct_min_power_filter(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        node = make_node(level=1, n_modes=3)
        tree.add(node)
        heavy = tree.reconstruct(100, min_power=float(node.power.max()) + 1.0)
        assert np.allclose(heavy, 0.0)

    def test_reconstruct_shorter_than_tree_span(self):
        tree = MrDMDTree(dt=1.0, n_features=4)
        tree.add(make_node(level=1, n_snapshots=100))
        recon = tree.reconstruct(40)
        assert recon.shape == (4, 40)


class TestWindowedReconstruction:
    def _multi_node_tree(self) -> MrDMDTree:
        """Uneven tree with a partial contribution window (post-append shape)."""
        tree = MrDMDTree(dt=1.0, n_features=4)
        level1 = make_node(level=1, n_snapshots=100)
        level1.contribution_start = 60  # the incremental-append shape
        tree.add(level1)
        tree.add(make_node(level=2, start=0, n_snapshots=60))
        tree.add(make_node(level=3, start=0, n_snapshots=30))
        tree.add(make_node(level=3, start=30, bin_index=1, n_snapshots=30))
        tree.add(make_node(level=2, start=60, bin_index=1, n_snapshots=40))
        return tree

    # Windowed output matches the corresponding slice of the full
    # reconstruction to machine precision.  (Exact bitwise equality is not
    # guaranteed: BLAS may order the mode-sum differently for different
    # column counts, which perturbs the last ulp.)
    TOL = dict(rtol=1e-12, atol=1e-12)

    def test_window_equals_slice_of_full(self):
        tree = self._multi_node_tree()
        full = tree.reconstruct(100)
        for lo, hi in [(0, 100), (0, 10), (45, 75), (90, 100), (59, 61)]:
            windowed = tree.reconstruct(100, time_range=(lo, hi))
            assert windowed.shape == (4, hi - lo)
            assert np.allclose(windowed, full[:, lo:hi], **self.TOL), (lo, hi)

    def test_window_equals_slice_with_filters(self):
        tree = self._multi_node_tree()
        power = np.concatenate([n.power for n in tree])
        min_power = float(np.median(power))
        full = tree.reconstruct(100, min_power=min_power, frequency_range=(0.0, 0.01))
        windowed = tree.reconstruct(
            100, time_range=(20, 80), min_power=min_power, frequency_range=(0.0, 0.01)
        )
        assert np.allclose(windowed, full[:, 20:80], **self.TOL)

    def test_window_is_clamped_to_timeline(self):
        tree = self._multi_node_tree()
        full = tree.reconstruct(100)
        windowed = tree.reconstruct(100, time_range=(-25, 1000))
        assert np.allclose(windowed, full, **self.TOL)

    def test_empty_window(self):
        tree = self._multi_node_tree()
        assert tree.reconstruct(100, time_range=(40, 40)).shape == (4, 0)
        assert tree.reconstruct(100, time_range=(200, 300)).shape == (4, 0)

    def test_reversed_window_rejected(self):
        tree = self._multi_node_tree()
        with pytest.raises(ValueError, match="time_range"):
            tree.reconstruct(100, time_range=(50, 10))


class TestSerialization:
    def test_round_trip(self):
        tree = MrDMDTree(dt=0.5, n_features=4)
        node = make_node(level=1, dt=0.5)
        node.contribution_start = 10
        tree.add(node)
        tree.add(make_node(level=2, dt=0.5, bin_index=1))
        payload = tree.to_dict()
        restored = MrDMDTree.from_dict(payload)
        assert len(restored) == len(tree)
        assert restored.dt == tree.dt
        assert restored[0].contribution_start == 10
        assert np.allclose(restored.reconstruct(100), tree.reconstruct(100))

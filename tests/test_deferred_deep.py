"""Asynchronous deep-level refresh (``deep_levels="deferred"``).

Deferring levels 2..L trades bounded, *visible* staleness for ingest
latency: level 1 (and therefore drift detection) stays current every
chunk, queued deep work drains through ``refresh_deep_levels``, and the
refreshed tree is node-for-node what inline maintenance would have built.
Covers the model, the pipeline stamps, the fleet scheduling/drain cycle,
checkpoint round-trips of pending work, and the alert-context staleness
annotation.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_multiscale_signal
from repro.core import MrDMDConfig
from repro.core.imrdmd import IncrementalMrDMD, UpdateRecord
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, RackSharding
from repro.service.alerts import AlertContext, DriftRule
from repro.service.checkpoint import load_checkpoint, save_checkpoint
from repro.service.alerts import default_rules
from repro.telemetry import HotNodes, TelemetryGenerator, theta_machine


def _tree_nodes(model):
    """Tree nodes keyed for order-independent comparison.

    Inline maintenance interleaves deep nodes with later level-1 nodes
    while a deferred refresh appends them afterwards, so insertion order
    differs by design; the *set* of nodes must not.
    """
    return sorted(
        model.tree.nodes,
        key=lambda n: (n.level, n.start, n.bin_index, n.n_snapshots),
    )


def _assert_same_trees(a, b):
    nodes_a, nodes_b = _tree_nodes(a), _tree_nodes(b)
    assert len(nodes_a) == len(nodes_b)
    for na, nb in zip(nodes_a, nodes_b):
        assert (na.level, na.bin_index, na.start, na.n_snapshots) == (
            nb.level, nb.bin_index, nb.start, nb.n_snapshots
        )
        assert np.array_equal(na.modes, nb.modes)
        assert np.array_equal(na.eigenvalues, nb.eigenvalues)
        assert np.array_equal(na.amplitudes, nb.amplitudes)


class TestValidation:
    def test_model_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="deep_levels"):
            IncrementalMrDMD(dt=1.0, deep_levels="eventually")

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="deep_levels"):
            PipelineConfig(deep_levels="eventually")

    def test_config_rejects_negative_refresh_period(self):
        with pytest.raises(ValueError, match="deep_refresh_every"):
            PipelineConfig(deep_refresh_every=-1)


class TestModelDeferred:
    @pytest.fixture(scope="class")
    def signal(self):
        return make_multiscale_signal(n_sensors=12, n_timesteps=768)

    def _grow(self, mode, signal, n_chunks=6, chunk=64):
        data, dt = signal
        model = IncrementalMrDMD(dt=dt, max_levels=3, deep_levels=mode)
        model.fit(data[:, :384])
        for index in range(n_chunks):
            model.partial_fit(data[:, 384 + index * chunk: 384 + (index + 1) * chunk])
        return model

    def test_staleness_accounting(self, signal):
        model = self._grow("deferred", signal)
        assert model.deep_pending == 6
        # Oldest queued chunk is 6 chunks x 64 snapshots behind the head.
        assert model.deep_stale_snapshots == 6 * 64
        inline = self._grow("inline", signal)
        assert inline.deep_pending == 0
        assert inline.deep_stale_snapshots == 0

    def test_refresh_converges_to_the_inline_tree(self, signal):
        deferred = self._grow("deferred", signal)
        inline = self._grow("inline", signal)
        assert len(deferred.tree) < len(inline.tree)  # deep work still queued
        added = deferred.refresh_deep_levels()
        assert added == len(inline.tree) - (len(deferred.tree) - added)
        assert deferred.deep_pending == 0
        assert deferred.deep_stale_snapshots == 0
        _assert_same_trees(deferred, inline)

    def test_partial_refresh_drains_oldest_first(self, signal):
        model = self._grow("deferred", signal)
        stale_before = model.deep_stale_snapshots
        model.refresh_deep_levels(max_entries=2)
        assert model.deep_pending == 4
        assert model.deep_stale_snapshots == stale_before - 2 * 64
        model.refresh_deep_levels()
        _assert_same_trees(model, self._grow("inline", signal))

    def test_refresh_is_a_noop_inline(self, signal):
        model = self._grow("inline", signal)
        assert model.refresh_deep_levels() == 0

    def test_state_dict_round_trips_pending_work(self, signal):
        model = self._grow("deferred", signal)
        restored = IncrementalMrDMD.from_state_dict(model.state_dict())
        assert restored.deep_levels == "deferred"
        assert restored.deep_pending == model.deep_pending
        assert restored.deep_stale_snapshots == model.deep_stale_snapshots
        model.refresh_deep_levels()
        restored.refresh_deep_levels()
        _assert_same_trees(model, restored)


CONFIG_DEFERRED = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=3),
    baseline_range=(40.0, 75.0),
    deep_levels="deferred",
    deep_refresh_every=2,
)


@pytest.fixture(scope="module")
def fleet_stream():
    machine = theta_machine(racks_per_row=1, n_rows=2, node_limit=64)
    generator = TelemetryGenerator(machine, seed=29, utilization_target=0.3)
    return generator.generate(
        560,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(8, 9), start=260, delta=13.0)],
    )


def _drive_monitor(stream, config, backend="serial", n_chunks=4):
    monitor = FleetMonitor.from_stream(
        stream, policy=RackSharding(), config=config, executor=backend,
        max_workers=2,
    )
    snapshots = [monitor.ingest(stream.values[:, :240])]
    for index in range(n_chunks):
        lo = 240 + index * 80
        snapshots.append(monitor.ingest(stream.values[:, lo: lo + 80]))
    return monitor, snapshots


class TestFleetDeferred:
    def test_snapshots_stamp_staleness_and_every_n_scheduling_drains(
        self, fleet_stream
    ):
        monitor, snapshots = _drive_monitor(fleet_stream, CONFIG_DEFERRED)
        with monitor:
            # Snapshot staleness stamps are fleet-wide aggregates.
            assert snapshots[1].deep_pending > 0
            assert snapshots[1].deep_stale_snapshots == 80
            # deep_refresh_every=2 over 4 chunks: refreshes were scheduled
            # and the queue was bounded, not monotone.
            scheduled_drain = monitor.drain_refreshes()
            staleness = monitor.deep_staleness()
            assert all(stale <= 2 * 80 for _, stale in staleness.values())
            assert scheduled_drain >= 0
            # Forcing the remainder through empties the backlog.
            monitor.refresh_deep_levels()
            assert all(
                (pending, stale) == (0, 0)
                for pending, stale in monitor.deep_staleness().values()
            )

    def test_inline_monitor_refresh_is_a_noop(self, fleet_stream):
        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=3), baseline_range=(40.0, 75.0)
        )
        monitor, _ = _drive_monitor(fleet_stream, config, n_chunks=1)
        with monitor:
            assert monitor.refresh_deep_levels() == 0
            assert monitor.deep_staleness() == {
                shard: (0, 0) for shard in (spec.shard_id for spec in monitor.shards)
            }

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_deferred_scheduling_is_backend_invariant(self, fleet_stream, backend):
        serial_monitor, serial_snaps = _drive_monitor(fleet_stream, CONFIG_DEFERRED)
        other_monitor, other_snaps = _drive_monitor(
            fleet_stream, CONFIG_DEFERRED, backend=backend
        )
        with serial_monitor, other_monitor:
            for a, b in zip(serial_snaps, other_snaps):
                assert a.step == b.step
                assert a.total_modes == b.total_modes
                assert a.deep_pending == b.deep_pending
                assert a.deep_stale_snapshots == b.deep_stale_snapshots
            serial_monitor.refresh_deep_levels()
            other_monitor.refresh_deep_levels()
            assert serial_monitor.rack_values() == other_monitor.rack_values()

    def test_deferred_converges_to_inline_fleet(self, fleet_stream):
        inline_config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=3), baseline_range=(40.0, 75.0)
        )
        deferred_monitor, _ = _drive_monitor(fleet_stream, CONFIG_DEFERRED)
        inline_monitor, _ = _drive_monitor(fleet_stream, inline_config)
        with deferred_monitor, inline_monitor:
            deferred_monitor.refresh_deep_levels()
            for shard_id in (s.shard_id for s in deferred_monitor.shards):
                _assert_same_trees(
                    deferred_monitor.pipeline(shard_id).model,
                    inline_monitor.pipeline(shard_id).model,
                )

    def test_checkpoint_round_trips_the_backlog(self, fleet_stream, tmp_path):
        monitor, _ = _drive_monitor(fleet_stream, CONFIG_DEFERRED, n_chunks=3)
        with monitor:
            staleness = monitor.deep_staleness()
            assert any(pending for pending, _ in staleness.values())
            save_checkpoint(str(tmp_path / "ckpt"), monitor)
        restored = load_checkpoint(
            str(tmp_path / "ckpt"), rules=default_rules(), sinks=[]
        )
        with restored:
            assert restored.config.deep_levels == "deferred"
            assert restored.deep_staleness() == staleness
            # The restored fleet keeps streaming and draining.
            restored.ingest(fleet_stream.values[:, 480:560])
            restored.refresh_deep_levels()
            assert all(
                (pending, stale) == (0, 0)
                for pending, stale in restored.deep_staleness().values()
            )


class TestAlertStaleness:
    def _record(self, *, stale: bool) -> UpdateRecord:
        return UpdateRecord(
            chunk_size=80, total_snapshots=400, level1_rank=6, level1_modes=3,
            drift=0.4, stale=stale, new_nodes=1,
        )

    def test_drift_alert_carries_the_staleness_age(self):
        context = AlertContext(
            step=400,
            updates={"rack-0": self._record(stale=True)},
            deep_stale={"rack-0": 160},
        )
        (alert,) = DriftRule().evaluate(context)
        assert "160 snapshots of deep-level work queued" in alert.message

    def test_fresh_shards_get_no_annotation(self):
        context = AlertContext(
            step=400, updates={"rack-0": self._record(stale=True)}
        )
        (alert,) = DriftRule().evaluate(context)
        assert "queued" not in alert.message

"""Elastic topology: new sensors, shards and machines through every layer.

Pins the tentpole guarantees of the elastic-topology refactor:

* core — :meth:`IncrementalMrDMD.add_rows` extends a live decomposition
  (zero-history fast path and back-filled history), bumps the tree
  revision, checkpoints the provenance, and resumes bit-for-bit;
* pipeline — :meth:`OnlineAnalysisPipeline.add_sensors` grows the row map
  and keeps unaffected baseline rows' statistics;
* service — :meth:`ShardingPolicy.repartition` maps new rows onto stable
  shard ids, :meth:`ShardExecutor.add_shard` joins new residents without a
  pool restart, and :meth:`FleetMonitor.add_sensors` is bit-for-bit
  identical across serial/thread/process backends;
* checkpoints — pre-elastic (version 1) checkpoints load into elastic
  monitors; topology-bearing state is stamped version 2 so pre-elastic
  loaders refuse cleanly;
* federation — partial rounds, mid-run registration, and the
  stale-restore + chunk-log catch-up flow reproduce an uninterrupted run
  exactly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import IncrementalMrDMD, MrDMDConfig, TopologyChange
from repro.federation import (
    AlertRouter,
    ChunkLog,
    FederatedAlertContext,
    FederatedMonitor,
    FleetWideRule,
    FleetWideZScoreRule,
    MachineRegistry,
)
from repro.pipeline import OnlineAnalysisPipeline, PipelineConfig
from repro.service import (
    Alert,
    AlertEngine,
    AlertSeverity,
    FleetMonitor,
    MetricSharding,
    RackSharding,
    ShardSpec,
    SingleShard,
    default_rules,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
    validate_partition,
)
from repro.service.scenarios import _default_config, _default_machine
from repro.telemetry import TelemetryGenerator
from repro.util import make_shard_executor

BACKENDS = ["serial", "thread", "process"]


# --------------------------------------------------------------------------- #
# Shared inputs
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def two_channel_stream():
    """cpu_temp + node_power telemetry on the 4-rack scenario machine."""
    machine = _default_machine()
    generator = TelemetryGenerator(machine, seed=7, utilization_target=0.3)
    return generator.generate(480, sensors=["cpu_temp", "node_power"])


@pytest.fixture(scope="module")
def channel_split(two_channel_stream):
    """(initial cpu_temp sub-stream, row count of the cpu_temp prefix)."""
    n_cpu = int(np.sum(two_channel_stream.sensor_names == "cpu_temp"))
    return two_channel_stream.channel("cpu_temp"), n_cpu


def _signal(n_rows=6, n_steps=900, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 40, n_steps)
    base = np.vstack([np.sin(0.3 * t + i) for i in range(n_rows)])
    return base + 0.05 * rng.standard_normal((n_rows, n_steps)), t[1] - t[0]


# --------------------------------------------------------------------------- #
# Core: IncrementalMrDMD.add_rows
# --------------------------------------------------------------------------- #
class TestModelAddRows:
    def test_rows_join_without_history(self):
        data, dt = _signal()
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :400])
        model.partial_fit(data[:, 400:500])
        revision = model.tree.revision

        change = model.add_rows(2)
        assert isinstance(change, TopologyChange)
        assert change.n_new_rows == 2 and change.total_rows == 8
        assert change.step == 500 and not change.backfilled
        assert model.n_features == 8
        assert model.tree.revision > revision
        np.testing.assert_array_equal(model.row_birth[-2:], [500, 500])
        assert model.topology_history == [change]

        grown = np.vstack([data[:, 500:600], np.zeros((2, 100))])
        model.partial_fit(grown)
        assert model.reconstruct().shape == (8, 600)
        # Old windows reconstruct new rows as zero (they did not exist).
        np.testing.assert_array_equal(model.reconstruct()[-2:, :500], 0.0)

    def test_zero_history_path_skips_vh_materialization(self):
        data, dt = _signal()
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :400])
        model.partial_fit(data[:, 400:500])
        pending = model._isvd.pending_rotations
        assert pending > 0, "lazy rotations must be outstanding for this test"
        model.add_rows(3)
        # The O(k) fast path must not have paid the O(q^2 T) replay.
        assert model._isvd.pending_rotations == pending

    def test_rows_join_with_backfilled_history(self):
        data, dt = _signal(n_rows=7)
        model = IncrementalMrDMD(dt=dt, max_levels=3, keep_data=True)
        model.fit(data[:6, :400])
        model.partial_fit(data[:6, 400:500])

        change = model.add_rows(data[6:7, :500])
        assert change.backfilled and change.step == 0
        assert model.row_birth[-1] == 0
        model.partial_fit(data[:, 500:600])
        # Backfill extends the *basis*: windows decomposed after the event
        # reconstruct the new row from its actual dynamics (pre-event tree
        # nodes keep their zero rows — old windows are not rewritten).
        recon = model.reconstruct()
        window = slice(500, 600)
        err = np.linalg.norm(recon[6, window] - data[6, window])
        assert err < 0.5 * np.linalg.norm(data[6, window])

    def test_history_nans_are_zero_filled(self):
        data, dt = _signal()
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :400])
        history = np.full((1, 400), np.nan)
        history[:, 200:] = 0.5
        model.add_rows(history)  # must not raise, NaN = missing by contract
        assert model.n_features == 7

    def test_add_rows_checkpoint_roundtrip_resumes_bitwise(self):
        data, dt = _signal()
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :400])
        model.add_rows(2)
        grown = np.vstack([data[:, 400:500], np.zeros((2, 100))])
        model.partial_fit(grown)

        restored = IncrementalMrDMD.from_state_dict(model.state_dict())
        assert restored.topology_history == model.topology_history
        np.testing.assert_array_equal(restored.row_birth, model.row_birth)
        chunk = np.vstack([data[:, 500:600], np.zeros((2, 100))])
        model.partial_fit(chunk)
        restored.partial_fit(chunk)
        np.testing.assert_array_equal(model.reconstruct(), restored.reconstruct())

    def test_pre_elastic_state_dict_loads(self):
        data, dt = _signal()
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :400])
        state = model.state_dict()
        for key in ("row_birth", "topology", "sub_offset", "missing_values"):
            state.pop(key)
        restored = IncrementalMrDMD.from_state_dict(state)
        np.testing.assert_array_equal(
            restored.row_birth, np.zeros(model.n_features, dtype=int)
        )
        assert restored.topology_history == []
        restored.partial_fit(data[:, 400:500])

    def test_validation(self):
        data, dt = _signal()
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        with pytest.raises(RuntimeError):
            model.add_rows(1)
        model.fit(data[:, :400])
        with pytest.raises(ValueError, match=">= 1"):
            model.add_rows(0)
        with pytest.raises(ValueError, match="full ingested timeline"):
            model.add_rows(np.zeros((1, 7)))

    def test_missing_values_policy(self):
        data, dt = _signal()
        model = IncrementalMrDMD(dt=dt, max_levels=3)
        model.fit(data[:, :400])
        bad = data[:, 400:420].copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="missing_values='zero'"):
            model.partial_fit(bad)
        tolerant = IncrementalMrDMD(dt=dt, max_levels=3, missing_values="zero")
        tolerant.fit(data[:, :400])
        tolerant.partial_fit(bad)  # NaN -> 0.0
        with pytest.raises(ValueError, match="missing_values"):
            IncrementalMrDMD(dt=dt, missing_values="interpolate")
        with pytest.raises(ValueError, match="missing_values"):
            PipelineConfig(missing_values="interpolate")


# --------------------------------------------------------------------------- #
# Pipeline: add_sensors
# --------------------------------------------------------------------------- #
class TestPipelineAddSensors:
    def _pipeline(self):
        data, dt = _signal(n_rows=8)
        nodes = np.arange(8) // 2
        config = PipelineConfig(
            mrdmd=MrDMDConfig(max_levels=3), baseline_range=(-5.0, 5.0)
        )
        pipeline = OnlineAnalysisPipeline(dt=dt, config=config, node_of_row=nodes)
        pipeline.ingest(data[:, :400])
        pipeline.ingest(data[:, 400:500])
        return pipeline, data

    def test_row_map_grows_and_old_scores_survive(self):
        pipeline, data = self._pipeline()
        before = pipeline.node_zscores()
        change = pipeline.add_sensors(node_of_row=[4, 4])
        assert change.n_new_rows == 2
        after = pipeline.node_zscores()
        np.testing.assert_array_equal(after.node_indices, [0, 1, 2, 3, 4])
        # Unaffected rows keep their statistics across the event.
        np.testing.assert_array_equal(before.zscores, after.zscores[:4])

    def test_pinned_baseline_is_dropped(self):
        pipeline, data = self._pipeline()
        pipeline.fit_baseline(data[:, :500])  # pinned to caller data
        pipeline.add_sensors(node_of_row=[4])
        assert pipeline._baseline is None
        pipeline.node_zscores()  # refits lazily at the new width

    def test_count_consistency_checks(self):
        pipeline, data = self._pipeline()
        with pytest.raises(ValueError, match="inconsistent"):
            pipeline.add_sensors(node_of_row=[4, 4], n_rows=3)
        with pytest.raises(ValueError, match="node_of_row"):
            pipeline.add_sensors()

    def test_state_roundtrip_carries_topology(self):
        pipeline, data = self._pipeline()
        pipeline.add_sensors(node_of_row=[4, 4])
        assert pipeline.is_topology_bearing()
        restored = OnlineAnalysisPipeline.from_state_dict(pipeline.state_dict())
        chunk = np.vstack([data[:, 500:600], np.zeros((2, 100))])
        pipeline.ingest(chunk)
        restored.ingest(chunk)
        np.testing.assert_array_equal(
            pipeline.node_zscores().zscores, restored.node_zscores().zscores
        )


# --------------------------------------------------------------------------- #
# Sharding: repartition
# --------------------------------------------------------------------------- #
class TestRepartition:
    def test_single_shard_extends(self):
        policy = SingleShard()
        specs = policy.partition(np.array(["t"] * 4), np.arange(4) // 2)
        grown = policy.repartition(specs, np.array(["p", "p"]), np.array([0, 1]))
        assert [s.shard_id for s in grown] == ["all"]
        validate_partition(grown, 6)
        np.testing.assert_array_equal(grown[0].row_indices, np.arange(6))

    def test_metric_sharding_mints_and_extends(self):
        policy = MetricSharding()
        specs = policy.partition(np.array(["t"] * 4), np.arange(4))
        grown = policy.repartition(
            specs, np.array(["t", "p", "p"]), np.array([4, 0, 1])
        )
        assert [s.shard_id for s in grown] == ["metric-t", "metric-p"]
        validate_partition(grown, 7)
        np.testing.assert_array_equal(grown[0].row_indices, [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(grown[1].row_indices, [5, 6])

    def test_rack_sharding_matches_by_group(self, two_channel_stream):
        machine = two_channel_stream.machine
        policy = RackSharding()
        names = np.asarray(two_channel_stream.sensor_names)
        nodes = np.asarray(two_channel_stream.node_indices)
        n_cpu = int(np.sum(names == "cpu_temp"))
        specs = policy.partition(names[:n_cpu], nodes[:n_cpu], machine)
        grown = policy.repartition(specs, names[n_cpu:], nodes[n_cpu:], machine)
        # Same shard ids, every shard doubled, no new shards.
        assert [s.shard_id for s in grown] == [s.shard_id for s in specs]
        assert all(g.n_rows == 2 * s.n_rows for g, s in zip(grown, specs))
        validate_partition(grown, len(names))
        # start_step survives extension.
        assert all(g.start_step == s.start_step for g, s in zip(grown, specs))

    def test_spec_start_step_roundtrips(self):
        spec = ShardSpec(
            shard_id="x", row_indices=[3, 4], node_of_row=[0, 0], start_step=240
        )
        assert ShardSpec.from_dict(spec.to_dict()).start_step == 240
        assert ShardSpec.from_dict({k: v for k, v in spec.to_dict().items() if k != "start_step"}).start_step == 0


# --------------------------------------------------------------------------- #
# Executors: add_shard without a pool restart
# --------------------------------------------------------------------------- #
def _get(obj):
    return obj


def _bump(obj):
    obj["n"] = obj.get("n", 0) + 1
    return obj["n"]


class TestExecutorAddShard:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_new_shard_joins_running_pool(self, backend):
        with make_shard_executor(backend, max_workers=2) as executor:
            executor.start({"a": {"name": "a"}, "b": {"name": "b"}})
            assert executor.call("a", _bump) == 1
            executor.add_shard("c", {"name": "c"})
            assert executor.shard_ids == ("a", "b", "c")
            assert executor.call("c", _get)["name"] == "c"
            assert executor.call("c", _bump) == 1
            # Existing residents were untouched by the addition.
            assert executor.call("a", _bump) == 2
            with pytest.raises(ValueError, match="already resident"):
                executor.add_shard("a", {})

    def test_add_shard_requires_started_pool(self):
        executor = make_shard_executor("serial")
        with pytest.raises(RuntimeError, match="not started"):
            executor.add_shard("a", {})
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.add_shard("a", {})


# --------------------------------------------------------------------------- #
# FleetMonitor: elastic events, backend parity, checkpoints
# --------------------------------------------------------------------------- #
def _drive_elastic(stream, full_stream, n_cpu, backend):
    """Reference elastic workload: stream, grow, stream; returns products."""
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=_default_config(),
        alert_engine=AlertEngine(rules=default_rules(), cooldown=60),
        executor=backend,
        max_workers=2,
    )
    full = full_stream.values
    with monitor:
        monitor.ingest(stream.values[:, :240])
        monitor.ingest_and_alert(stream.values[:, 240:320])
        update = monitor.add_sensors(
            full_stream.sensor_names[n_cpu:], full_stream.node_indices[n_cpu:]
        )
        alerts = []
        for lo in range(320, 480, 80):
            _, fired = monitor.ingest_and_alert(full[:, lo : lo + 80])
            alerts.extend(fired)
        products = {
            "update_extended": sorted(update.extended),
            "update_minted": update.minted,
            "rack_values": monitor.rack_values(),
            "windowed": monitor.rack_values(time_range=(380, 480)),
            "alerts": alerts,
            "states": monitor.shard_state_dicts(),
        }
    return products


class TestFleetElastic:
    @pytest.fixture(scope="class")
    def elastic_products(self, two_channel_stream, channel_split):
        initial, n_cpu = channel_split
        return {
            backend: _drive_elastic(initial, two_channel_stream, n_cpu, backend)
            for backend in BACKENDS
        }

    def test_extension_and_alerts_identical_across_backends(self, elastic_products):
        reference = elastic_products["serial"]
        assert reference["update_extended"] == [
            "rack-0",
            "rack-1",
            "rack-2",
            "rack-3",
        ]
        assert reference["update_minted"] == ()
        for backend in ("thread", "process"):
            products = elastic_products[backend]
            assert products["rack_values"] == reference["rack_values"]
            assert products["windowed"] == reference["windowed"]
            assert products["alerts"] == reference["alerts"]

    def test_shard_states_identical_across_backends(self, elastic_products):
        def flatten(states):
            return {
                sid: np.asarray(state["model"]["level1_modes"])
                for sid, state in states.items()
            }

        reference = flatten(elastic_products["serial"]["states"])
        for backend in ("thread", "process"):
            other = flatten(elastic_products[backend]["states"])
            assert other.keys() == reference.keys()
            for sid in reference:
                np.testing.assert_array_equal(other[sid], reference[sid])

    def test_metric_policy_mints_new_shard_into_live_pool(
        self, two_channel_stream, channel_split
    ):
        initial, n_cpu = channel_split
        monitor = FleetMonitor.from_stream(
            initial, policy=MetricSharding(), config=_default_config(),
            executor="thread", max_workers=2,
        )
        with monitor:
            monitor.ingest(initial.values[:, :240])
            executor = monitor.executor
            update = monitor.add_sensors(
                two_channel_stream.sensor_names[n_cpu:],
                two_channel_stream.node_indices[n_cpu:],
            )
            assert update.minted == ("metric-node_power",)
            assert monitor.executor is executor, "pool must not restart"
            assert "metric-node_power" in executor.shard_ids
            # Before its first chunk the new shard scores as "no data".
            assert monitor.rack_values()
            monitor.ingest(two_channel_stream.values[:, 240:320])
            spec = next(
                s for s in monitor.shards if s.shard_id == "metric-node_power"
            )
            assert spec.start_step == 240
            assert "metric-node_power" in monitor.spectra()

    def test_minted_shard_with_history_spans_the_timeline(
        self, two_channel_stream, channel_split
    ):
        initial, n_cpu = channel_split
        monitor = FleetMonitor.from_stream(
            initial, policy=MetricSharding(), config=_default_config()
        )
        with monitor:
            monitor.ingest(initial.values[:, :240])
            update = monitor.add_sensors(
                two_channel_stream.sensor_names[n_cpu:],
                two_channel_stream.node_indices[n_cpu:],
                history=two_channel_stream.values[n_cpu:, :240],
            )
            assert update.minted == ("metric-node_power",)
            spec = next(
                s for s in monitor.shards if s.shard_id == "metric-node_power"
            )
            # Seeded with its back-filled history, the shard spans the
            # fleet timeline from step 0 and is queryable immediately.
            assert spec.start_step == 0
            pipeline = monitor.pipeline("metric-node_power")
            assert pipeline.model.n_snapshots == 240
            assert "metric-node_power" in monitor.spectra()
            monitor.ingest(two_channel_stream.values[:, 240:320])
            assert pipeline.model.n_snapshots == 320

    def test_missing_rows_policy(self, two_channel_stream, channel_split):
        from dataclasses import replace

        initial, n_cpu = channel_split
        monitor = FleetMonitor.from_stream(
            initial, policy=RackSharding(), config=_default_config()
        )
        with pytest.raises(ValueError, match="missing_rows='nan'"):
            monitor.ingest(initial.values[:32, :240])
        monitor.close()
        with pytest.raises(ValueError, match="missing_values='zero'"):
            FleetMonitor.from_stream(
                initial, policy=RackSharding(), config=_default_config(),
                missing_rows="nan",
            )
        config = replace(_default_config(), missing_values="zero")
        tolerant = FleetMonitor.from_stream(
            initial, policy=RackSharding(), config=config, missing_rows="nan"
        )
        with tolerant:
            tolerant.ingest(initial.values[:, :240])
            tolerant.add_sensors(
                two_channel_stream.sensor_names[n_cpu:],
                two_channel_stream.node_indices[n_cpu:],
            )
            # Old-width chunk: the new rows pad with NaN -> zero fill.
            tolerant.ingest(initial.values[:, 240:320])
            assert tolerant.step == 320

    def test_add_sensors_requires_policy_after_restore(
        self, two_channel_stream, channel_split, tmp_path
    ):
        initial, n_cpu = channel_split
        monitor = FleetMonitor.from_stream(
            initial, policy=RackSharding(), config=_default_config()
        )
        monitor.ingest(initial.values[:, :240])
        save_checkpoint(str(tmp_path / "ckpt"), monitor)
        restored = load_checkpoint(str(tmp_path / "ckpt"))
        with pytest.raises(ValueError, match="policy"):
            restored.add_sensors(
                two_channel_stream.sensor_names[n_cpu:],
                two_channel_stream.node_indices[n_cpu:],
            )
        restored.add_sensors(
            two_channel_stream.sensor_names[n_cpu:],
            two_channel_stream.node_indices[n_cpu:],
            policy=RackSharding(),
            machine=two_channel_stream.machine,
        )
        monitor.close()
        restored.close()


# --------------------------------------------------------------------------- #
# Checkpoint format: forward/backward compatibility
# --------------------------------------------------------------------------- #
class TestCheckpointVersions:
    def test_plain_state_writes_version_1(self, channel_split, tmp_path):
        initial, _ = channel_split
        monitor = FleetMonitor.from_stream(
            initial, policy=RackSharding(), config=_default_config()
        )
        monitor.ingest(initial.values[:, :240])
        info = save_checkpoint(str(tmp_path / "v1"), monitor)
        assert read_manifest(info.directory)["version"] == 1
        monitor.close()

    def test_topology_bearing_state_writes_version_2(
        self, two_channel_stream, channel_split, tmp_path
    ):
        initial, n_cpu = channel_split
        monitor = FleetMonitor.from_stream(
            initial, policy=RackSharding(), config=_default_config()
        )
        monitor.ingest(initial.values[:, :240])
        monitor.add_sensors(
            two_channel_stream.sensor_names[n_cpu:],
            two_channel_stream.node_indices[n_cpu:],
        )
        monitor.ingest(two_channel_stream.values[:, 240:320])
        info = save_checkpoint(str(tmp_path / "v2"), monitor)
        assert read_manifest(info.directory)["version"] == 2

        # Elastic checkpoints resume bit-for-bit on elastic code...
        restored = load_checkpoint(info.directory)
        chunk = two_channel_stream.values[:, 320:400]
        monitor.ingest(chunk)
        restored.ingest(chunk)
        assert monitor.rack_values() == restored.rack_values()
        monitor.close()
        restored.close()

    def test_row_policing_modes_survive_restore(
        self, two_channel_stream, channel_split, tmp_path
    ):
        from dataclasses import replace

        initial, n_cpu = channel_split
        config = replace(_default_config(), missing_values="zero")
        monitor = FleetMonitor.from_stream(
            initial, policy=RackSharding(), config=config, missing_rows="nan"
        )
        monitor.ingest(initial.values[:, :240])
        monitor.add_sensors(
            two_channel_stream.sensor_names[n_cpu:],
            two_channel_stream.node_indices[n_cpu:],
        )
        save_checkpoint(str(tmp_path / "nan"), monitor)
        restored = load_checkpoint(str(tmp_path / "nan"))
        assert restored.missing_rows == "nan"
        # The restored service keeps padding not-yet-reporting sensors.
        restored.ingest(initial.values[:, 240:320])
        assert restored.step == 320
        monitor.close()
        restored.close()

    def test_unknown_version_refuses_cleanly(self, channel_split, tmp_path):
        import json

        initial, _ = channel_split
        monitor = FleetMonitor.from_stream(
            initial, policy=RackSharding(), config=_default_config()
        )
        monitor.ingest(initial.values[:, :240])
        info = save_checkpoint(str(tmp_path / "v"), monitor)
        manifest_path = os.path.join(info.directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        # Version 3 became the delta format; 99 stays from the future.
        manifest["version"] = 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            load_checkpoint(info.directory)
        monitor.close()

    def test_retain_none_model_state_is_topology_bearing(self):
        # Minimal level-1 retention shrinks the grid -> pre-elastic loaders
        # would mis-resume -> stamped version 2.
        from repro.service.checkpoint import _state_is_topology_bearing

        data, dt = _signal()
        model = IncrementalMrDMD(dt=dt, max_levels=3, retain_data="none")
        model.fit(data[:, :400])
        model.partial_fit(data[:, 400:500])
        assert model.is_topology_bearing()
        assert _state_is_topology_bearing({"model": model.state_dict()})


# --------------------------------------------------------------------------- #
# Federation: partial rounds, membership, chunk log, catch-up
# --------------------------------------------------------------------------- #
def _fed_machine(stream):
    return FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=_default_config(),
        alert_engine=AlertEngine(rules=default_rules()),
    )


@pytest.fixture()
def fed_streams():
    machine = _default_machine()
    return {
        name: TelemetryGenerator(machine, seed=seed, utilization_target=0.3).generate(
            560, sensors=["cpu_temp"]
        )
        for name, seed in (("east", 21), ("west", 22))
    }


class TestFederationElastic:
    def test_partial_rounds_advance_only_participants(self, fed_streams):
        federated = FederatedMonitor(
            MachineRegistry({n: _fed_machine(s) for n, s in fed_streams.items()})
        )
        with federated:
            federated.ingest({n: s.values[:, :240] for n, s in fed_streams.items()})
            federated.ingest_and_alert(
                {"east": fed_streams["east"].values[:, 240:320]}
            )
            assert federated.machine_steps() == {"east": 320, "west": 240}
            # Windowed fleet queries skip machines outside the window.
            scores = federated.node_zscores(time_range=(300, 320))
            assert set(scores) == {"east"}
        federated.registry.close()

    def test_skipping_a_round_keeps_drift_memory(self):
        from repro.core import UpdateRecord

        def record(stale):
            return UpdateRecord(
                chunk_size=80, total_snapshots=320, level1_rank=2,
                level1_modes=2, drift=1.0, stale=stale, new_nodes=1,
            )

        rule = FleetWideRule(min_machines=2, window=100)
        # Round 1: east drifts; west absent (partial round) but registered.
        out = rule.evaluate(FederatedAlertContext(
            step=320, updates={"east": {"s": record(True)}},
            machines=("east", "west"),
        ))
        assert out == []
        # Round 2: west drifts; east skips. East's memory must survive.
        out = rule.evaluate(FederatedAlertContext(
            step=400, updates={"west": {"s": record(True)}},
            machines=("east", "west"),
        ))
        assert len(out) == 1
        # Deregistration (absent from machines) drops the memory.
        out = rule.evaluate(FederatedAlertContext(
            step=420, updates={"west": {"s": record(True)}}, machines=("west",),
        ))
        assert out == []

    def test_fleet_wide_zscore_rule(self):
        def zalert(step):
            return Alert(
                rule="zscore", severity=AlertSeverity.CRITICAL, step=step,
                message="hot", node=1, value=3.0,
            )

        rule = FleetWideZScoreRule(min_machines=2, window=100)
        out = rule.evaluate(FederatedAlertContext(
            step=320, machines=("east", "west"),
            machine_alerts={"east": (zalert(320),), "west": ()},
        ))
        assert out == []
        out = rule.evaluate(FederatedAlertContext(
            step=400, machines=("east", "west"),
            machine_alerts={"east": (), "west": (zalert(400),)},
        ))
        assert len(out) == 1 and out[0].rule == "fleet-wide-zscore"
        # Router dedup semantics match the drift rule: per-rule cooldown.
        router = AlertRouter(fleet_rules=[rule], cooldown=120)
        state = rule.state_dict()
        rule.load_state_dict(state)  # round-trips
        routed = router.route(
            {"east": [], "west": [zalert(410)]},
            FederatedAlertContext(step=410, machines=("east", "west")),
        )
        assert [a.rule for a in routed if a.rule == "fleet-wide-zscore"]
        routed = router.route(
            {"east": [], "west": [zalert(430)]},
            FederatedAlertContext(step=430, machines=("east", "west")),
        )
        assert not [a for a in routed if a.rule == "fleet-wide-zscore"]

    def test_chunk_log_contract(self):
        log = ChunkLog(capacity_per_machine=2)
        log.record("m", 0, np.zeros((2, 100)))
        log.record("m", 100, np.zeros((2, 50)))
        with pytest.raises(ValueError, match="stream order"):
            log.record("m", 500, np.zeros((2, 10)))
        log.record("m", 150, np.zeros((2, 50)))
        assert log.latest_step("m") == 200
        # Capacity 2: the [0, 100) entry was evicted -> catching up from 0
        # must fail loudly, not skip data.
        with pytest.raises(ValueError, match="no longer covers"):
            log.entries_since("m", 0)
        tail = log.entries_since("m", 150)
        assert [(e.start, e.stop) for e in tail] == [(150, 200)]
        assert log.entries_since("m", 200) == []
        log.forget("m")
        assert log.machines == ()

    def test_register_and_stale_restore_catch_up(self, fed_streams, tmp_path):
        log = ChunkLog()
        federated = FederatedMonitor(
            MachineRegistry({n: _fed_machine(s) for n, s in fed_streams.items()}),
            chunk_log=log,
        )
        bounds = [(0, 240), (240, 320), (320, 400), (400, 480), (480, 560)]
        with federated:
            federated.ingest({n: s.values[:, :240] for n, s in fed_streams.items()})
            federated.ingest({n: s.values[:, 240:320] for n, s in fed_streams.items()})

            # Mid-run registration: a brand-new machine joins.
            machine = _default_machine()
            south_stream = TelemetryGenerator(
                machine, seed=33, utilization_target=0.3
            ).generate(560, sensors=["cpu_temp"])
            replayed = federated.register_machine("south", _fed_machine(south_stream))
            assert replayed == 0
            assert federated.machine_names == ("east", "west", "south")

            # Stale restore: checkpoint west, advance, restore, catch up.
            save_checkpoint(str(tmp_path / "west"), federated.machine("west"))
            federated.ingest({"west": fed_streams["west"].values[:, 320:400]})
            federated.ingest({"west": fed_streams["west"].values[:, 400:480]})
            stale = load_checkpoint(str(tmp_path / "west"), rules=default_rules())
            assert stale.step == 320
            replayed = federated.reattach_machine("west", stale)
            assert replayed == 2
            assert federated.machine_steps()["west"] == 480

            # The caught-up machine matches an uninterrupted run exactly.
            reference = _fed_machine(fed_streams["west"])
            for lo, hi in bounds[:4]:
                reference.ingest(fed_streams["west"].values[:, lo:hi])
            assert (
                federated.machine("west").rack_values(time_range=(380, 480))
                == reference.rack_values(time_range=(380, 480))
            )
            reference.close()
        federated.registry.close()

    def test_catch_up_requires_chunk_log(self, fed_streams):
        federated = FederatedMonitor(
            MachineRegistry({n: _fed_machine(s) for n, s in fed_streams.items()})
        )
        with pytest.raises(RuntimeError, match="chunk_log"):
            federated.catch_up("east")
        federated.close()
        federated.registry.close()


# --------------------------------------------------------------------------- #
# Scenario catalog
# --------------------------------------------------------------------------- #
class TestElasticScenarios:
    def test_mid_run_add_sensors_scenario(self, tmp_path):
        from repro.service import ScenarioRunner, get_scenario

        result = ScenarioRunner(get_scenario("mid-run-add-sensors")).run()
        monitor = result.monitor
        assert any(s.shard_id == "metric-node_power" for s in monitor.shards)
        minted = next(
            s for s in monitor.shards if s.shard_id == "metric-node_power"
        )
        assert minted.start_step == 400  # initial 240 + 2 chunks of 80
        # The injected hot job must still alert across the topology event.
        assert {10, 11, 12, 13} <= result.alerted_nodes()

    @pytest.mark.parametrize("executor", [None, "thread"])
    def test_elastic_fleet_scenario(self, tmp_path, executor):
        from repro.federation import FederatedScenarioRunner, get_federated_scenario

        result = FederatedScenarioRunner(
            get_federated_scenario("elastic-fleet"),
            checkpoint_dir=str(tmp_path / f"ckpt-{executor}"),
            executor=executor,
        ).run()
        assert result.joined == ("south",)
        assert result.stale_restored and result.chunks_replayed >= 1
        assert sorted(result.topology_updates) == ["east", "west"]
        assert result.topology_updates["east"].minted == ("metric-node_power",)
        assert sorted(result.topology_updates["west"].extended) == [
            "rack-0", "rack-1", "rack-2", "rack-3",
        ]
        # All four machines answer fleet queries at the end.
        assert sorted(result.rack_values) == ["east", "north", "south", "west"]
        if not hasattr(self, "_reference"):
            type(self)._reference = result
        else:
            # serial == thread, end to end, through every elastic event.
            assert result.zscore_map == type(self)._reference.zscore_map
            assert [a.to_dict() for a in result.alerts] == [
                a.to_dict() for a in type(self)._reference.alerts
            ]

"""Checkpoint/restore round trips: storage format, pipeline state, monitor.

The central property: a restored monitor is *indistinguishable* from one
that never stopped — identical spectra, z-scores, rack values, and
identical products after further streaming.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.io import load_state, save_state
from repro.pipeline import OnlineAnalysisPipeline, PipelineConfig
from repro.service import (
    FleetMonitor,
    RackSharding,
    RingBufferSink,
    ZScoreRule,
    list_checkpoints,
    load_checkpoint,
    read_manifest,
    resolve_checkpoint_dir,
    save_checkpoint,
)
from repro.service.alerts import AlertEngine
from repro.service.scenarios import quiet_fleet
from repro.telemetry import HotNodes, TelemetryGenerator

from helpers import make_multiscale_signal


CONFIG = PipelineConfig(
    mrdmd=MrDMDConfig(max_levels=4),
    baseline_range=(40.0, 75.0),
    power_quantile=0.3,
)


# --------------------------------------------------------------------------- #
# io.storage generic state format
# --------------------------------------------------------------------------- #
def test_save_state_round_trips_nested_structures(tmp_path):
    state = {
        "scalars": {"i": 3, "f": 1.5, "b": True, "none": None, "s": "hello"},
        "tup": (1, 2.5, "x"),
        "nested": [{"a": np.arange(4)}, (np.eye(2), "label")],
        "complex": np.array([1 + 2j, 3 - 4j]),
        "floaty": np.linspace(0, 1, 7),
        "empty": np.zeros((0, 3)),
    }
    path = str(tmp_path / "state.npz")
    save_state(path, state)
    restored = load_state(path)

    assert restored["scalars"] == state["scalars"]
    assert restored["tup"] == state["tup"]
    assert isinstance(restored["tup"], tuple)
    assert np.array_equal(restored["nested"][0]["a"], state["nested"][0]["a"])
    assert np.array_equal(restored["nested"][1][0], np.eye(2))
    assert restored["nested"][1][1] == "label"
    assert np.array_equal(restored["complex"], state["complex"])
    assert restored["complex"].dtype == np.complex128
    assert np.array_equal(restored["floaty"], state["floaty"])
    assert restored["empty"].shape == (0, 3)


def test_save_state_rejects_non_string_keys(tmp_path):
    with pytest.raises(TypeError, match="strings"):
        save_state(str(tmp_path / "bad.npz"), {1: "x"})


def test_save_state_rejects_reserved_keys(tmp_path):
    with pytest.raises(ValueError, match="__"):
        save_state(str(tmp_path / "bad.npz"), {"__array__": 1})


def test_save_state_rejects_unserialisable_objects(tmp_path):
    with pytest.raises(TypeError, match="cannot serialise"):
        save_state(str(tmp_path / "bad.npz"), {"obj": object()})


# --------------------------------------------------------------------------- #
# Pipeline state round trip
# --------------------------------------------------------------------------- #
def test_pipeline_state_round_trip_is_bit_exact(tmp_path):
    data, dt = make_multiscale_signal(n_sensors=12, n_timesteps=900)
    pipeline = OnlineAnalysisPipeline(
        dt=dt, config=CONFIG, node_of_row=np.arange(12) // 3
    )
    pipeline.ingest(data[:, :500])
    pipeline.ingest(data[:, 500:700])
    pipeline.fit_baseline()

    path = str(tmp_path / "pipeline.npz")
    save_state(path, pipeline.state_dict())
    restored = OnlineAnalysisPipeline.from_state_dict(load_state(path))

    assert np.array_equal(pipeline.reconstruction(), restored.reconstruction())
    assert np.array_equal(pipeline.spectrum().power, restored.spectrum().power)
    assert pipeline.rack_values() == restored.rack_values()

    # Streaming must continue identically after the round trip.
    chunk = data[:, 700:]
    assert pipeline.ingest(chunk) == restored.ingest(chunk)
    assert np.array_equal(pipeline.reconstruction(), restored.reconstruction())
    assert pipeline.rack_values() == restored.rack_values()


def test_pipeline_state_preserves_update_history():
    data, dt = make_multiscale_signal(n_sensors=8, n_timesteps=600)
    pipeline = OnlineAnalysisPipeline(dt=dt, config=CONFIG)
    pipeline.ingest(data[:, :300])
    pipeline.ingest(data[:, 300:450])
    pipeline.ingest(data[:, 450:])

    restored = OnlineAnalysisPipeline.from_state_dict(pipeline.state_dict())
    assert restored.model.history == pipeline.model.history
    assert np.array_equal(restored.model.drift_history, pipeline.model.drift_history)


# --------------------------------------------------------------------------- #
# Monitor checkpoint round trip
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def monitored_stream():
    scenario = quiet_fleet()
    generator = TelemetryGenerator(scenario.machine, seed=13, utilization_target=0.3)
    return generator.generate(
        560,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=(17, 18), start=260, delta=16.0)],
    )


def build_monitor(stream, sink=None):
    engine = AlertEngine(
        rules=[ZScoreRule()], sinks=[sink] if sink else [], cooldown=100
    )
    return FleetMonitor.from_stream(
        stream, policy=RackSharding(), config=CONFIG, alert_engine=engine
    )


def test_restored_monitor_matches_uninterrupted_run(monitored_stream, tmp_path):
    """The ISSUE acceptance property, as a test.

    Run A streams without interruption.  Run B checkpoints mid-stream,
    restores from disk, and streams the rest.  Every next-window product
    must match exactly.
    """
    values = monitored_stream.values
    splits = (240, 320, 400, 480, 560)

    # Run A: uninterrupted.
    mon_a = build_monitor(monitored_stream)
    lo = 0
    for hi in splits:
        mon_a.ingest(values[:, lo:hi])
        if lo > 0:
            mon_a.evaluate_alerts()
        lo = hi

    # Run B: checkpoint + restore after the second chunk.
    sink = RingBufferSink()
    mon_b = build_monitor(monitored_stream, sink)
    mon_b.ingest(values[:, :240])
    mon_b.ingest(values[:, 240:320])
    mon_b.evaluate_alerts()

    ckpt = save_checkpoint(str(tmp_path / "ckpt"), mon_b)
    assert ckpt.step == 320
    assert ckpt.n_shards == mon_b.n_shards
    assert ckpt.total_bytes > 0
    del mon_b

    mon_b = load_checkpoint(str(tmp_path / "ckpt"), rules=[ZScoreRule()], sinks=[sink])
    assert mon_b.step == 320
    for lo, hi in ((320, 400), (400, 480), (480, 560)):
        mon_b.ingest(values[:, lo:hi])
        mon_b.evaluate_alerts()

    assert mon_b.rack_values() == mon_a.rack_values()
    spec_a, spec_b = mon_a.spectra(), mon_b.spectra()
    for shard_id in spec_a:
        assert np.array_equal(spec_a[shard_id].power, spec_b[shard_id].power)
        assert np.array_equal(
            spec_a[shard_id].frequencies, spec_b[shard_id].frequencies
        )
    assert mon_b.node_zscores().zscores == pytest.approx(
        mon_a.node_zscores().zscores, abs=0.0
    )


def test_checkpoint_restores_alert_cooldown_state(monitored_stream, tmp_path):
    sink = RingBufferSink()
    monitor = build_monitor(monitored_stream, sink)
    monitor.ingest(monitored_stream.values[:, :320])
    fired = monitor.evaluate_alerts()
    assert fired or True  # cooldown state is what matters below
    before = monitor.alert_engine.state_dict()

    save_checkpoint(str(tmp_path / "ckpt"), monitor)
    restored = load_checkpoint(
        str(tmp_path / "ckpt"), rules=[ZScoreRule()], sinks=[sink]
    )
    assert restored.alert_engine is not None
    assert restored.alert_engine.state_dict()["last_fired"] == before["last_fired"]
    assert restored.alert_engine.cooldown == monitor.alert_engine.cooldown


def test_manifest_contents(monitored_stream, tmp_path):
    monitor = build_monitor(monitored_stream)
    monitor.ingest(monitored_stream.values[:, :240])
    save_checkpoint(str(tmp_path / "ckpt"), monitor)

    manifest = read_manifest(str(tmp_path / "ckpt"))
    assert manifest["version"] == 1
    assert manifest["step"] == 240
    assert len(manifest["shards"]) == monitor.n_shards
    assert len(manifest["shard_files"]) == monitor.n_shards
    for filename in manifest["shard_files"]:
        assert os.path.exists(str(tmp_path / "ckpt" / filename))


def test_manifest_version_check(monitored_stream, tmp_path):
    monitor = build_monitor(monitored_stream)
    monitor.ingest(monitored_stream.values[:, :240])
    save_checkpoint(str(tmp_path / "ckpt"), monitor)
    manifest_path = tmp_path / "ckpt" / "manifest.json"
    manifest_path.write_text(manifest_path.read_text().replace('"version": 1', '"version": 99'))
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(str(tmp_path / "ckpt"))


# --------------------------------------------------------------------------- #
# Rotating retention (save_checkpoint(..., keep_last=N))
# --------------------------------------------------------------------------- #
def test_rotated_checkpoints_prune_to_keep_last(monitored_stream, tmp_path):
    root = str(tmp_path / "rotating")
    monitor = build_monitor(monitored_stream)
    steps = (240, 320, 400, 480)
    lo = 0
    for hi in steps:
        monitor.ingest(monitored_stream.values[:, lo:hi])
        info = save_checkpoint(root, monitor, keep_last=2)
        assert info.directory.startswith(root)
        assert f"step_{hi:012d}" in info.directory
        lo = hi

    history = list_checkpoints(root)
    assert [entry.step for entry in history] == [480, 400], "newest first"
    for entry in history:
        assert os.path.isdir(entry.path)
        assert read_manifest(entry.path)["step"] == entry.step
    # Pruned entries are fully gone — no trash/tmp residue either.
    assert sorted(os.listdir(root)) == ["step_000000000400", "step_000000000480"]


def test_load_checkpoint_resumes_from_rotation_root(monitored_stream, tmp_path):
    root = str(tmp_path / "rotating")
    monitor = build_monitor(monitored_stream)
    monitor.ingest(monitored_stream.values[:, :240])
    save_checkpoint(root, monitor, keep_last=3)
    monitor.ingest(monitored_stream.values[:, 240:320])
    save_checkpoint(root, monitor, keep_last=3)

    assert resolve_checkpoint_dir(root) == list_checkpoints(root)[0].path
    restored = load_checkpoint(root, rules=[ZScoreRule()])
    assert restored.step == 320
    assert restored.rack_values() == monitor.rack_values()
    # An older entry is still loadable explicitly.
    older = load_checkpoint(list_checkpoints(root)[1].path)
    assert older.step == 240


def test_rollback_save_discards_abandoned_future_entries(monitored_stream, tmp_path):
    """Restore an older rotation entry, resume, checkpoint again: entries
    newer than the resumed timeline are from an abandoned future and must
    be discarded — and the just-written checkpoint must survive (it used
    to be pruned as the 'oldest' entry and the save crashed)."""
    root = str(tmp_path / "rotating")
    monitor = build_monitor(monitored_stream)
    lo = 0
    for hi in (240, 320, 400):
        monitor.ingest(monitored_stream.values[:, lo:hi])
        save_checkpoint(root, monitor, keep_last=2)
        lo = hi
    assert [e.step for e in list_checkpoints(root)] == [400, 320]

    # Roll back to step 320 and resume on a shorter cadence.
    rolled = load_checkpoint(list_checkpoints(root)[1].path, rules=[ZScoreRule()])
    rolled.ingest(monitored_stream.values[:, 320:360])
    info = save_checkpoint(root, rolled, keep_last=2)
    assert os.path.isdir(info.directory)
    history = list_checkpoints(root)
    assert [e.step for e in history] == [360, 320], "step_400 was abandoned"
    assert load_checkpoint(root).step == 360


def test_rotated_save_replaces_same_step(monitored_stream, tmp_path):
    root = str(tmp_path / "rotating")
    monitor = build_monitor(monitored_stream)
    monitor.ingest(monitored_stream.values[:, :240])
    save_checkpoint(root, monitor, keep_last=2)
    save_checkpoint(root, monitor, keep_last=2)  # same step again
    assert [entry.step for entry in list_checkpoints(root)] == [240]


def test_list_checkpoints_ignores_partial_and_foreign_entries(tmp_path):
    root = tmp_path / "rotating"
    root.mkdir()
    (root / "step_000000000100").mkdir()  # no manifest: incomplete write
    (root / "step_000000000200.tmp").mkdir()  # in-flight write
    (root / "not-a-checkpoint").mkdir()
    assert list_checkpoints(str(root)) == []
    with pytest.raises(FileNotFoundError, match="no checkpoint"):
        load_checkpoint(str(root))


def test_keep_last_validation(monitored_stream, tmp_path):
    monitor = build_monitor(monitored_stream)
    monitor.ingest(monitored_stream.values[:, :240])
    with pytest.raises(ValueError, match="keep_last"):
        save_checkpoint(str(tmp_path / "rot"), monitor, keep_last=0)

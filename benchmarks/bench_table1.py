"""Table I: initial-fit vs partial-fit completion time (SC Log / GPU Metrics).

Paper protocol: N = 1,000 series, T in {2,000, 5,000, 10,000, 16,000} time
points, then add 1,000 new time points incrementally; 6 levels for SC Log,
7 for GPU Metrics.  Paper numbers (seconds):

    SC Log       T=2k 3.62/3.77   5k 5.84/4.27   10k 7.63/4.18   16k 10.40/4.33
    GPU Metrics  T=2k 7.32/8.65   5k 20.91/10.58  10k 28.92/12.95  16k 62.80/18.62

Reproduced shape: the initial fit grows roughly monotonically with T while
the partial fit stays roughly flat (and far below the initial fit at the
largest T).  Absolute seconds are hardware- and scale-dependent.
"""

from __future__ import annotations

import pytest

from repro.core import IncrementalMrDMD, MrDMDConfig

from conftest import scaled

SC_LOG_LEVELS = 6
GPU_LEVELS = 7
CHUNK = 1_000
TIME_POINTS = [scaled(1_000, 2_000), scaled(2_000, 5_000), scaled(4_000, 10_000), scaled(8_000, 16_000)]
PAPER_ROWS = {
    "SC Log": {2_000: (3.621, 3.767), 5_000: (5.842, 4.269), 10_000: (7.631, 4.184), 16_000: (10.396, 4.326)},
    "GPU Metrics": {2_000: (7.315, 8.654), 5_000: (20.914, 10.583), 10_000: (28.916, 12.953), 16_000: (62.800, 18.619)},
}


def _fit_then_partial(data, dt, total, levels):
    model = IncrementalMrDMD(dt=dt, config=MrDMDConfig(max_levels=levels))
    model.fit(data[:, :total])
    return model


@pytest.mark.parametrize("total", TIME_POINTS)
def test_table1_sc_log_initial_fit(benchmark, sc_log_matrix, total):
    """SC Log column 'Initial Fit': batch fit over the first ``total`` steps."""
    data = sc_log_matrix
    config = MrDMDConfig(max_levels=SC_LOG_LEVELS)

    def run():
        IncrementalMrDMD(dt=15.0, config=config).fit(data[:, :total])

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["dataset"] = "SC Log"
    benchmark.extra_info["T"] = total
    benchmark.extra_info["column"] = "initial_fit"
    benchmark.extra_info["paper_seconds"] = PAPER_ROWS["SC Log"].get(total, None)


@pytest.mark.parametrize("total", TIME_POINTS)
def test_table1_sc_log_partial_fit(benchmark, sc_log_matrix, total):
    """SC Log column 'Partial Fit': incremental addition of 1,000 steps."""
    data = sc_log_matrix
    chunk = min(CHUNK, data.shape[1] - total)
    model = _fit_then_partial(data, 15.0, total, SC_LOG_LEVELS)

    def run():
        model.partial_fit(data[:, total : total + chunk])

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["dataset"] = "SC Log"
    benchmark.extra_info["T"] = total
    benchmark.extra_info["column"] = "partial_fit"
    benchmark.extra_info["paper_seconds"] = PAPER_ROWS["SC Log"].get(total, None)


@pytest.mark.parametrize("total", TIME_POINTS)
def test_table1_gpu_metrics_initial_fit(benchmark, gpu_metrics_matrix, total):
    """GPU Metrics column 'Initial Fit' (7 levels, 3-second cadence)."""
    data = gpu_metrics_matrix
    config = MrDMDConfig(max_levels=GPU_LEVELS)

    def run():
        IncrementalMrDMD(dt=3.0, config=config).fit(data[:, :total])

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["dataset"] = "GPU Metrics"
    benchmark.extra_info["T"] = total
    benchmark.extra_info["column"] = "initial_fit"
    benchmark.extra_info["paper_seconds"] = PAPER_ROWS["GPU Metrics"].get(total, None)


@pytest.mark.parametrize("total", TIME_POINTS)
def test_table1_gpu_metrics_partial_fit(benchmark, gpu_metrics_matrix, total):
    """GPU Metrics column 'Partial Fit'."""
    data = gpu_metrics_matrix
    chunk = min(CHUNK, data.shape[1] - total)
    model = _fit_then_partial(data, 3.0, total, GPU_LEVELS)

    def run():
        model.partial_fit(data[:, total : total + chunk])

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["dataset"] = "GPU Metrics"
    benchmark.extra_info["T"] = total
    benchmark.extra_info["column"] = "partial_fit"
    benchmark.extra_info["paper_seconds"] = PAPER_ROWS["GPU Metrics"].get(total, None)


def test_table1_shape_initial_grows_partial_flat(sc_log_matrix):
    """Non-timed assertion of Table I's qualitative shape (runs once)."""
    from repro.util import Timer

    data = sc_log_matrix
    config = MrDMDConfig(max_levels=SC_LOG_LEVELS)
    initial, partial = [], []
    for total in (TIME_POINTS[0], TIME_POINTS[-1]):
        chunk = min(CHUNK, data.shape[1] - total)
        model = IncrementalMrDMD(dt=15.0, config=config)
        with Timer() as timer:
            model.fit(data[:, :total])
        initial.append(timer.elapsed)
        with Timer() as timer:
            model.partial_fit(data[:, total : total + chunk])
        partial.append(timer.elapsed)
    assert initial[-1] > initial[0]
    assert partial[-1] < initial[-1]

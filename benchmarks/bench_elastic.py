"""Elastic-topology benchmarks: onboarding cost and partial-round scaling.

Two properties make the elastic topology production-shaped, and both are
asserted here (violations fail the build, mirroring the flat-ingest gate in
``bench_core_streaming.py``):

1. **Onboarding is O(k), not O(T).**  Adding ``k`` history-less sensors to
   a live :class:`~repro.core.IncrementalMrDMD` takes the all-zero-rows
   fast path: no right-factor materialisation, no refit.  The sweep times
   the same ``add_rows(k)`` event against models that have ingested
   increasingly long streams (under minimal retention) and asserts the
   cost stays flat as ``T`` grows — and sits far below a from-scratch
   refit of the retained timeline.

2. **Partial federation rounds cost what their participants cost.**  A
   staggered federation (half the machines per round) must pay per
   *participating* machine what a lockstep round pays per machine — the
   fan-out bookkeeping for absent machines has to be negligible.

Results land in ``BENCH_elastic.json`` next to this file (machine-readable;
uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import pickle

from repro.core import IncrementalMrDMD, MrDMDConfig
from repro.federation import FederatedMonitor, MachineRegistry
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, RackSharding
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite
from repro.util import Timer, chunk_indices

from conftest import SCALE, scaled

#: Where the machine-readable results land (committed + CI artifact).
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_elastic.json"
)

N_ROWS = scaled(192, 1000)
N_NEW = scaled(64, 256)
CHUNK = scaled(200, 1_000)
#: Stream lengths (in chunks) at which the onboarding event is timed.
HISTORY_CHUNKS = (2, 8, scaled(16, 64))
ONBOARD_REPEATS = 5
#: Onboarding at the longest history may exceed the shortest by at most
#: this factor (pure timing noise — the work is identical).
FLAT_MARGIN = scaled(3.0, 2.0)
#: Onboarding must beat a from-scratch refit by at least this factor at
#: the longest history.
REFIT_MARGIN = 3.0

MACHINE_COUNTS = (2, 4)
FED_HISTORY = scaled(800, 8_000)
FED_CHUNK = scaled(200, 2_000)
FED_INGESTS = 4
#: Per-participating-machine cost of a partial round may exceed the
#: lockstep per-machine cost by at most this factor.
PARTIAL_MARGIN = 1.6

CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=4))


# --------------------------------------------------------------------------- #
# 1. Onboarding cost vs stream length
# --------------------------------------------------------------------------- #
def _grown_model(n_chunks: int):
    """A model that has streamed ``n_chunks`` chunks under minimal retention."""
    import numpy as np

    rng = np.random.default_rng(1234)
    model = IncrementalMrDMD(
        dt=1.0,
        config=MrDMDConfig(max_levels=4),
        retain_data="none",
        level1_path="projected",
    )
    t = np.arange(CHUNK * (n_chunks + 1)) * 1.0
    base = np.sin(0.01 * t)[None, :] + 0.1 * rng.standard_normal(
        (N_ROWS, t.size)
    )
    model.fit(base[:, :CHUNK])
    for index in range(1, n_chunks + 1):
        model.partial_fit(base[:, index * CHUNK : (index + 1) * CHUNK])
    return model


def _onboard_seconds(model) -> float:
    """Median wall time of one ``add_rows(N_NEW)`` event (fresh copy each)."""
    samples = []
    for _ in range(ONBOARD_REPEATS):
        clone = pickle.loads(pickle.dumps(model))
        with Timer() as timer:
            clone.add_rows(N_NEW)
        samples.append(timer.elapsed)
    samples.sort()
    return samples[len(samples) // 2]


def test_onboarding_cost_is_independent_of_stream_length(benchmark):
    """add_rows(k) must stay flat as the ingested stream grows."""
    import numpy as np

    models = {n: _grown_model(n) for n in HISTORY_CHUNKS}

    def sweep() -> dict:
        onboard = {n: _onboard_seconds(models[n]) for n in HISTORY_CHUNKS}
        # From-scratch refit baseline at the longest history: what a
        # non-elastic system pays to accept a new sensor (re-fit over the
        # whole retained window at the grown width).
        longest = HISTORY_CHUNKS[-1]
        t_total = CHUNK * (longest + 1)
        rng = np.random.default_rng(99)
        refit_data = 0.1 * rng.standard_normal((N_ROWS + N_NEW, t_total))
        with Timer() as timer:
            IncrementalMrDMD(dt=1.0, config=MrDMDConfig(max_levels=4)).fit(
                refit_data
            )
        return {"onboard_seconds": onboard, "refit_seconds": timer.elapsed}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    onboard = result["onboard_seconds"]

    report = {
        "experiment": "elastic_onboarding_cost",
        "scale": SCALE,
        "n_rows": N_ROWS,
        "n_new_sensors": N_NEW,
        "chunk": CHUNK,
        "history_chunks": list(HISTORY_CHUNKS),
        "flat_margin": FLAT_MARGIN,
        "refit_margin": REFIT_MARGIN,
        "onboard_seconds": {str(n): onboard[n] for n in HISTORY_CHUNKS},
        "refit_seconds": result["refit_seconds"],
    }
    _merge_report(report)
    benchmark.extra_info.update(report)

    shortest = onboard[HISTORY_CHUNKS[0]]
    longest = onboard[HISTORY_CHUNKS[-1]]
    assert longest <= shortest * FLAT_MARGIN, (
        f"onboarding {N_NEW} sensors grew {longest / shortest:.2f}x from "
        f"{HISTORY_CHUNKS[0]} to {HISTORY_CHUNKS[-1]} chunks of history "
        f"(bound: {FLAT_MARGIN}x) — the event is no longer O(k)"
    )
    assert longest * REFIT_MARGIN <= result["refit_seconds"], (
        f"onboarding ({longest:.4f}s) is not meaningfully cheaper than a "
        f"from-scratch refit ({result['refit_seconds']:.4f}s)"
    )


# --------------------------------------------------------------------------- #
# 2. Partial federation rounds
# --------------------------------------------------------------------------- #
def _machine_description() -> MachineDescription:
    return MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=4,
        cabinets_per_rack=1,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )


def _fed_streams(n_machines: int) -> dict:
    machine = _machine_description()
    return {
        f"m{i}": TelemetryGenerator(
            machine, seed=500 + i, utilization_target=0.4
        ).generate(FED_HISTORY + FED_CHUNK, sensors=["cpu_temp"])
        for i in range(n_machines)
    }


def _per_machine_ingest_seconds(streams: dict, *, partial: bool) -> float:
    """Wall seconds per (machine, ingest) pair, lockstep or half-fleet rounds."""
    registry = MachineRegistry(
        {
            name: FleetMonitor.from_stream(
                stream, policy=RackSharding(), config=CONFIG
            )
            for name, stream in streams.items()
        }
    )
    federated = FederatedMonitor(registry)
    names = list(streams)
    half = max(1, len(names) // 2)
    bounds = [
        (FED_HISTORY + lo, FED_HISTORY + hi)
        for lo, hi in chunk_indices(FED_CHUNK, FED_CHUNK // FED_INGESTS)
    ]
    try:
        federated.ingest(
            {name: stream.values[:, :FED_HISTORY] for name, stream in streams.items()}
        )
        participations = 0
        with Timer() as timer:
            for round_index, (lo, hi) in enumerate(bounds):
                if partial:
                    # Alternate halves: every machine still sees every
                    # chunk, one round later than its sibling half.
                    members = (
                        names[:half] if round_index % 2 == 0 else names[half:]
                    )
                else:
                    members = names
                federated.ingest(
                    {name: streams[name].values[:, lo:hi] for name in members}
                )
                participations += len(members)
    finally:
        federated.close()
        registry.close()
    return timer.elapsed / participations


def test_partial_rounds_do_not_regress_per_ingest_cost(benchmark):
    """Per-participating-machine cost: partial rounds ~= lockstep rounds."""
    streams_by_count = {n: _fed_streams(n) for n in MACHINE_COUNTS}

    def sweep() -> dict:
        return {
            mode: {
                n: _per_machine_ingest_seconds(
                    streams_by_count[n], partial=(mode == "partial")
                )
                for n in MACHINE_COUNTS
            }
            for mode in ("lockstep", "partial")
        }

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)

    report = {
        "experiment": "elastic_partial_rounds",
        "scale": SCALE,
        "machine_counts": list(MACHINE_COUNTS),
        "history": FED_HISTORY,
        "chunk": FED_CHUNK // FED_INGESTS,
        "n_ingests": FED_INGESTS,
        "partial_margin": PARTIAL_MARGIN,
        "per_machine_ingest_seconds": {
            mode: {str(n): curves[mode][n] for n in MACHINE_COUNTS}
            for mode in curves
        },
    }
    _merge_report(report)
    benchmark.extra_info.update(report)

    for n in MACHINE_COUNTS:
        ratio = curves["partial"][n] / curves["lockstep"][n]
        assert ratio <= PARTIAL_MARGIN, (
            f"partial rounds cost {ratio:.2f}x lockstep per participating "
            f"machine at {n} machines (bound: {PARTIAL_MARGIN}x) — absent "
            f"machines are no longer free"
        )


# --------------------------------------------------------------------------- #
def _merge_report(section: dict) -> None:
    """Accumulate both experiments into one BENCH_elastic.json."""
    merged: dict = {}
    if os.path.exists(RESULT_PATH):
        with open(RESULT_PATH, "r", encoding="utf-8") as handle:
            try:
                merged = json.load(handle)
            except ValueError:
                merged = {}
    merged[section["experiment"]] = section
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)

"""Shared fixtures and scale knobs for the benchmark harness.

Every table/figure of the paper's evaluation has a corresponding
``bench_*.py`` module here.  Absolute problem sizes are scaled down from the
paper's (their substrate is a 4,392-node Cray and a Polaris node; ours is a
CI container) but every benchmark preserves the *structure* of the original
experiment — who is compared against whom, what grows, what should stay
flat — and records the paper's reference numbers in ``extra_info`` so the
generated report can be read side by side with the paper.

Set ``REPRO_BENCH_SCALE`` (default ``small``) to ``paper`` to run the
full-size experiments (hours of CPU time; needs tens of GB of RAM).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.telemetry import TelemetryGenerator, polaris_machine, theta_machine

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def scaled(small: int, paper: int) -> int:
    """Pick the small-scale or paper-scale value of a size parameter."""
    return paper if SCALE == "paper" else small


@pytest.fixture(scope="session")
def sc_log_generator() -> TelemetryGenerator:
    """Environment-log-like ("SC Log") telemetry source."""
    machine = theta_machine(racks_per_row=2, node_limit=256)
    return TelemetryGenerator(machine, seed=101, utilization_target=0.5)


@pytest.fixture(scope="session")
def gpu_metrics_generator() -> TelemetryGenerator:
    """GPU-metrics-like telemetry source (Polaris, 3-second cadence)."""
    machine = polaris_machine(node_limit=64)
    return TelemetryGenerator(machine, seed=103, utilization_target=0.6)


@pytest.fixture(scope="session")
def sc_log_matrix(sc_log_generator) -> np.ndarray:
    """A reusable SC-Log matrix large enough for the Table I rows."""
    n_series = scaled(200, 1000)
    n_steps = scaled(9_000, 17_000)
    return sc_log_generator.generate_matrix(n_series, n_steps)


@pytest.fixture(scope="session")
def gpu_metrics_matrix(gpu_metrics_generator) -> np.ndarray:
    """A reusable GPU-metrics matrix for the Table I rows."""
    n_series = scaled(200, 1000)
    n_steps = scaled(9_000, 17_000)
    return gpu_metrics_generator.generate_matrix(n_series, n_steps)


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="force the small-scale benchmark sizes (CI smoke mode), "
        "overriding REPRO_BENCH_SCALE",
    )


def pytest_configure(config):
    global SCALE
    if config.getoption("--quick"):
        SCALE = "small"

"""Trace-propagation overhead gate: causal telemetry must ride for free.

PR 9 ships a ``(trace_id, parent span id)`` context with every process-
backend shard task, calibrates each worker's clock, and records one
``executor.task`` span per task inside the worker.  That surface sits on
the per-chunk dispatch path, so it is gated the same way the disabled
provider is gated in ``bench_obs_overhead.py`` — structurally, because
wall-clock deltas of this magnitude are CI noise:

1. time the propagation surface directly (context capture + tuple pickle
   on the coordinator, adopt + span enter/exit on an enabled worker-style
   provider);
2. multiply by the tasks one fleet chunk dispatches (with 2x headroom for
   calibration re-syncs and drains);
3. bound the product against the measured process-backend chunk time:
   **< 3 %**.

The enabled-vs-disabled wall clock of the same process-backend workload is
also measured and reported (not gated — IPC jitter dominates at CI scale).
Results land in ``BENCH_trace.json`` (machine-readable; CI artifact).
"""

from __future__ import annotations

import json
import os
import pickle

from repro import obs
from repro.core import MrDMDConfig
from repro.obs import OBS
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, RackSharding
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite
from repro.util import Timer
from repro.util.parallel import _current_trace_context

from conftest import SCALE, scaled

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_trace.json"
)

HISTORY = scaled(1_200, 10_000)
CHUNK = scaled(300, 2_000)
N_CHUNKS = 4
N_SHARDS = 8
MAX_WORKERS = 2
CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(5, 8)))

#: Propagation surface must stay under this fraction of one chunk.
PROPAGATION_BOUND = 0.03
#: Reps when timing the per-task propagation surface.
SURFACE_REPS = 20_000


def _fleet_stream():
    machine = MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=N_SHARDS,
        cabinets_per_rack=2,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )
    generator = TelemetryGenerator(machine, seed=311, utilization_target=0.4)
    return generator.generate(HISTORY + N_CHUNKS * CHUNK, sensors=["cpu_temp"])


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _chunk_seconds(stream, *, enabled: bool) -> list[float]:
    """Median process-backend chunk time with the provider on or off."""
    OBS.reset()
    if enabled:
        obs.enable()
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        executor="process",
        max_workers=MAX_WORKERS,
    )
    samples = []
    with monitor:
        monitor.ingest(stream.values[:, :HISTORY])
        position = HISTORY
        for _ in range(N_CHUNKS):
            chunk = stream.values[:, position : position + CHUNK]
            with Timer() as timer:
                monitor.ingest(chunk)
            samples.append(timer.elapsed)
            position += CHUNK
    OBS.reset()
    return samples


def _per_task_propagation_seconds() -> float:
    """Mean cost of the full propagation surface for one task.

    Coordinator side: capture the current context and pickle the tuple it
    ships as.  Worker side: adopt the context and run the ``executor.task``
    span against an enabled provider with a ring sink — exactly what
    ``run_one`` adds per task when tracing is on.
    """
    obs.enable()
    with OBS.span("bench.round"):
        ctx = _current_trace_context()
        with Timer() as timer:
            for _ in range(SURFACE_REPS):
                shipped = pickle.dumps(tuple(_current_trace_context()))
                received = pickle.loads(shipped)
                with OBS.tracer.adopt(received):
                    with OBS.span("executor.task", shard="rack-0",
                                  backend="process"):
                        pass
        assert ctx is not None
    OBS.reset()
    return timer.elapsed / SURFACE_REPS


def test_trace_propagation_gate(benchmark):
    stream = _fleet_stream()

    def measure() -> dict:
        baseline = _chunk_seconds(stream, enabled=False)
        enabled = _chunk_seconds(stream, enabled=True)
        per_task = _per_task_propagation_seconds()
        return {
            "baseline_chunk_seconds": _median(baseline),
            "enabled_chunk_seconds": _median(enabled),
            "per_task_propagation_seconds": per_task,
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)

    # One task per shard per chunk; 2x headroom covers calibration
    # re-syncs, drains and the per-worker enable round trips.
    tasks_per_chunk = 2.0 * N_SHARDS
    propagation_fraction = (
        result["per_task_propagation_seconds"] * tasks_per_chunk
        / result["baseline_chunk_seconds"]
    )
    wallclock_fraction = (
        result["enabled_chunk_seconds"] / result["baseline_chunk_seconds"] - 1.0
    )

    report = {
        "experiment": "trace_propagation_overhead",
        "scale": SCALE,
        "backend": "process",
        "n_shards": N_SHARDS,
        "max_workers": MAX_WORKERS,
        "history": HISTORY,
        "chunk": CHUNK,
        "n_chunks": N_CHUNKS,
        "tasks_per_chunk_budget": tasks_per_chunk,
        "propagation_bound": PROPAGATION_BOUND,
        "propagation_overhead_fraction": propagation_fraction,
        "wallclock_overhead_fraction": wallclock_fraction,
        **result,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump({"trace_propagation": report}, handle, indent=2)
    benchmark.extra_info.update(report)

    assert propagation_fraction < PROPAGATION_BOUND, (
        f"trace propagation costs {propagation_fraction:.2%} of a process-"
        f"backend chunk ({tasks_per_chunk:.0f} tasks x "
        f"{result['per_task_propagation_seconds'] * 1e6:.1f} us vs "
        f"{result['baseline_chunk_seconds'] * 1e3:.1f} ms; bound "
        f"{PROPAGATION_BOUND:.0%}) — context shipping left the noise floor"
    )

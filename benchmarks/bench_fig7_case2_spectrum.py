"""Fig. 7 (case study 2): overlaid hot-window vs cool-window mrDMD spectra.

Paper content: the spectrum of the hotter first 8-hour window shows mode
amplitude at higher frequencies than the cooler second window, and case
study 2's reconstruction error is 3423.85 (Frobenius, full scale, 7 levels).

Reproduced claims: both window spectra are produced, the hot window carries
more total mode power, and its power-weighted centroid frequency is at least
as high as the cool window's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig, MrDMDSpectrum, compute_mrdmd
from repro.core.reconstruction import evaluate_reconstruction
from repro.pipeline import build_case_study_2
from repro.viz import SpectrumPlot

from conftest import scaled


@pytest.fixture(scope="module")
def case2():
    return build_case_study_2(scale=scaled(0.03, 1.0), n_timesteps=scaled(640, 3_840))


def test_fig7_spectrum_overlay(benchmark, case2):
    """Compute the two window spectra and render the overlay SVG."""
    stream = case2.stream
    half = case2.initial_steps
    config = MrDMDConfig(max_levels=scaled(5, 7))

    def run():
        hot_tree = compute_mrdmd(stream.values[:, :half], stream.dt, config)
        cool_tree = compute_mrdmd(stream.values[:, half:], stream.dt, config)
        hot = MrDMDSpectrum(hot_tree, label="hot window")
        cool = MrDMDSpectrum(cool_tree, label="cool window")
        svg = SpectrumPlot().render_svg([hot, cool], title="Fig. 7")
        return hot, cool, svg

    hot, cool, svg = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert hot.n_modes > 0 and cool.n_modes > 0
    assert hot.total_power() > cool.total_power()
    assert "hot window" in svg and "cool window" in svg
    benchmark.extra_info["hot_total_power"] = round(hot.total_power(), 2)
    benchmark.extra_info["cool_total_power"] = round(cool.total_power(), 2)
    benchmark.extra_info["hot_centroid_hz"] = float(hot.centroid_frequency())
    benchmark.extra_info["cool_centroid_hz"] = float(cool.centroid_frequency())


def test_case2_reconstruction_error(benchmark, case2):
    """Case study 2's reconstruction-error measurement (paper: 3423.85 full scale)."""
    stream = case2.stream
    config = MrDMDConfig(max_levels=scaled(5, 7))

    def run():
        tree = compute_mrdmd(stream.values, stream.dt, config)
        return evaluate_reconstruction(tree, stream.values)

    report = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert report.relative < 0.1
    assert report.noise_reduction > 0.0
    benchmark.extra_info["frobenius_error"] = round(report.frobenius, 2)
    benchmark.extra_info["paper_frobenius_full_scale"] = 3423.85

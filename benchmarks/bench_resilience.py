"""Resilience overhead gates: fault-free supervision must be near-free.

The supervised ingest path (per-task deadlines, retry bookkeeping, the
recovery store's chunk tail and periodic state snapshots) wraps every
chunk of every shard, so it is only acceptable if a **fault-free** run
pays almost nothing for it:

1. **Fault-free supervision < 5 % per chunk** (gated).  Wall-clock deltas
   at this magnitude are CI noise (same rationale as the disabled gate in
   ``bench_obs_overhead``), so the gate is *structural*: time the
   supervision surface a fault-free chunk actually touches — the
   per-shard validation scan, the recovery store's chunk-tail copy and
   the amortised share of its periodic state snapshot — and bound the
   sum (with 2x headroom) against the measured baseline chunk time.  The
   interleaved wall-clock comparison is still reported for reference.

2. **Recovery cost** (reported, not gated).  The same supervised workload
   with one injected transient crash: how much the faulted round costs
   over a clean one — backoff sleep, shard rehydration from the last
   snapshot, and chunk-tail replay, all of it bounded by the policy's
   ``snapshot_every``.

Results land in ``BENCH_resilience.json`` next to this file
(machine-readable; uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core import MrDMDConfig
from repro.pipeline import PipelineConfig
from repro.resilience import FaultKind, FaultPlan, FaultSpec, ResiliencePolicy
from repro.service import FleetMonitor, RackSharding
from repro.service.alerts import AlertEngine, default_rules
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite
from repro.util import Timer

from conftest import SCALE, scaled

#: Where the machine-readable results land (committed + CI artifact).
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_resilience.json"
)

HISTORY = scaled(1_200, 10_000)
CHUNK = scaled(300, 2_000)
#: Measured chunks per monitor (interleaved unsupervised/supervised).
N_CHUNKS = 8
#: Unmeasured chunks fed to each monitor first (cache/allocator warmup).
WARMUP_CHUNKS = 1
CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(5, 8)))

#: Fault-free supervision may cost at most this fraction of a chunk.
OVERHEAD_BOUND = 0.05
POLICY = ResiliencePolicy(
    max_attempts=3,
    task_deadline=60.0,
    backoff_base=0.001,
    backoff_cap=0.002,
    seed=8,
)


def _fleet_stream():
    """cpu_temp telemetry for a 256-node, 8-rack machine (8 rack shards)."""
    machine = MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=8,
        cabinets_per_rack=2,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )
    generator = TelemetryGenerator(machine, seed=311, utilization_target=0.4)
    return generator.generate(
        HISTORY + (WARMUP_CHUNKS + N_CHUNKS + 1) * CHUNK, sensors=["cpu_temp"]
    )


def _fitted_monitor(stream, *, resilience=None, fault_plan=None) -> FleetMonitor:
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        alert_engine=AlertEngine(rules=default_rules(), cooldown=10_000),
        resilience=resilience,
        fault_plan=fault_plan,
    )
    monitor.ingest(stream.values[:, :HISTORY])
    return monitor


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def test_resilience_overhead_gate(benchmark):
    stream = _fleet_stream()

    def measure() -> dict:
        plain_monitor = _fitted_monitor(stream)
        supervised_monitor = _fitted_monitor(stream, resilience=POLICY)

        plain, supervised = [], []
        position = HISTORY
        for index in range(WARMUP_CHUNKS + N_CHUNKS):
            chunk = stream.values[:, position : position + CHUNK]
            with Timer() as timer:
                plain_monitor.ingest_and_alert(chunk)
            if index >= WARMUP_CHUNKS:
                plain.append(timer.elapsed)
            with Timer() as timer:
                supervised_monitor.ingest_and_alert(chunk)
            if index >= WARMUP_CHUNKS:
                supervised.append(timer.elapsed)
            position += CHUNK

        # Recovery cost: a fresh supervised monitor whose second round is
        # hit by a transient crash — the retry rehydrates the shard from
        # the recovery store and replays the tail before resubmitting.
        chaos_monitor = _fitted_monitor(
            stream,
            resilience=POLICY,
            fault_plan=FaultPlan(
                [FaultSpec(FaultKind.CRASH, "rack-0", 2)], seed=8
            ),
        )
        clean_chunk = stream.values[:, HISTORY : HISTORY + CHUNK]
        with Timer() as timer:
            chaos_monitor.ingest_and_alert(clean_chunk)
        faulted_round = timer.elapsed
        assert chaos_monitor.quarantined_shards == ()

        # Structural supervision surface of one fault-free chunk: the
        # validation scan and recovery-tail copy every round pays, plus
        # the amortised share of a full periodic state snapshot.
        reps = 20
        with Timer() as timer:
            for _ in range(reps):
                for spec in supervised_monitor.shards:
                    part = spec.take(clean_chunk)
                    np.isfinite(part).all()
                    np.array(part, dtype=float, copy=True)
        tail_seconds = timer.elapsed / reps
        with Timer() as timer:
            for spec in supervised_monitor.shards:
                supervised_monitor.shard_state_dict(spec.shard_id)
        snapshot_seconds = timer.elapsed / POLICY.snapshot_every

        return {
            "plain_chunk_seconds": _median(plain),
            "supervised_chunk_seconds": _median(supervised),
            # Best-of-N for the gate: CI noise only ever *adds* time, so
            # the minima isolate the structural overhead from scheduler
            # and frequency bursts that medians still let through.
            "plain_chunk_seconds_best": min(plain),
            "supervised_chunk_seconds_best": min(supervised),
            "faulted_round_seconds": faulted_round,
            # 2x headroom absorbs task bookkeeping the surface model skips.
            "supervision_cost_seconds": 2.0 * (tail_seconds + snapshot_seconds),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)

    overhead_fraction = (
        result["supervision_cost_seconds"] / result["plain_chunk_seconds_best"]
    )
    wall_overhead_fraction = (
        result["supervised_chunk_seconds"] / result["plain_chunk_seconds"] - 1.0
    )
    recovery_cost_seconds = max(
        0.0, result["faulted_round_seconds"] - result["supervised_chunk_seconds"]
    )

    report = {
        "experiment": "resilience_overhead",
        "scale": SCALE,
        "n_shards": 8,
        "history": HISTORY,
        "chunk": CHUNK,
        "n_chunks": N_CHUNKS,
        "overhead_bound": OVERHEAD_BOUND,
        "overhead_fraction": overhead_fraction,
        "wall_overhead_fraction": wall_overhead_fraction,
        "recovery_cost_seconds": recovery_cost_seconds,
        "snapshot_every": POLICY.snapshot_every,
        **result,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump({"resilience_overhead": report}, handle, indent=2)
    benchmark.extra_info.update(report)

    assert overhead_fraction < OVERHEAD_BOUND, (
        f"fault-free supervision costs {overhead_fraction:.2%} of a chunk "
        f"({result['supervision_cost_seconds'] * 1e3:.2f} ms surface vs "
        f"{result['plain_chunk_seconds_best'] * 1e3:.1f} ms chunk; bound "
        f"{OVERHEAD_BOUND:.0%}) — the supervised hot path regressed"
    )

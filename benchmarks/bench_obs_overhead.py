"""Observability overhead gates: disabled must be free, enabled must be cheap.

``repro.obs`` lives permanently inside the ingest hot path — ISVD updates,
mrDMD phases, shard dispatch, chunk accounting — which is only acceptable
if the **disabled** provider (the default) costs nothing measurable.  Two
gates, both failing the build on violation:

1. **Disabled < 2 % per chunk.**  Wall-clock deltas at this magnitude are
   pure CI noise, so the gate is *structural*: time the disabled provider's
   no-op surface directly (span enter/exit, counter/gauge/histogram calls),
   count how many provider calls one fleet chunk actually makes (from an
   enabled run's own instruments), and bound their product against the
   measured baseline chunk time.

2. **Enabled < 10 % per chunk.**  Median per-chunk wall clock of the same
   workload on two identical monitors — provider off vs provider on
   (metrics + ring-buffer tracing) — ingesting alternately so machine
   drift hits both sides equally.

Results land in ``BENCH_obs.json`` next to this file (machine-readable;
uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os

from repro import obs
from repro.core import MrDMDConfig
from repro.obs import OBS
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, RackSharding
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite
from repro.util import Timer

from conftest import SCALE, scaled

#: Where the machine-readable results land (committed + CI artifact).
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_obs.json"
)

HISTORY = scaled(1_200, 10_000)
CHUNK = scaled(300, 2_000)
#: Measured chunks per monitor (interleaved baseline/enabled).
N_CHUNKS = 6
CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(5, 8)))

DISABLED_BOUND = 0.02
ENABLED_BOUND = 0.10
#: Calls timed when measuring the disabled no-op surface.
NOOP_REPS = 200_000


def _fleet_stream():
    """cpu_temp telemetry for a 256-node, 8-rack machine (8 rack shards)."""
    machine = MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=8,
        cabinets_per_rack=2,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )
    generator = TelemetryGenerator(machine, seed=307, utilization_target=0.4)
    return generator.generate(HISTORY + 2 * N_CHUNKS * CHUNK, sensors=["cpu_temp"])


def _fitted_monitor(stream) -> FleetMonitor:
    monitor = FleetMonitor.from_stream(stream, policy=RackSharding(), config=CONFIG)
    monitor.ingest(stream.values[:, :HISTORY])
    return monitor


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _disabled_call_seconds() -> float:
    """Mean cost of one provider call while disabled (the default state)."""
    assert not OBS.enabled
    with Timer() as timer:
        for _ in range(NOOP_REPS // 4):
            with OBS.span("bench.noop", shard="rack-0"):
                pass
            OBS.inc("bench.noop", 1, shard="rack-0")
            OBS.gauge("bench.noop", 1.0, shard="rack-0")
            OBS.observe("bench.noop", 1.0, shard="rack-0")
    return timer.elapsed / NOOP_REPS


def _calls_per_chunk(totals: dict, n_chunks: int) -> float:
    """Upper-bound estimate of provider calls one chunk makes, recovered
    from the enabled run's own instruments: every histogram observation
    and gauge sample is one call; spans cost ~3 (enter, observe, emit);
    counters don't record call counts, so budget one inc per counter
    instrument per chunk.  A final 2x headroom absorbs anything missed."""
    observations = sum(
        value for key, value in totals.items() if key.endswith(".count")
    )
    span_calls = 3.0 * sum(
        value for key, value in totals.items()
        if key.startswith("span.") and key.endswith(".count")
    )
    n_counters = sum(
        1 for key in totals
        if not key.endswith(".count") and not key.startswith("service.shard.")
    )
    return 2.0 * (observations + span_calls) / n_chunks + 2.0 * n_counters


def test_obs_overhead_gates(benchmark):
    stream = _fleet_stream()

    def measure() -> dict:
        OBS.reset()
        baseline_monitor = _fitted_monitor(stream)
        obs.enable()  # ring-buffer tracing + metrics, no file sink
        enabled_monitor = _fitted_monitor(stream)
        obs.disable()

        baseline, enabled = [], []
        position = HISTORY
        for _ in range(N_CHUNKS):
            chunk = stream.values[:, position : position + CHUNK]
            with Timer() as timer:
                baseline_monitor.ingest(chunk)
            baseline.append(timer.elapsed)
            OBS.enabled = True
            with Timer() as timer:
                enabled_monitor.ingest(chunk)
            enabled.append(timer.elapsed)
            OBS.enabled = False
            position += CHUNK

        totals = OBS.metrics.totals()
        OBS.reset()
        per_call = _disabled_call_seconds()
        return {
            "baseline_chunk_seconds": _median(baseline),
            "enabled_chunk_seconds": _median(enabled),
            "noop_call_seconds": per_call,
            # +1: the initial fit chunk also records.
            "calls_per_chunk": _calls_per_chunk(totals, N_CHUNKS + 1),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)

    disabled_fraction = (
        result["noop_call_seconds"] * result["calls_per_chunk"]
        / result["baseline_chunk_seconds"]
    )
    enabled_fraction = (
        result["enabled_chunk_seconds"] / result["baseline_chunk_seconds"] - 1.0
    )

    report = {
        "experiment": "obs_overhead",
        "scale": SCALE,
        "n_shards": 8,
        "history": HISTORY,
        "chunk": CHUNK,
        "n_chunks": N_CHUNKS,
        "disabled_bound": DISABLED_BOUND,
        "enabled_bound": ENABLED_BOUND,
        "disabled_overhead_fraction": disabled_fraction,
        "enabled_overhead_fraction": enabled_fraction,
        **result,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump({"obs_overhead": report}, handle, indent=2)
    benchmark.extra_info.update(report)

    assert disabled_fraction < DISABLED_BOUND, (
        f"disabled provider costs {disabled_fraction:.2%} of a chunk "
        f"({result['calls_per_chunk']:.0f} calls x "
        f"{result['noop_call_seconds'] * 1e9:.0f} ns vs "
        f"{result['baseline_chunk_seconds'] * 1e3:.1f} ms; bound "
        f"{DISABLED_BOUND:.0%}) — the no-op path regressed"
    )
    assert enabled_fraction < ENABLED_BOUND, (
        f"enabled provider costs {enabled_fraction:.2%} of a chunk (bound "
        f"{ENABLED_BOUND:.0%}) — instrumentation left the noise floor"
    )

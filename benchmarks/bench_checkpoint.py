"""Zero-stall persistence gates: delta saves and async writer stalls.

PR 10 moved checkpointing off the per-chunk critical path in two steps —
delta entries that only serialise shards whose revision stamp moved, and
an asynchronous writer that commits entries on a background thread.  Both
are only acceptable if they are *actually* cheap and *provably* lossless:

1. **Delta save < 25 % of a full save** (gated).  An 8-shard fleet where
   exactly one shard changed between rotations must re-serialise one
   shard, not eight: the timed delta save (1 dirty / 8 shards) must come
   in under a quarter of the timed full save of the same state.

2. **Async stall < 5 % of a chunk** (gated).  Ingesting with periodic
   ``mode="async"`` saves, the per-chunk ingest-side stall — the
   synchronous exposure of each save (state capture plus writer
   handoff, reported in ``CheckpointInfo.stall_seconds``), amortised
   over the chunks between saves — must stay under 5 % of the median
   chunk ingest time: the writer absorbs serialisation and disk, the
   chunk loop pays only the snapshot copy.

3. **Restore parity** (asserted, not timed).  The sync-full, sync-delta
   and flushed async-delta checkpoints of the same monitor state must
   all restore bit-for-bit identical shard state dicts.

Results land in ``BENCH_checkpoint.json`` next to this file
(machine-readable; uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile

from repro.core import MrDMDConfig
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, RackSharding
from repro.service.alerts import AlertEngine, default_rules
from repro.service.checkpoint import load_checkpoint, save_checkpoint
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite
from repro.util import Timer

from conftest import SCALE, scaled

#: Where the machine-readable results land (committed + CI artifact).
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_checkpoint.json"
)

HISTORY = scaled(1_200, 10_000)
CHUNK = scaled(300, 2_000)
#: Timed save repetitions (best-of, same rationale as bench_resilience).
N_REPS = 3
#: Measured streaming chunks for the async-stall gate.
N_CHUNKS = 8
#: Async saves fire every this many chunks — a steady cadence the writer
#: can absorb (a save every chunk with an 8/8-dirty delta degenerates to
#: full-save bandwidth and measures the disk, not the handoff).
ASYNC_EVERY = 2
CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(5, 8)))

#: A 1-dirty/8-shard delta save must cost at most this fraction of full.
DELTA_BOUND = 0.25
#: Ingest-side async stall may cost at most this fraction of a chunk.
STALL_BOUND = 0.05


def _fleet_stream():
    """cpu_temp telemetry for a 256-node, 8-rack machine (8 rack shards)."""
    machine = MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=8,
        cabinets_per_rack=2,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )
    generator = TelemetryGenerator(machine, seed=419, utilization_target=0.4)
    return generator.generate(
        HISTORY + (N_REPS + N_CHUNKS + 2) * CHUNK, sensors=["cpu_temp"]
    )


def _fitted_monitor(stream) -> FleetMonitor:
    monitor = FleetMonitor.from_stream(
        stream,
        policy=RackSharding(),
        config=CONFIG,
        alert_engine=AlertEngine(rules=default_rules(), cooldown=10_000),
    )
    monitor.ingest(stream.values[:, :HISTORY])
    return monitor


def _dirty_one_shard(monitor: FleetMonitor, chunk) -> None:
    """Advance exactly one shard's pipeline (serial backend, in-process)."""
    spec = monitor.shards[0]
    monitor._pipelines[spec.shard_id].ingest(spec.take(chunk))


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _shard_reprs(monitor: FleetMonitor) -> dict[str, str]:
    return {
        spec.shard_id: repr(monitor.shard_state_dict(spec.shard_id))
        for spec in monitor.shards
    }


def test_checkpoint_gates(benchmark):
    stream = _fleet_stream()
    workdir = tempfile.mkdtemp(prefix="bench-checkpoint-")

    def measure() -> dict:
        monitor = _fitted_monitor(stream)
        full_dir = os.path.join(workdir, "full")
        delta_dir = os.path.join(workdir, "delta")
        async_dir = os.path.join(workdir, "async")

        # Seed the delta rotation so later saves have an entry to share
        # blocks with — the steady state the delta format is built for.
        save_checkpoint(delta_dir, monitor, keep_last=2, format="delta")

        # Gate 1: 1 dirty shard out of 8, timed full vs timed delta of
        # the *same* state.  Each rep dirties one shard first so the
        # delta save has exactly one block to write.
        full_seconds, delta_seconds = [], []
        reused = 0
        position = HISTORY
        for _ in range(N_REPS):
            _dirty_one_shard(monitor, stream.values[:, position : position + CHUNK])
            position += CHUNK
            with Timer() as timer:
                save_checkpoint(full_dir, monitor, keep_last=2, format="full")
            full_seconds.append(timer.elapsed)
            with Timer() as timer:
                info = save_checkpoint(
                    delta_dir, monitor, keep_last=2, format="delta"
                )
            delta_seconds.append(timer.elapsed)
            reused = info.shards_reused

        # Restore parity: sync full and sync delta of the same state.
        live = _shard_reprs(monitor)
        restored_full = load_checkpoint(full_dir, rules=default_rules())
        restored_delta = load_checkpoint(delta_dir, rules=default_rules())
        assert _shard_reprs(restored_full) == live, "full restore drifted"
        assert _shard_reprs(restored_delta) == live, "delta restore drifted"
        restored_full.close()
        restored_delta.close()
        bytes_written = info.bytes_written
        bytes_referenced = info.bytes_referenced
        monitor.close()

        # Gate 2: streaming with periodic async delta saves; the chunk
        # loop's only exposure is the capture plus the (bounded-queue)
        # writer handoff, reported per save as stall_seconds.
        monitor = _fitted_monitor(stream)
        chunk_seconds, stall_seconds, save_call_seconds = [], [], []
        position = HISTORY
        for index in range(1, N_CHUNKS + 1):
            chunk = stream.values[:, position : position + CHUNK]
            position += CHUNK
            with Timer() as timer:
                monitor.ingest_and_alert(chunk)
            chunk_seconds.append(timer.elapsed)
            if index % ASYNC_EVERY == 0:
                with Timer() as timer:
                    info = save_checkpoint(
                        async_dir,
                        monitor,
                        keep_last=2,
                        format="delta",
                        mode="async",
                    )
                save_call_seconds.append(timer.elapsed)
                stall_seconds.append(info.stall_seconds)
        monitor.flush_checkpoints()

        # Restore parity: the flushed async delta rotation's newest entry
        # is the state at the last save, which was the last chunk.
        live = _shard_reprs(monitor)
        restored_async = load_checkpoint(async_dir, rules=default_rules())
        assert _shard_reprs(restored_async) == live, "async restore drifted"
        assert restored_async.step == monitor.step
        restored_async.close()
        monitor.close()

        return {
            "full_save_seconds": _median(full_seconds),
            "delta_save_seconds": _median(delta_seconds),
            "full_save_seconds_best": min(full_seconds),
            "delta_save_seconds_best": min(delta_seconds),
            "shards_reused": reused,
            "bytes_written": bytes_written,
            "bytes_referenced": bytes_referenced,
            "chunk_seconds": _median(chunk_seconds),
            "async_stall_seconds": _median(stall_seconds),
            "async_stall_seconds_max": max(stall_seconds),
            "async_stall_per_chunk_seconds": sum(stall_seconds) / N_CHUNKS,
            "async_save_call_seconds": _median(save_call_seconds),
            "n_async_saves": len(stall_seconds),
        }

    try:
        result = benchmark.pedantic(
            measure, rounds=1, iterations=1, warmup_rounds=0
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    delta_fraction = (
        result["delta_save_seconds_best"] / result["full_save_seconds_best"]
    )
    stall_fraction = (
        result["async_stall_per_chunk_seconds"] / result["chunk_seconds"]
    )

    report = {
        "experiment": "checkpoint_persistence",
        "scale": SCALE,
        "n_shards": 8,
        "dirty_shards": 1,
        "history": HISTORY,
        "chunk": CHUNK,
        "async_every": ASYNC_EVERY,
        "delta_bound": DELTA_BOUND,
        "delta_fraction": delta_fraction,
        "stall_bound": STALL_BOUND,
        "stall_fraction": stall_fraction,
        "restore_parity": True,
        **result,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump({"checkpoint_persistence": report}, handle, indent=2)
    benchmark.extra_info.update(report)

    assert result["shards_reused"] == 7, (
        f"expected 7 of 8 shards reused by the 1-dirty delta save, got "
        f"{result['shards_reused']} — dirty tracking regressed"
    )
    assert delta_fraction < DELTA_BOUND, (
        f"1-dirty/8-shard delta save costs {delta_fraction:.0%} of a full "
        f"save ({result['delta_save_seconds_best'] * 1e3:.1f} ms vs "
        f"{result['full_save_seconds_best'] * 1e3:.1f} ms; bound "
        f"{DELTA_BOUND:.0%}) — incremental persistence regressed"
    )
    assert stall_fraction < STALL_BOUND, (
        f"async saves stall ingest {stall_fraction:.2%} per chunk "
        f"({result['async_stall_per_chunk_seconds'] * 1e3:.2f} ms amortised "
        f"vs {result['chunk_seconds'] * 1e3:.1f} ms chunk; bound "
        f"{STALL_BOUND:.0%}) — checkpointing is back on the critical path"
    )

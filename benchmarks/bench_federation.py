"""Federation benchmarks: per-ingest wall time vs machine count.

A federation is only worth its layer if adding machines costs what the
machines themselves cost — fan-out bookkeeping (registry, router, product
merge) must stay negligible and per-ingest wall time must grow **at most
linearly** with machine count on the serial backend (each machine's chunk
is independent work) while the thread backend overlaps machines and lands
below serial at fleet sizes.

The sweep ingests identical per-machine chunk protocols through a
:class:`~repro.federation.FederatedMonitor` at increasing machine counts,
records per-ingest wall time for the serial and thread fan-out backends,
**asserts** the near-linear serial bound (super-linear growth fails the
build, mirroring ``bench_core_streaming.py``'s flat-ingest gate), and
writes the curves to ``BENCH_federation.json`` next to this file
(machine-readable; uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import MrDMDConfig
from repro.federation import FederatedMonitor, MachineRegistry
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, RackSharding
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite
from repro.util import Timer, chunk_indices

from conftest import SCALE, scaled

#: Where the machine-readable results land (committed + CI artifact).
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_federation.json"
)

MACHINE_COUNTS = (1, 2, 4)
HISTORY = scaled(800, 8_000)
CHUNK = scaled(200, 2_000)
N_INGESTS = 4
CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(4, 6)))
#: Serial per-ingest time at N machines may exceed N x the 1-machine time
#: by at most this factor (fan-out bookkeeping + scheduler noise).
LINEAR_MARGIN = 1.6


def _machine_description() -> MachineDescription:
    """64 nodes in 4 racks per machine (the scenario catalog's shape)."""
    return MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=4,
        cabinets_per_rack=1,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )


def _build_streams(n_machines: int) -> dict:
    machine = _machine_description()
    return {
        f"m{i}": TelemetryGenerator(
            machine, seed=300 + i, utilization_target=0.4
        ).generate(HISTORY + CHUNK, sensors=["cpu_temp"])
        for i in range(n_machines)
    }


def _per_ingest_seconds(streams: dict, executor: str | None) -> float:
    """Seconds per federated ingest, initial fit outside the timer."""
    registry = MachineRegistry(
        {
            name: FleetMonitor.from_stream(
                stream, policy=RackSharding(), config=CONFIG
            )
            for name, stream in streams.items()
        }
    )
    federated = FederatedMonitor(registry, executor=executor)
    bounds = [
        (HISTORY + lo, HISTORY + hi)
        for lo, hi in chunk_indices(CHUNK, CHUNK // N_INGESTS)
    ]
    try:
        federated.ingest(
            {name: stream.values[:, :HISTORY] for name, stream in streams.items()}
        )
        with Timer() as timer:
            for lo, hi in bounds:
                federated.ingest(
                    {
                        name: stream.values[:, lo:hi]
                        for name, stream in streams.items()
                    }
                )
    finally:
        federated.close()
        registry.close()
    return timer.elapsed / len(bounds)


def test_federated_ingest_scales_near_linearly(benchmark):
    """Per-ingest wall time vs machine count; serial must stay near-linear."""
    streams_by_count = {n: _build_streams(n) for n in MACHINE_COUNTS}

    def sweep() -> dict:
        return {
            backend: {
                n: _per_ingest_seconds(streams_by_count[n], executor)
                for n in MACHINE_COUNTS
            }
            for backend, executor in (("serial", None), ("thread", "thread"))
        }

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)

    report = {
        "experiment": "federation_ingest_scaling",
        "scale": SCALE,
        "machine_counts": list(MACHINE_COUNTS),
        "nodes_per_machine": _machine_description().n_nodes,
        "shards_per_machine": _machine_description().n_racks,
        "history": HISTORY,
        "chunk": CHUNK // N_INGESTS,
        "n_ingests": N_INGESTS,
        "linear_margin": LINEAR_MARGIN,
        "per_ingest_seconds": {
            backend: {str(n): curves[backend][n] for n in MACHINE_COUNTS}
            for backend in curves
        },
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    benchmark.extra_info.update(report)

    base = curves["serial"][MACHINE_COUNTS[0]]
    for n in MACHINE_COUNTS[1:]:
        ratio = curves["serial"][n] / base
        assert ratio <= n * LINEAR_MARGIN, (
            f"serial federated ingest grew {ratio:.2f}x from 1 to {n} machines "
            f"(bound: {n}x * {LINEAR_MARGIN} margin) — fan-out bookkeeping is "
            f"no longer negligible"
        )

"""Streaming-core scaling benchmark: per-chunk ingest cost vs stream length.

The paper's headline (Sec. III-A, Table I, Fig. 9) is that I-mrDMD folds a
new chunk in at a cost *independent of how much history came before*.  The
seed implementation silently lost that property three ways — eager
``(q, T)`` right-factor rotation in the incremental SVD, ``np.hstack``
re-copies of the level-1 grid on every append, and an ``O(T)`` dense
level-1 operator/amplitude rebuild per chunk — so per-chunk
``partial_fit`` time grew roughly linearly with the chunk index.

This benchmark streams the same telemetry-shaped matrix through

* ``projected_lazy`` — the streaming path (default): lazy ``Vh``
  rotation, growth buffers, incrementally maintained ``Y Vh^H`` cross
  product, chunk-window amplitude fit; and
* ``dense_eager_seed`` — ``level1_path="dense"`` + ``lazy_vh=False``,
  which reproduces the seed's per-chunk algorithm (eager rotation, full
  factor materialisation, whole-window amplitude refit),

records every chunk's ``partial_fit`` wall time, and **asserts** the
acceptance criterion: the streaming path's late-chunk cost stays within
2x of its early-chunk cost, while the seed path demonstrably grows.  The
measured curves are written to ``BENCH_core.json`` next to this file
(machine-readable; uploaded as a CI artifact), seeding the repo's
benchmark trajectory for the core.

Run modes: small scale (the default, and what ``--quick`` forces: 40
chunks, CI smoke) or ``REPRO_BENCH_SCALE=paper`` (100 chunks — the
chunk-10 vs chunk-100 acceptance claim; this is the run whose
``BENCH_core.json`` is committed, so regenerate it at paper scale after
a default-scale run overwrites it).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import IncrementalMrDMD, MrDMDConfig
from repro.util import Timer

from conftest import SCALE, scaled

#: Where the machine-readable results land (committed + CI artifact).
RESULT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_core.json")

N_FEATURES = 48
CHUNK = 48
#: Initial fit window; with max_cycles=4 the level-1 stride locks at 1, so
#: the subsampled grid grows 1:1 with the stream (the adversarial case —
#: larger fit windows only make the seed path look better by subsampling).
FIT_WINDOW = 32
N_CHUNKS = scaled(40, 100)
#: Rank is pinned (no SVHT) so the curves measure the asymptotics in T,
#: not the threshold's rank-selection noise on synthetic data.
CONFIG = MrDMDConfig(max_levels=3, max_cycles=4, use_svht=False, svd_rank=8)
#: Acceptance bound: late-chunk median within this factor of early-chunk.
FLAT_WITHIN = 2.0


def _stream(seed: int = 7) -> np.ndarray:
    """Multi-timescale sensor matrix long enough for the full sweep."""
    total = FIT_WINDOW + (N_CHUNKS + 1) * CHUNK
    t = np.arange(total) * 0.5
    gen = np.random.default_rng(seed)
    rows = [
        np.sin(0.02 * t + i) + 0.2 * np.sin(0.3 * t * (1 + 0.01 * i))
        for i in range(N_FEATURES)
    ]
    return np.vstack(rows) + 0.05 * gen.standard_normal((N_FEATURES, total))


def _per_chunk_seconds(data: np.ndarray, *, level1_path: str, lazy_vh: bool) -> list[float]:
    model = IncrementalMrDMD(
        dt=0.5, config=CONFIG, level1_path=level1_path, lazy_vh=lazy_vh
    )
    model.fit(data[:, :FIT_WINDOW])
    times = []
    position = FIT_WINDOW
    for _ in range(N_CHUNKS):
        with Timer() as timer:
            model.partial_fit(data[:, position : position + CHUNK])
        times.append(timer.elapsed)
        position += CHUNK
    return times


def _window_median(times: list[float], center: int, half: int = 2) -> float:
    lo = max(0, center - half)
    return float(np.median(times[lo : center + half + 1]))


def test_streaming_core_flat_ingest(benchmark):
    """Per-chunk ``partial_fit`` must be flat for the streaming path."""
    data = _stream()

    streaming = benchmark.pedantic(
        lambda: _per_chunk_seconds(data, level1_path="projected", lazy_vh=True),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    seed_like = _per_chunk_seconds(data, level1_path="dense", lazy_vh=False)

    early_at, late_at = 10, N_CHUNKS - 3
    report = {
        "experiment": "core_streaming_ingest",
        "scale": SCALE,
        "n_features": N_FEATURES,
        "chunk": CHUNK,
        "n_chunks": N_CHUNKS,
        "fit_window": FIT_WINDOW,
        "level1_stride": 1,
        "flat_within": FLAT_WITHIN,
        "early_chunk_index": early_at,
        "late_chunk_index": late_at,
        "variants": {},
    }
    for name, times in (
        ("projected_lazy", streaming),
        ("dense_eager_seed", seed_like),
    ):
        early = _window_median(times, early_at)
        late = _window_median(times, late_at)
        report["variants"][name] = {
            "per_chunk_seconds": [round(v, 6) for v in times],
            "early_median_seconds": early,
            "late_median_seconds": late,
            "growth_ratio": late / early,
        }
    streaming_ratio = report["variants"]["projected_lazy"]["growth_ratio"]
    seed_ratio = report["variants"]["dense_eager_seed"]["growth_ratio"]
    report["late_chunk_speedup"] = (
        report["variants"]["dense_eager_seed"]["late_median_seconds"]
        / report["variants"]["projected_lazy"]["late_median_seconds"]
    )
    seed_growth_bound = FLAT_WITHIN if SCALE == "paper" else 1.3 * streaming_ratio
    report["seed_growth_bound"] = seed_growth_bound
    report["passed"] = streaming_ratio < FLAT_WITHIN and seed_ratio > seed_growth_bound

    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    benchmark.extra_info.update(
        experiment="core_streaming_ingest",
        streaming_growth_ratio=streaming_ratio,
        seed_growth_ratio=seed_ratio,
        late_chunk_speedup=report["late_chunk_speedup"],
        result_path=RESULT_PATH,
    )

    # The acceptance criterion, asserted: flat streaming ingest...
    assert streaming_ratio < FLAT_WITHIN, (
        f"streaming per-chunk time grew {streaming_ratio:.2f}x from chunk "
        f"{early_at} to chunk {late_at} (bound {FLAT_WITHIN}x) — the ingest "
        f"path re-acquired an O(T) term"
    )
    # ...while the seed-equivalent path grows super-linearly in total cost
    # (its per-chunk cost keeps climbing with the chunk index).  At the
    # short quick sweep the absolute bound would sit too close to the
    # measured ratio for a noisy shared runner, so there the guard is
    # relative: the seed path must grow clearly faster than the flat one.
    assert seed_ratio > seed_growth_bound, (
        f"seed-equivalent path only grew {seed_ratio:.2f}x (bound "
        f"{seed_growth_bound:.2f}x) — benchmark is no longer exercising "
        f"the O(T) regime it documents"
    )
    # And the streaming path must actually win where it matters.
    assert report["late_chunk_speedup"] > 2.0


def test_streaming_and_seed_paths_agree(benchmark):
    """Sanity companion: the two timed variants compute the same model.

    Mode counts per level and reconstructions must agree closely (the
    projected path fits level-1 amplitudes over its contribution window
    rather than the whole timeline, so agreement is numerical, not
    bitwise).  Keeping this next to the timing assertion guards against
    "fast because wrong".
    """
    data = _stream(seed=13)
    horizon = FIT_WINDOW + 10 * CHUNK

    def build(level1_path, lazy_vh):
        model = IncrementalMrDMD(
            dt=0.5, config=CONFIG, level1_path=level1_path, lazy_vh=lazy_vh
        )
        model.fit(data[:, :FIT_WINDOW])
        for lo in range(FIT_WINDOW, horizon, CHUNK):
            model.partial_fit(data[:, lo : lo + CHUNK])
        return model

    streaming = benchmark.pedantic(
        lambda: build("projected", True), rounds=1, iterations=1, warmup_rounds=0
    )
    seed_like = build("dense", False)

    assert len(streaming.tree) == len(seed_like.tree)
    assert streaming.tree.levels() == seed_like.tree.levels()
    reference = data[:, :horizon]
    err_streaming = np.linalg.norm(reference - streaming.reconstruct())
    err_seed = np.linalg.norm(reference - seed_like.reconstruct())
    scale = np.linalg.norm(reference)
    assert abs(err_streaming - err_seed) < 0.05 * scale
    benchmark.extra_info.update(
        experiment="core_streaming_agreement",
        err_streaming=float(err_streaming),
        err_seed=float(err_seed),
        reference_norm=float(scale),
    )

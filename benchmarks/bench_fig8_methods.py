"""Fig. 8: qualitative comparison of PCA / IPCA / UMAP / t-SNE / Aligned-UMAP
vs mrDMD / I-mrDMD on labelled baseline / non-baseline readings.

Paper content: 40 labelled readings (20 baseline, 20 non-baseline) out of the
4,392 processed measurements; the DR baselines produce micro-clusters that
mix the two classes while the mrDMD/I-mrDMD z-scores separate them.

Reproduced claim: on a synthetic dataset with the same structure, the
z-score separation achieved by the DMD family is at least comparable to the
best DR baseline, and every method runs end to end.  Each benchmark times
one method's fit (plus partial fit for the streaming ones).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compare import PCA, AlignedUMAPLite, IncrementalPCA, TSNE, UMAPLite
from repro.core import BaselineModel, BaselineSpec, IncrementalMrDMD, MrDMDConfig, compute_mrdmd
from repro.telemetry import HotNodes, TelemetryGenerator, theta_machine

from conftest import scaled

N_PER_CLASS = 20
N_TIMESTEPS = scaled(800, 2_000)


@pytest.fixture(scope="module")
def labelled_data():
    machine = theta_machine(racks_per_row=1, node_limit=2 * N_PER_CLASS)
    hot_nodes = tuple(range(N_PER_CLASS, 2 * N_PER_CLASS))
    generator = TelemetryGenerator(machine, seed=29, utilization_target=0.3)
    stream = generator.generate(
        N_TIMESTEPS,
        sensors=["cpu_temp"],
        anomalies=[HotNodes(node_indices=hot_nodes, start=N_TIMESTEPS // 4, delta=13.0)],
    )
    labels = np.array([0] * N_PER_CLASS + [1] * N_PER_CLASS)
    return stream, labels


def separation(embedding: np.ndarray, labels: np.ndarray) -> float:
    a, b = embedding[labels == 0], embedding[labels == 1]
    spread = (a.std(axis=0).mean() + b.std(axis=0).mean()) / 2.0
    return float(np.linalg.norm(a.mean(axis=0) - b.mean(axis=0)) / max(spread, 1e-12))


def _record(benchmark, name, sep):
    benchmark.extra_info["method"] = name
    benchmark.extra_info["separation"] = round(sep, 3)


def test_fig8_pca(benchmark, labelled_data):
    stream, labels = labelled_data
    emb = benchmark.pedantic(lambda: PCA().fit_transform(stream.values),
                             rounds=3, iterations=1, warmup_rounds=0)
    _record(benchmark, "PCA", separation(emb, labels))


def test_fig8_ipca(benchmark, labelled_data):
    stream, labels = labelled_data
    half = stream.n_timesteps // 2

    def run():
        model = IncrementalPCA()
        model.fit(stream.values[:, :half])
        model.partial_fit(stream.values[:, half:])
        return model.embedding_

    emb = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    _record(benchmark, "IPCA", separation(emb, labels))


def test_fig8_tsne(benchmark, labelled_data):
    stream, labels = labelled_data
    emb = benchmark.pedantic(
        lambda: TSNE(n_iter=300, perplexity=10, random_state=3).fit_transform(stream.values),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert np.all(np.isfinite(emb))
    _record(benchmark, "TSNE", separation(emb, labels))


def test_fig8_umap(benchmark, labelled_data):
    stream, labels = labelled_data
    emb = benchmark.pedantic(
        lambda: UMAPLite(n_epochs=150, n_neighbors=10, random_state=3).fit_transform(stream.values),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert np.all(np.isfinite(emb))
    _record(benchmark, "UMAP", separation(emb, labels))


def test_fig8_aligned_umap(benchmark, labelled_data):
    stream, labels = labelled_data
    half = stream.n_timesteps // 2

    def run():
        model = AlignedUMAPLite(n_epochs=100, n_neighbors=10, random_state=3)
        model.fit(stream.values[:, :half])
        model.partial_fit(stream.values[:, half:])
        return model.embedding_

    emb = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    _record(benchmark, "Aligned-UMAP", separation(emb, labels))


def _dmd_zscore_embedding(stream, incremental: bool) -> np.ndarray:
    if incremental:
        half = stream.n_timesteps // 2
        model = IncrementalMrDMD(dt=stream.dt, config=MrDMDConfig(max_levels=5), keep_data=True)
        model.fit(stream.values[:, :half])
        model.partial_fit(stream.values[:, half:])
        tree = model.tree
    else:
        tree = compute_mrdmd(stream.values, stream.dt, MrDMDConfig(max_levels=5))
    recon = tree.reconstruct(stream.n_timesteps)
    baseline = BaselineModel.from_data(recon, BaselineSpec(value_range=(46.0, 57.0)))
    z = baseline.score(recon).zscores
    return z[:, None]


def test_fig8_mrdmd_zscores(benchmark, labelled_data):
    stream, labels = labelled_data
    emb = benchmark.pedantic(lambda: _dmd_zscore_embedding(stream, incremental=False),
                             rounds=1, iterations=1, warmup_rounds=0)
    sep = separation(emb, labels)
    assert sep > 1.0
    _record(benchmark, "mrDMD", sep)


def test_fig8_imrdmd_zscores(benchmark, labelled_data):
    stream, labels = labelled_data
    emb = benchmark.pedantic(lambda: _dmd_zscore_embedding(stream, incremental=True),
                             rounds=1, iterations=1, warmup_rounds=0)
    sep = separation(emb, labels)
    assert sep > 1.0
    _record(benchmark, "I-mrDMD", sep)


def test_fig8_dmd_family_separates_at_least_as_well_as_dr_baselines(labelled_data):
    """Non-timed check of the figure's qualitative conclusion."""
    stream, labels = labelled_data
    dmd_sep = separation(_dmd_zscore_embedding(stream, incremental=True), labels)
    pca_sep = separation(PCA().fit_transform(stream.values), labels)
    umap_sep = separation(
        UMAPLite(n_epochs=100, n_neighbors=10, random_state=1).fit_transform(stream.values), labels
    )
    # The DMD-family z-scores separate the classes clearly; they need not beat
    # every baseline on this synthetic example, but must be in the same league.
    assert dmd_sep > 2.0
    assert dmd_sep > 0.3 * max(pca_sep, umap_sep)

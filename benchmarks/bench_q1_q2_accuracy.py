"""Q1 / Q2: mode reliability and online-vs-batch accuracy.

Q1 asks whether the extracted mrDMD modes reliably represent the underlying
dynamics; with the synthetic substrate the ground truth is known, so the
benchmark checks that the decomposition recovers the injected oscillation
frequencies and reconstructs the signal with a small relative error.

Q2 asks how much accuracy the incremental shortcut costs relative to the
batch recomputation.  The paper reports the reconstruction-difference sum
growing by only 10-5000 depending on the dynamics and number of updates;
the reproduced claim is that the incremental reconstruction error stays
within a modest factor of the batch error and grows slowly with the number
of appended chunks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IncrementalMrDMD, MrDMDConfig, compute_mrdmd
from repro.core.spectrum import MrDMDSpectrum

from conftest import scaled


def multiscale_signal(n_sensors: int, n_steps: int, dt: float = 0.5, seed: int = 3):
    gen = np.random.default_rng(seed)
    t = np.arange(n_steps) * dt
    phases = gen.uniform(0, 2 * np.pi, n_sensors)[:, None]
    slow_hz, mid_hz = 0.002, 0.02
    data = (
        50
        + 5 * np.sin(2 * np.pi * slow_hz * t + phases)
        + 2 * np.sin(2 * np.pi * mid_hz * t + 2 * phases)
        + 0.3 * gen.standard_normal((n_sensors, n_steps))
    )
    return data, dt, (slow_hz, mid_hz)


def test_q1_mode_frequency_recovery(benchmark):
    """Q1: the decomposition recovers the injected frequencies."""
    data, dt, (slow_hz, mid_hz) = multiscale_signal(scaled(24, 256), scaled(2_048, 16_384))

    tree = benchmark.pedantic(
        lambda: compute_mrdmd(data, dt, MrDMDConfig(max_levels=6)),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    spectrum = MrDMDSpectrum(tree)
    freqs = spectrum.frequencies
    assert np.any(np.abs(freqs - mid_hz) < 0.5 * mid_hz)
    recon = tree.reconstruct(data.shape[1])
    rel = np.linalg.norm(data - recon) / np.linalg.norm(data)
    assert rel < 0.1
    benchmark.extra_info["relative_error"] = round(float(rel), 4)
    benchmark.extra_info["n_modes"] = tree.total_modes


def test_q2_incremental_vs_batch_gap(benchmark):
    """Q2: accuracy gap between I-mrDMD and batch mrDMD reconstructions."""
    data, dt, _ = multiscale_signal(scaled(24, 256), scaled(3_000, 20_000), seed=9)
    config = MrDMDConfig(max_levels=5)
    initial = data.shape[1] // 3
    chunk = (data.shape[1] - initial) // 4

    def run():
        model = IncrementalMrDMD(dt=dt, config=config, keep_data=True)
        model.fit(data[:, :initial])
        for lo in range(initial, data.shape[1], chunk):
            model.partial_fit(data[:, lo : lo + chunk])
        return model

    model = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    err_incremental = model.reconstruction_error(data)
    batch_tree = compute_mrdmd(data, dt, config)
    err_batch = float(np.linalg.norm(data - batch_tree.reconstruct(data.shape[1])))
    gap = abs(err_incremental - err_batch)

    # The incremental shortcut stays close to batch accuracy (paper: the
    # difference grows only by a small sum relative to the data norm).
    assert err_incremental < 2.0 * err_batch + 1e-9
    assert gap < 0.25 * float(np.linalg.norm(data))
    benchmark.extra_info["incremental_error"] = round(err_incremental, 2)
    benchmark.extra_info["batch_error"] = round(err_batch, 2)
    benchmark.extra_info["gap"] = round(gap, 2)
    benchmark.extra_info["paper_gap_range"] = "10-5000 (scale dependent)"


def test_q2_gap_grows_slowly_with_update_count(benchmark):
    """More appended chunks accumulate only modest additional error."""
    data, dt, _ = multiscale_signal(scaled(16, 128), scaled(2_400, 12_000), seed=11)
    config = MrDMDConfig(max_levels=4)
    initial = 800

    def gap_for(n_chunks: int) -> float:
        chunk = (data.shape[1] - initial) // n_chunks
        model = IncrementalMrDMD(dt=dt, config=config, keep_data=True)
        model.fit(data[:, :initial])
        for lo in range(initial, initial + n_chunks * chunk, chunk):
            model.partial_fit(data[:, lo : lo + chunk])
        used = initial + n_chunks * chunk
        batch = compute_mrdmd(data[:, :used], dt, config)
        err_batch = float(np.linalg.norm(data[:, :used] - batch.reconstruct(used)))
        return abs(model.reconstruction_error(data[:, :used]) - err_batch)

    gaps = benchmark.pedantic(lambda: [gap_for(1), gap_for(4)],
                              rounds=1, iterations=1, warmup_rounds=0)
    norm = float(np.linalg.norm(data))
    assert all(g < 0.25 * norm for g in gaps)
    benchmark.extra_info["gap_1_chunk"] = round(gaps[0], 2)
    benchmark.extra_info["gap_4_chunks"] = round(gaps[1], 2)

"""Ablation benchmarks for the design choices DESIGN.md calls out.

The paper fixes several knobs without ablation (4x-Nyquist subsampling,
``max_cycles=2``, SVHT truncation, 6-9 levels); these benchmarks quantify
what each choice buys on the same synthetic workload so a downstream user
can judge the trade-offs:

* subsampling factor (``nyquist_factor``) — runtime vs reconstruction error;
* number of levels — runtime vs error;
* SVHT on/off — retained modes and error;
* amplitude fitting ("first" snapshot vs full "window" least squares).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig, compute_mrdmd

from conftest import scaled


@pytest.fixture(scope="module")
def ablation_matrix(sc_log_generator):
    return sc_log_generator.generate_matrix(scaled(128, 1000), scaled(4_000, 20_000))


def _error(tree, data) -> float:
    return float(np.linalg.norm(data - tree.reconstruct(data.shape[1])) / np.linalg.norm(data))


@pytest.mark.parametrize("nyquist_factor", [2, 4, 8])
def test_ablation_nyquist_factor(benchmark, ablation_matrix, nyquist_factor):
    """Higher oversampling = less subsampling = slower but (slightly) more accurate."""
    data = ablation_matrix
    config = MrDMDConfig(max_levels=5, nyquist_factor=nyquist_factor)
    tree = benchmark.pedantic(lambda: compute_mrdmd(data, 15.0, config),
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["nyquist_factor"] = nyquist_factor
    benchmark.extra_info["relative_error"] = round(_error(tree, data), 4)
    benchmark.extra_info["total_modes"] = tree.total_modes


@pytest.mark.parametrize("max_levels", [2, 4, 6, 8])
def test_ablation_levels(benchmark, ablation_matrix, max_levels):
    """More levels capture faster dynamics at higher cost (Sec. IV's observation)."""
    data = ablation_matrix
    config = MrDMDConfig(max_levels=max_levels)
    tree = benchmark.pedantic(lambda: compute_mrdmd(data, 15.0, config),
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["max_levels"] = max_levels
    benchmark.extra_info["relative_error"] = round(_error(tree, data), 4)
    benchmark.extra_info["total_modes"] = tree.total_modes


@pytest.mark.parametrize("use_svht", [True, False])
def test_ablation_svht(benchmark, ablation_matrix, use_svht):
    """SVHT rank selection vs full rank: fewer modes for nearly the same error."""
    data = ablation_matrix
    config = MrDMDConfig(max_levels=5, use_svht=use_svht)
    tree = benchmark.pedantic(lambda: compute_mrdmd(data, 15.0, config),
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["use_svht"] = use_svht
    benchmark.extra_info["relative_error"] = round(_error(tree, data), 4)
    benchmark.extra_info["total_modes"] = tree.total_modes


@pytest.mark.parametrize("amplitude_method", ["first", "window"])
def test_ablation_amplitude_method(benchmark, ablation_matrix, amplitude_method):
    """Window-fitted amplitudes vs the classic first-snapshot fit."""
    data = ablation_matrix
    config = MrDMDConfig(max_levels=5, amplitude_method=amplitude_method)
    tree = benchmark.pedantic(lambda: compute_mrdmd(data, 15.0, config),
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["amplitude_method"] = amplitude_method
    benchmark.extra_info["relative_error"] = round(_error(tree, data), 4)


def test_ablation_levels_reduce_error(ablation_matrix):
    """Non-timed check: deeper trees do not reconstruct worse."""
    data = ablation_matrix
    shallow = compute_mrdmd(data, 15.0, MrDMDConfig(max_levels=2))
    deep = compute_mrdmd(data, 15.0, MrDMDConfig(max_levels=6))
    assert _error(deep, data) <= _error(shallow, data) * 1.05

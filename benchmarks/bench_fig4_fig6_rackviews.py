"""Figs. 2, 4 & 6: rack-layout views (node-down hours, case-study z-scores).

Paper content:

* Fig. 2 — the generalizable rack layout showing per-node down-hours on
  Polaris (drop-down/hover interactivity in D3; static SVG here);
* Fig. 4 — case study 1's z-scores on the Theta layout, with correctable-
  memory-error nodes outlined; the finding is that the thermally elevated
  nodes are *not* the ones reporting memory errors;
* Fig. 6 — case study 2's z-scores for the hot and cool 8-hour windows, with
  persistently erroring nodes outlined.

The benchmarks time the z-score mapping + SVG generation and assert the
figure-level findings (hot nodes flagged, error overlay disjoint from the
hot set in case 1, hot window redder than cool window in case 2).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import map_zscores_to_nodes
from repro.core import BaselineModel, BaselineSpec, MrDMDConfig
from repro.hwlog import HardwareEventType
from repro.pipeline import (
    OnlineAnalysisPipeline,
    PipelineConfig,
    build_case_study_1,
    build_case_study_2,
    build_node_down_scenario,
)
from repro.viz import RackLayout, RackView

from conftest import scaled


def test_fig2_node_down_rack_view(benchmark):
    """Fig. 2: render per-node down-hours on the Polaris layout."""
    machine, hwlog = build_node_down_scenario(scale=scaled(0.3, 1.0),
                                              n_timesteps=scaled(5_000, 500_000))
    layout = RackLayout.from_machine(machine)
    view = RackView(layout, title="Polaris node down hours")
    hours = hwlog.downtime_hours(machine.n_nodes, machine.dt_seconds)

    svg = benchmark.pedantic(
        lambda: view.render_svg({i: float(h) for i, h in enumerate(hours)}),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    assert svg.count("<rect") >= machine.n_nodes
    benchmark.extra_info["n_nodes"] = machine.n_nodes
    benchmark.extra_info["total_down_hours"] = round(float(hours.sum()), 1)


@pytest.fixture(scope="module")
def case1_view_inputs():
    scenario = build_case_study_1(scale=scaled(0.05, 1.0),
                                  n_timesteps=scaled(1_000, 2_000),
                                  initial_steps=scaled(500, 1_000))
    config = PipelineConfig(mrdmd=MrDMDConfig(max_levels=6),
                            baseline_range=scenario.baseline_range,
                            frequency_range=(0.0, 60.0))
    pipeline = OnlineAnalysisPipeline.from_stream(scenario.stream, config)
    pipeline.ingest(scenario.initial_block())
    pipeline.ingest(scenario.streaming_block())
    return scenario, pipeline


def test_fig4_case1_rack_view(benchmark, case1_view_inputs):
    """Fig. 4: z-score rack view with memory-error outlines (case study 1)."""
    scenario, pipeline = case1_view_inputs
    layout = RackLayout.from_machine(scenario.machine)
    view = RackView(layout, title="Case study 1")
    memory_nodes = scenario.hwlog.nodes_with(HardwareEventType.CORRECTABLE_MEMORY_ERROR)

    def run():
        node_scores = pipeline.node_zscores()
        svg = view.render_svg(
            node_scores.as_dict(),
            outlined_nodes=[int(n) for n in memory_nodes],
        )
        return node_scores, svg

    node_scores, svg = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    detected_hot = set(int(n) for n in node_scores.hot_nodes())
    injected_hot = set(int(n) for n in scenario.hot_nodes)
    # Paper finding: hot nodes are detected, and they are largely disjoint
    # from the memory-error nodes.
    assert len(detected_hot & injected_hot) / len(injected_hot) >= 0.8
    overlap = len(detected_hot & set(int(n) for n in memory_nodes))
    assert overlap <= 0.5 * max(len(detected_hot), 1)
    assert svg.count("<rect") >= scenario.machine.n_nodes
    benchmark.extra_info["hot_nodes_detected"] = len(detected_hot)
    benchmark.extra_info["memory_error_nodes"] = int(memory_nodes.size)
    benchmark.extra_info["overlap"] = overlap


def test_fig6_case2_window_rack_views(benchmark):
    """Fig. 6: per-window z-score rack views (hot vs cool 8-hour windows)."""
    scenario = build_case_study_2(scale=scaled(0.03, 1.0), n_timesteps=scaled(640, 3_840))
    stream = scenario.stream
    half = scenario.initial_steps
    config = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(5, 7)),
                            baseline_range=scenario.window_baselines[0])
    pipeline = OnlineAnalysisPipeline.from_stream(stream, config)
    pipeline.ingest(stream.values[:, :half])
    pipeline.ingest(stream.values[:, half:])
    recon = pipeline.reconstruction()
    layout = RackLayout.from_machine(scenario.machine)
    view = RackView(layout, title="Case study 2")

    def run():
        fractions = []
        svgs = []
        for window, band in zip(((0, half), (half, stream.n_timesteps)),
                                scenario.window_baselines):
            data = recon[:, window[0]:window[1]]
            model = BaselineModel.from_data(data, BaselineSpec(value_range=band))
            node_scores = map_zscores_to_nodes(model.score(data), stream.node_indices)
            svgs.append(view.render_svg(node_scores.as_dict()))
            fractions.append(float(np.mean(node_scores.zscores > 2.0)))
        return fractions, svgs

    fractions, svgs = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    # The hot window shows far more above-baseline nodes than the cool one.
    assert fractions[0] > fractions[1]
    assert all(svg.count("<rect") >= scenario.machine.n_nodes for svg in svgs)
    benchmark.extra_info["fraction_hot_window_above_2"] = round(fractions[0], 3)
    benchmark.extra_info["fraction_cool_window_above_2"] = round(fractions[1], 3)

"""Service-layer benchmarks: sharded vs single-pipeline ingestion, checkpoints.

The fleet monitor's pitch is operational, not asymptotic: sharding bounds
each decomposition's row count (and lets shards fan out over processes),
and checkpoints make week-scale streams restartable.  These benchmarks
record

* streaming-chunk ingestion throughput for a rack-sharded monitor vs the
  same matrix through one unsharded pipeline (structure mirrors the
  Sec. IV streaming protocol: initial fit outside the timer, one
  incremental chunk inside it);
* checkpoint save and load latency for a monitor mid-stream, plus the
  checkpoint's on-disk size in ``extra_info`` (the paper's
  "terabytes to megabytes" artifact, now for the whole service state).
"""

from __future__ import annotations

import pytest

from repro.core import MrDMDConfig
from repro.pipeline import PipelineConfig
from repro.service import (
    FleetMonitor,
    RackSharding,
    SingleShard,
    load_checkpoint,
    save_checkpoint,
)
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite

from conftest import scaled


HISTORY = scaled(2_000, 20_000)
CHUNK = scaled(400, 4_000)
CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(5, 8)))


@pytest.fixture(scope="module")
def fleet_stream():
    """cpu_temp telemetry for a 256-node, 8-rack machine."""
    machine = MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=8,
        cabinets_per_rack=2,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )
    generator = TelemetryGenerator(machine, seed=211, utilization_target=0.4)
    return generator.generate(HISTORY + CHUNK, sensors=["cpu_temp"])


def _fitted_monitor(stream, policy) -> FleetMonitor:
    monitor = FleetMonitor.from_stream(stream, policy=policy, config=CONFIG)
    monitor.ingest(stream.values[:, :HISTORY])
    return monitor


def test_fleet_sharded_chunk_ingest(benchmark, fleet_stream):
    """Incremental chunk through one pipeline per rack (8 shards)."""
    monitor = _fitted_monitor(fleet_stream, RackSharding())
    benchmark.pedantic(
        lambda: monitor.ingest(fleet_stream.values[:, HISTORY:]),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["experiment"] = "service_fleet_ingest"
    benchmark.extra_info["variant"] = "rack-sharded"
    benchmark.extra_info["n_shards"] = monitor.n_shards
    benchmark.extra_info["n_rows"] = fleet_stream.n_rows
    benchmark.extra_info["chunk"] = CHUNK


def test_fleet_single_pipeline_chunk_ingest(benchmark, fleet_stream):
    """The same chunk through one unsharded pipeline (baseline)."""
    monitor = _fitted_monitor(fleet_stream, SingleShard())
    benchmark.pedantic(
        lambda: monitor.ingest(fleet_stream.values[:, HISTORY:]),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["experiment"] = "service_fleet_ingest"
    benchmark.extra_info["variant"] = "single-pipeline"
    benchmark.extra_info["n_shards"] = 1
    benchmark.extra_info["n_rows"] = fleet_stream.n_rows
    benchmark.extra_info["chunk"] = CHUNK


def test_fleet_checkpoint_save(benchmark, fleet_stream, tmp_path):
    """Full service checkpoint of a mid-stream rack-sharded monitor."""
    monitor = _fitted_monitor(fleet_stream, RackSharding())
    monitor.ingest(fleet_stream.values[:, HISTORY:])

    info = benchmark.pedantic(
        lambda: save_checkpoint(str(tmp_path / "ckpt"), monitor),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["experiment"] = "service_checkpoint"
    benchmark.extra_info["variant"] = "save"
    benchmark.extra_info["checkpoint_bytes"] = info.total_bytes
    benchmark.extra_info["n_shards"] = info.n_shards
    benchmark.extra_info["step"] = info.step


def test_fleet_checkpoint_load(benchmark, fleet_stream, tmp_path):
    """Restore the full service state from disk."""
    monitor = _fitted_monitor(fleet_stream, RackSharding())
    monitor.ingest(fleet_stream.values[:, HISTORY:])
    save_checkpoint(str(tmp_path / "ckpt"), monitor)

    restored = benchmark.pedantic(
        lambda: load_checkpoint(str(tmp_path / "ckpt")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert restored.step == monitor.step
    benchmark.extra_info["experiment"] = "service_checkpoint"
    benchmark.extra_info["variant"] = "load"
    benchmark.extra_info["n_shards"] = restored.n_shards

"""Service-layer benchmarks: sharded vs single-pipeline ingestion, checkpoints.

The fleet monitor's pitch is operational, not asymptotic: sharding bounds
each decomposition's row count (and lets shards fan out over processes),
and checkpoints make week-scale streams restartable.  These benchmarks
record

* streaming-chunk ingestion throughput for a rack-sharded monitor vs the
  same matrix through one unsharded pipeline (structure mirrors the
  Sec. IV streaming protocol: initial fit outside the timer, one
  incremental chunk inside it);
* the persistent shard executor against the per-ingest process pool it
  replaced (which re-spawned workers and re-pickled the *entire* shard
  pipeline state every chunk) and against plain serial fan-out — the
  persistent path must win outright at fleet shard counts;
* windowed rack-view queries (``rack_values(time_range=...)``, expanding
  only the window's modes) against full-timeline reconstruction;
* checkpoint save and load latency for a monitor mid-stream, plus the
  checkpoint's on-disk size in ``extra_info`` (the paper's
  "terabytes to megabytes" artifact, now for the whole service state).
"""

from __future__ import annotations

import pytest

from repro.core import MrDMDConfig
from repro.pipeline import PipelineConfig
from repro.service import (
    FleetMonitor,
    RackSharding,
    SingleShard,
    load_checkpoint,
    save_checkpoint,
)
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite
from repro.util import Timer, chunk_indices

from conftest import scaled


HISTORY = scaled(2_000, 20_000)
CHUNK = scaled(400, 4_000)
CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(5, 8)))


@pytest.fixture(scope="module")
def fleet_stream():
    """cpu_temp telemetry for a 256-node, 8-rack machine."""
    machine = MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=8,
        cabinets_per_rack=2,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )
    generator = TelemetryGenerator(machine, seed=211, utilization_target=0.4)
    return generator.generate(HISTORY + CHUNK, sensors=["cpu_temp"])


def _fitted_monitor(stream, policy) -> FleetMonitor:
    monitor = FleetMonitor.from_stream(stream, policy=policy, config=CONFIG)
    monitor.ingest(stream.values[:, :HISTORY])
    return monitor


def test_fleet_sharded_chunk_ingest(benchmark, fleet_stream):
    """Incremental chunk through one pipeline per rack (8 shards)."""
    monitor = _fitted_monitor(fleet_stream, RackSharding())
    benchmark.pedantic(
        lambda: monitor.ingest(fleet_stream.values[:, HISTORY:]),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["experiment"] = "service_fleet_ingest"
    benchmark.extra_info["variant"] = "rack-sharded"
    benchmark.extra_info["n_shards"] = monitor.n_shards
    benchmark.extra_info["n_rows"] = fleet_stream.n_rows
    benchmark.extra_info["chunk"] = CHUNK


def test_fleet_single_pipeline_chunk_ingest(benchmark, fleet_stream):
    """The same chunk through one unsharded pipeline (baseline)."""
    monitor = _fitted_monitor(fleet_stream, SingleShard())
    benchmark.pedantic(
        lambda: monitor.ingest(fleet_stream.values[:, HISTORY:]),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["experiment"] = "service_fleet_ingest"
    benchmark.extra_info["variant"] = "single-pipeline"
    benchmark.extra_info["n_shards"] = 1
    benchmark.extra_info["n_rows"] = fleet_stream.n_rows
    benchmark.extra_info["chunk"] = CHUNK


def test_fleet_persistent_executor_vs_pool_ingest(benchmark, fleet_stream):
    """Persistent process executor vs per-ingest pool vs serial, same chunks.

    The per-ingest pool respawns its workers *and* round-trips each
    shard's full pipeline state (tree, iSVD, retained data) through pickle
    on every chunk; the persistent executor ships the state once at start
    and then only ``(shard_id, chunk)`` payloads.  With 8 rack shards the
    persistent path must be strictly faster — asserted, not just recorded.
    """
    n_workers = 4
    bounds = [
        (HISTORY + lo, HISTORY + hi) for lo, hi in chunk_indices(CHUNK, CHUNK // 4)
    ]

    serial = _fitted_monitor(fleet_stream, RackSharding())
    with Timer() as serial_timer:
        for lo, hi in bounds:
            serial.ingest(fleet_stream.values[:, lo:hi])

    pooled = _fitted_monitor(fleet_stream, RackSharding())
    with Timer() as pool_timer:
        for lo, hi in bounds:
            pooled.ingest(fleet_stream.values[:, lo:hi], processes=n_workers)

    persistent = FleetMonitor.from_stream(
        fleet_stream, policy=RackSharding(), config=CONFIG,
        executor="process", max_workers=n_workers,
    )
    persistent.ingest(fleet_stream.values[:, :HISTORY])  # fit starts the workers

    def ingest_chunks():
        with Timer() as timer:
            for lo, hi in bounds:
                persistent.ingest(fleet_stream.values[:, lo:hi])
        return timer.elapsed

    executor_seconds = benchmark.pedantic(
        ingest_chunks, rounds=1, iterations=1, warmup_rounds=0
    )
    persistent.close()

    benchmark.extra_info["experiment"] = "service_executor_ingest"
    benchmark.extra_info["variant"] = "persistent-executor"
    benchmark.extra_info["n_shards"] = persistent.n_shards
    benchmark.extra_info["n_workers"] = n_workers
    benchmark.extra_info["n_chunks"] = len(bounds)
    benchmark.extra_info["serial_seconds"] = serial_timer.elapsed
    benchmark.extra_info["per_ingest_pool_seconds"] = pool_timer.elapsed
    benchmark.extra_info["persistent_executor_seconds"] = executor_seconds
    assert executor_seconds < pool_timer.elapsed, (
        f"persistent executor ({executor_seconds:.2f}s) must beat the "
        f"per-ingest pool ({pool_timer.elapsed:.2f}s) at "
        f"{persistent.n_shards} shards"
    )


def test_fleet_windowed_vs_full_rack_values(benchmark, fleet_stream):
    """Recent-window rack view vs full-timeline reconstruction per query.

    ``rack_values(time_range=...)`` expands only the modes overlapping the
    window (5% of the timeline here); the full query reconstructs every
    snapshot.  Caches are cleared between timed calls so both sides pay
    their reconstruction, and the windowed query must win — asserted.
    """
    monitor = _fitted_monitor(fleet_stream, RackSharding())
    monitor.ingest(fleet_stream.values[:, HISTORY:])
    total = monitor.step
    window = (total - total // 20, total)

    def clear_caches():
        for pipeline in monitor.pipelines.values():
            pipeline.clear_caches()

    monitor.rack_values()  # warm-up: fit every shard's baseline

    full_seconds = []
    windowed_seconds = []
    for _ in range(5):
        clear_caches()
        with Timer() as timer:
            monitor.rack_values()
        full_seconds.append(timer.elapsed)
        clear_caches()
        with Timer() as timer:
            monitor.rack_values(time_range=window)
        windowed_seconds.append(timer.elapsed)

    benchmark.pedantic(
        lambda: monitor.rack_values(time_range=window),
        setup=clear_caches, rounds=3, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["experiment"] = "service_windowed_query"
    benchmark.extra_info["variant"] = "windowed-rack-values"
    benchmark.extra_info["timeline"] = total
    benchmark.extra_info["window"] = window[1] - window[0]
    benchmark.extra_info["full_seconds_min"] = min(full_seconds)
    benchmark.extra_info["windowed_seconds_min"] = min(windowed_seconds)
    # The true gap is severalfold (only 5% of the timeline's modes
    # expand); assert with a margin so scheduler noise on a shared CI
    # runner cannot flip a strict comparison of millisecond timings.
    assert min(windowed_seconds) < 0.8 * min(full_seconds), (
        f"windowed query ({min(windowed_seconds):.4f}s) must clearly beat "
        f"full reconstruction ({min(full_seconds):.4f}s) for a "
        f"{window[1] - window[0]}/{total} window"
    )


def test_fleet_checkpoint_save(benchmark, fleet_stream, tmp_path):
    """Full service checkpoint of a mid-stream rack-sharded monitor."""
    monitor = _fitted_monitor(fleet_stream, RackSharding())
    monitor.ingest(fleet_stream.values[:, HISTORY:])

    info = benchmark.pedantic(
        lambda: save_checkpoint(str(tmp_path / "ckpt"), monitor),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["experiment"] = "service_checkpoint"
    benchmark.extra_info["variant"] = "save"
    benchmark.extra_info["checkpoint_bytes"] = info.total_bytes
    benchmark.extra_info["n_shards"] = info.n_shards
    benchmark.extra_info["step"] = info.step


def test_fleet_checkpoint_load(benchmark, fleet_stream, tmp_path):
    """Restore the full service state from disk."""
    monitor = _fitted_monitor(fleet_stream, RackSharding())
    monitor.ingest(fleet_stream.values[:, HISTORY:])
    save_checkpoint(str(tmp_path / "ckpt"), monitor)

    restored = benchmark.pedantic(
        lambda: load_checkpoint(str(tmp_path / "ckpt")),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert restored.step == monitor.step
    benchmark.extra_info["experiment"] = "service_checkpoint"
    benchmark.extra_info["variant"] = "load"
    benchmark.extra_info["n_shards"] = restored.n_shards

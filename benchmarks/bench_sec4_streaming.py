"""Sec. IV text experiments: full recomputation vs incremental update.

Paper protocol and numbers:

* **Environment logs (Theta)** — 4,392 x 50,000 temperature readings already
  processed, then 5,000 new time points arrive; ``max_levels=8``.  Full
  recomputation over 55,000 points: **80.580 s**; incremental addition:
  **14.728 s** (≈5.5x faster).
* **GPU metrics (Polaris)** — 5,824 x 16,329 readings plus 5,825 new points;
  ``max_levels=9``.  Full recomputation: **59.263 s**; incremental:
  **29.945 s** (≈2x faster).

The reproduced claim is the *ratio*: the incremental update must beat the
full recomputation, by a larger factor when the history is long relative to
the appended chunk.  Sizes here are scaled down (see ``conftest.SCALE``).
"""

from __future__ import annotations

import pytest

from repro.core import IncrementalMrDMD, MrDMDConfig, compute_mrdmd

from conftest import scaled


ENV_SHAPE = dict(n_rows=scaled(256, 4392), history=scaled(5_000, 50_000),
                 chunk=scaled(500, 5_000), levels=scaled(6, 8))
GPU_SHAPE = dict(n_rows=scaled(256, 5824), history=scaled(2_000, 16_329),
                 chunk=scaled(700, 5_825), levels=scaled(7, 9))


@pytest.fixture(scope="module")
def env_case(sc_log_generator):
    shape = ENV_SHAPE
    data = sc_log_generator.generate_matrix(shape["n_rows"], shape["history"] + shape["chunk"])
    return data, shape


@pytest.fixture(scope="module")
def gpu_case(gpu_metrics_generator):
    shape = GPU_SHAPE
    data = gpu_metrics_generator.generate_matrix(shape["n_rows"], shape["history"] + shape["chunk"])
    return data, shape


def test_sec4_envlogs_incremental_update(benchmark, env_case):
    """Environment logs: incremental addition of the new chunk (paper: 14.73 s)."""
    data, shape = env_case
    model = IncrementalMrDMD(dt=15.0, config=MrDMDConfig(max_levels=shape["levels"]))
    model.fit(data[:, : shape["history"]])

    benchmark.pedantic(
        lambda: model.partial_fit(data[:, shape["history"] :]),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["paper_seconds"] = 14.728
    benchmark.extra_info["experiment"] = "sec4_envlogs"


def test_sec4_envlogs_full_recompute(benchmark, env_case):
    """Environment logs: mrDMD recomputation over history + chunk (paper: 80.58 s)."""
    data, shape = env_case
    config = MrDMDConfig(max_levels=shape["levels"])
    benchmark.pedantic(
        lambda: compute_mrdmd(data, 15.0, config),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["paper_seconds"] = 80.580
    benchmark.extra_info["experiment"] = "sec4_envlogs"


def test_sec4_gpu_incremental_update(benchmark, gpu_case):
    """GPU metrics: incremental addition (paper: 29.95 s)."""
    data, shape = gpu_case
    model = IncrementalMrDMD(dt=3.0, config=MrDMDConfig(max_levels=shape["levels"]))
    model.fit(data[:, : shape["history"]])
    benchmark.pedantic(
        lambda: model.partial_fit(data[:, shape["history"] :]),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["paper_seconds"] = 29.945
    benchmark.extra_info["experiment"] = "sec4_gpu"


def test_sec4_gpu_full_recompute(benchmark, gpu_case):
    """GPU metrics: full recomputation (paper: 59.26 s)."""
    data, shape = gpu_case
    config = MrDMDConfig(max_levels=shape["levels"])
    benchmark.pedantic(
        lambda: compute_mrdmd(data, 3.0, config),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["paper_seconds"] = 59.263
    benchmark.extra_info["experiment"] = "sec4_gpu"


def test_sec4_incremental_beats_full_recompute(env_case):
    """Non-timed assertion of the headline speed-up direction."""
    from repro.util import Timer

    data, shape = env_case
    config = MrDMDConfig(max_levels=shape["levels"])
    model = IncrementalMrDMD(dt=15.0, config=config)
    model.fit(data[:, : shape["history"]])
    with Timer() as timer:
        model.partial_fit(data[:, shape["history"] :])
    incremental = timer.elapsed
    with Timer() as timer:
        compute_mrdmd(data, 15.0, config)
    full = timer.elapsed
    assert incremental < full

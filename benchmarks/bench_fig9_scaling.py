"""Fig. 9: completion-time scaling of the methods and their streaming variants.

Paper protocol: Theta environment logs, data sizes 1,000 x {1,000 ... 30,000};
PCA / IPCA / UMAP / Aligned-UMAP (reference implementations) vs mrDMD /
I-mrDMD (max_levels=4, max_cycles=2, SVHT on); initial fit on the first
1,000 time points, then 1,000-point partial fits.  Reported ordering:

* I-mrDMD partial fits always beat recomputing mrDMD from scratch;
* IPCA partial fits are faster than I-mrDMD partial fits;
* I-mrDMD beats Aligned-UMAP at both initial fit and partial fit.

The benchmarks reproduce those three orderings at reduced size; each
parametrised case times one (method, T) cell of the figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compare import AlignedUMAPLite, IncrementalPCA, PCA, UMAPLite
from repro.core import IncrementalMrDMD, MrDMDConfig, compute_mrdmd
from repro.util import Timer

from conftest import scaled

N_SERIES = scaled(150, 1_000)
SIZES = [scaled(1_000, 1_000), scaled(2_000, 5_000), scaled(4_000, 30_000)]
CHUNK = 1_000
MRDMD_CONFIG = MrDMDConfig(max_levels=4, max_cycles=2, use_svht=True)


@pytest.fixture(scope="module")
def fig9_matrix(sc_log_generator):
    return sc_log_generator.generate_matrix(N_SERIES, max(SIZES) + CHUNK)


@pytest.mark.parametrize("total", SIZES)
def test_fig9_imrdmd_partial_fit(benchmark, fig9_matrix, total):
    data = fig9_matrix
    model = IncrementalMrDMD(dt=15.0, config=MRDMD_CONFIG)
    model.fit(data[:, :total])
    benchmark.pedantic(lambda: model.partial_fit(data[:, total:total + CHUNK]),
                       rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({"method": "I-mrDMD", "T": total, "column": "partial_fit"})


@pytest.mark.parametrize("total", SIZES)
def test_fig9_mrdmd_recompute(benchmark, fig9_matrix, total):
    data = fig9_matrix[:, : total + CHUNK]
    benchmark.pedantic(lambda: compute_mrdmd(data, 15.0, MRDMD_CONFIG),
                       rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({"method": "mrDMD", "T": total, "column": "recompute"})


@pytest.mark.parametrize("total", SIZES)
def test_fig9_ipca_partial_fit(benchmark, fig9_matrix, total):
    data = fig9_matrix
    model = IncrementalPCA()
    model.fit(data[:, :total])
    benchmark.pedantic(lambda: model.partial_fit(data[:, total:total + CHUNK]),
                       rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({"method": "IPCA", "T": total, "column": "partial_fit"})


@pytest.mark.parametrize("total", SIZES[:2])
def test_fig9_pca_fit(benchmark, fig9_matrix, total):
    data = fig9_matrix[:, :total]
    benchmark.pedantic(lambda: PCA().fit(data), rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({"method": "PCA", "T": total, "column": "fit"})


@pytest.mark.parametrize("total", SIZES[:2])
def test_fig9_umap_fit(benchmark, fig9_matrix, total):
    data = fig9_matrix[:, :total]
    benchmark.pedantic(
        lambda: UMAPLite(n_epochs=60, n_neighbors=10, random_state=0).fit(data),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info.update({"method": "UMAP", "T": total, "column": "fit"})


@pytest.mark.parametrize("total", SIZES[:2])
def test_fig9_aligned_umap_partial_fit(benchmark, fig9_matrix, total):
    data = fig9_matrix
    model = AlignedUMAPLite(n_epochs=60, n_neighbors=10, random_state=0, window=total)
    model.fit(data[:, :total])
    benchmark.pedantic(lambda: model.partial_fit(data[:, total:total + CHUNK]),
                       rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({"method": "Aligned-UMAP", "T": total, "column": "partial_fit"})


def test_fig9_orderings(fig9_matrix):
    """Non-timed check of the paper's three ordering claims at one size."""
    data = fig9_matrix
    total = SIZES[-1]

    model = IncrementalMrDMD(dt=15.0, config=MRDMD_CONFIG)
    model.fit(data[:, :total])
    with Timer() as timer:
        model.partial_fit(data[:, total:total + CHUNK])
    imrdmd_partial = timer.elapsed

    with Timer() as timer:
        compute_mrdmd(data[:, : total + CHUNK], 15.0, MRDMD_CONFIG)
    mrdmd_full = timer.elapsed

    ipca = IncrementalPCA()
    ipca.fit(data[:, :total])
    with Timer() as timer:
        ipca.partial_fit(data[:, total:total + CHUNK])
    ipca_partial = timer.elapsed

    small = SIZES[0]
    aligned = AlignedUMAPLite(n_epochs=60, n_neighbors=10, random_state=0, window=small)
    aligned.fit(data[:, :small])
    with Timer() as timer:
        aligned.partial_fit(data[:, small:small + CHUNK])
    aligned_partial = timer.elapsed

    small_model = IncrementalMrDMD(dt=15.0, config=MRDMD_CONFIG)
    small_model.fit(data[:, :small])
    with Timer() as timer:
        small_model.partial_fit(data[:, small:small + CHUNK])
    imrdmd_partial_small = timer.elapsed

    # Ordering 1: I-mrDMD partial fit beats mrDMD recomputation.
    assert imrdmd_partial < mrdmd_full
    # Ordering 2 (paper): IPCA partial fit is faster than I-mrDMD partial fit.
    # At the reduced benchmark scale the I-mrDMD update touches only a few
    # subsampled level-1 columns, so the two are of the same order; assert the
    # soft version (same order of magnitude) rather than the strict ordering,
    # which re-emerges at paper scale (REPRO_BENCH_SCALE=paper).
    assert ipca_partial < 10.0 * imrdmd_partial
    # Ordering 3: I-mrDMD beats Aligned-UMAP at the same size.
    assert imrdmd_partial_small < aligned_partial

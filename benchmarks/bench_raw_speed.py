"""Raw-speed ingest path: batched kernels, shm transport, deferred levels.

Three mechanisms shave the fleet's per-chunk critical path, and each gets
a measured, gated experiment here:

* **Batched shard kernels** — the serial backend groups same-shape
  per-shard iSVD updates into stacked 3-D GEMMs.  Gate: the batched
  dispatch is no slower than forcing every shard down the plain per-shard
  path (same FLOPs, fewer interpreter/BLAS dispatch round trips).
* **Shared-memory chunk transport** — the process backend ships chunk
  arrays through a slab ring instead of pickling them down the pipe.
  Gate: at 8 rack shards, steady-state ingest through ``transport="shm"``
  beats ``transport="pickle"``; the JSON records rows/sec for both.
* **Deferred deep levels** — ``deep_levels="deferred"`` keeps levels
  2..L off the chunk path (drift/every-N scheduled background refresh).
  Gate: p95 per-chunk ingest latency drops vs inline maintenance.  The
  catch-up cost that moved off the critical path is measured and
  reported too — the work is deferred, not deleted.

Results land in ``BENCH_speed.json`` (machine-readable; uploaded as a CI
artifact).  Quick mode (``--quick`` / default scale) keeps CI honest
without burning minutes; ``REPRO_BENCH_SCALE=paper`` runs the full-size
sweep.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.core.batchops import ShardBatchPlanner
from repro.pipeline import PipelineConfig
from repro.service import FleetMonitor, RackSharding
from repro.telemetry import MachineDescription, TelemetryGenerator, xc40_sensor_suite
from repro.util import Timer, chunk_indices
from repro.util.parallel import ProcessShardExecutor, shm_available

from conftest import SCALE, scaled

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_speed.json"
)

HISTORY = scaled(1_600, 16_000)
CHUNK = scaled(200, 2_000)
N_CHUNKS = scaled(24, 60)
CONFIG = PipelineConfig(mrdmd=MrDMDConfig(max_levels=scaled(4, 6)))


def _report_section(name: str, payload: dict) -> None:
    """Merge one experiment's results into the shared BENCH_speed.json."""
    report = {}
    if os.path.exists(RESULT_PATH):
        with open(RESULT_PATH, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report.setdefault("experiment", "raw_speed_ingest")
    report["scale"] = SCALE
    report[name] = payload
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="module")
def fleet_stream():
    """cpu_temp telemetry for a 256-node, 8-rack machine."""
    machine = MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=8,
        cabinets_per_rack=2,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )
    generator = TelemetryGenerator(machine, seed=307, utilization_target=0.4)
    return generator.generate(HISTORY + N_CHUNKS * CHUNK, sensors=["cpu_temp"])


def _chunk_bounds():
    return [
        (HISTORY + lo, HISTORY + hi)
        for lo, hi in chunk_indices(N_CHUNKS * CHUNK, CHUNK)
    ]


def _fitted_monitor(stream, *, config=CONFIG, executor=None) -> FleetMonitor:
    monitor = FleetMonitor.from_stream(
        stream, policy=RackSharding(), config=config, executor=executor
    )
    monitor.ingest(stream.values[:, :HISTORY])
    return monitor


def _stream_chunks(monitor, stream) -> list[float]:
    """Per-chunk ingest wall times over the steady-state sweep."""
    times = []
    for lo, hi in _chunk_bounds():
        with Timer() as timer:
            monitor.ingest(stream.values[:, lo:hi])
        times.append(timer.elapsed)
    return times


def test_batched_kernels_vs_per_shard_loop(benchmark, fleet_stream):
    """Serial ingest through stacked GEMMs vs the forced per-shard path.

    Both monitors run the identical serial dispatch code; the "unbatched"
    one carries a planner whose ``min_group`` no round can reach, so every
    shard takes the plain ``isvd.update`` fallback.  Same work, same
    results — the stacked kernels must not cost anything, and typically
    win the dispatch overhead back.
    """
    batched = _fitted_monitor(fleet_stream)
    unbatched = _fitted_monitor(fleet_stream)
    unbatched._batch_planner = ShardBatchPlanner(min_group=10**9)

    unbatched_times = _stream_chunks(unbatched, fleet_stream)
    batched_times = benchmark.pedantic(
        lambda: _stream_chunks(batched, fleet_stream),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    batched.close()
    unbatched.close()

    batched_total = float(np.sum(batched_times))
    unbatched_total = float(np.sum(unbatched_times))
    entries = fleet_stream.n_rows * CHUNK * N_CHUNKS
    payload = {
        "n_shards": 8,
        "n_chunks": N_CHUNKS,
        "chunk": CHUNK,
        "batched_seconds": batched_total,
        "unbatched_seconds": unbatched_total,
        "batched_rows_per_sec": entries / batched_total,
        "unbatched_rows_per_sec": entries / unbatched_total,
        "speedup": unbatched_total / batched_total,
    }
    _report_section("batched_kernels", payload)
    benchmark.extra_info.update(experiment="raw_speed_batched", **payload)

    # Gate: batching must never regress the serial path (10% noise head-
    # room for shared CI runners; the parity suite guards correctness).
    assert batched_total <= 1.10 * unbatched_total, (
        f"batched serial ingest ({batched_total:.2f}s) regressed against "
        f"the per-shard loop ({unbatched_total:.2f}s)"
    )


@pytest.mark.skipif(not shm_available(), reason="POSIX shared memory unavailable")
def test_shm_transport_vs_pickle_at_8_shards(benchmark, fleet_stream):
    """Steady-state process-backend ingest: slab ring vs pickled chunks."""
    n_workers = 4

    def run(transport: str) -> float:
        monitor = _fitted_monitor(
            fleet_stream,
            executor=ProcessShardExecutor(
                max_workers=n_workers, transport=transport
            ),
        )
        try:
            return float(np.sum(_stream_chunks(monitor, fleet_stream)))
        finally:
            monitor.close()

    pickle_seconds = run("pickle")
    shm_seconds = benchmark.pedantic(
        lambda: run("shm"), rounds=1, iterations=1, warmup_rounds=0
    )

    entries = fleet_stream.n_rows * CHUNK * N_CHUNKS
    payload = {
        "n_shards": 8,
        "n_workers": n_workers,
        "n_chunks": N_CHUNKS,
        "chunk": CHUNK,
        "shm_seconds": shm_seconds,
        "pickle_seconds": pickle_seconds,
        "shm_rows_per_sec": entries / shm_seconds,
        "pickle_rows_per_sec": entries / pickle_seconds,
        "speedup": pickle_seconds / shm_seconds,
    }
    _report_section("shm_transport", payload)
    benchmark.extra_info.update(experiment="raw_speed_shm", **payload)

    # Gate: shipping descriptors must beat shipping pickled chunk bytes.
    # At the quick scale the per-shard slices are ~50 KiB, so decomposition
    # compute dominates and the transport delta sits inside scheduler noise
    # on a shared runner — there the gate is "no regression"; the strict
    # "shm wins" claim is asserted at paper scale, where chunks are 10x.
    bound = 1.0 if SCALE == "paper" else 1.10
    assert shm_seconds < bound * pickle_seconds, (
        f"shm transport ({shm_seconds:.2f}s) vs pickle "
        f"({pickle_seconds:.2f}s) breached the {bound:.2f}x bound for "
        f"{N_CHUNKS} chunks x {CHUNK} cols over 8 shards"
    )


def test_deferred_deep_levels_cut_p95_ingest_latency(benchmark, fleet_stream):
    """Per-chunk ingest latency, inline vs deferred deep maintenance.

    Deferred mode answers each chunk after the level-1 update only
    (drift detection stays current); levels 2..L queue for background
    refresh.  The p95 chunk latency must drop.  The deferred backlog's
    catch-up cost is measured too and reported alongside — deferring
    moves work off the critical path, it does not erase it.
    """
    inline = _fitted_monitor(fleet_stream)
    inline_times = _stream_chunks(inline, fleet_stream)
    inline.close()

    deferred_config = PipelineConfig(
        mrdmd=CONFIG.mrdmd, deep_levels="deferred", deep_refresh_every=0
    )
    deferred = _fitted_monitor(fleet_stream, config=deferred_config)
    deferred_times = benchmark.pedantic(
        lambda: _stream_chunks(deferred, fleet_stream),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    with Timer() as catch_up:
        deferred.refresh_deep_levels()
    deferred.close()

    inline_p95 = float(np.percentile(inline_times, 95))
    deferred_p95 = float(np.percentile(deferred_times, 95))
    payload = {
        "n_shards": 8,
        "n_chunks": N_CHUNKS,
        "chunk": CHUNK,
        "inline_p95_seconds": inline_p95,
        "deferred_p95_seconds": deferred_p95,
        "inline_total_seconds": float(np.sum(inline_times)),
        "deferred_total_seconds": float(np.sum(deferred_times)),
        "deferred_catch_up_seconds": catch_up.elapsed,
        "p95_speedup": inline_p95 / deferred_p95,
    }
    _report_section("deferred_deep_levels", payload)
    benchmark.extra_info.update(experiment="raw_speed_deferred", **payload)

    # Gate: the latency-critical path must get visibly shorter.
    assert deferred_p95 < inline_p95, (
        f"deferred p95 chunk latency ({deferred_p95 * 1e3:.1f}ms) must "
        f"beat inline ({inline_p95 * 1e3:.1f}ms)"
    )

"""Figs. 3 & 5 (case study 1): reconstruction quality and the mrDMD spectrum.

Paper protocol: 871 nodes used by two projects, 1,000 snapshots for the
initial mrDMD fit (12.49 s), a 1,000-snapshot incremental update (~7.6 s),
6 levels, spectrum restricted to 0-60 Hz.  Reported results: the
reconstruction is visibly denoised (Fig. 3) with a Frobenius error of
3958.58, and the spectrum concentrates its amplitude at low frequencies
(Fig. 5).

Reproduced claims: the initial fit and incremental update complete, the
reconstruction is smoother than the raw data (positive noise-reduction
ratio) with a small relative error, and the spectrum's dominant frequency is
in the slow band.  The Frobenius number itself scales with problem size, so
the benchmark reports it in ``extra_info`` rather than asserting a value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MrDMDConfig
from repro.core.reconstruction import evaluate_reconstruction
from repro.pipeline import OnlineAnalysisPipeline, PipelineConfig, build_case_study_1

from conftest import scaled


@pytest.fixture(scope="module")
def case1():
    return build_case_study_1(
        scale=scaled(0.05, 1.0),
        n_timesteps=scaled(1_000, 2_000),
        initial_steps=scaled(500, 1_000),
    )


@pytest.fixture(scope="module")
def case1_pipeline(case1):
    config = PipelineConfig(
        mrdmd=MrDMDConfig(max_levels=6),
        baseline_range=case1.baseline_range,
        frequency_range=(0.0, 60.0),
    )
    pipeline = OnlineAnalysisPipeline.from_stream(case1.stream, config)
    pipeline.ingest(case1.initial_block())
    pipeline.ingest(case1.streaming_block())
    return pipeline


def test_fig3_initial_fit(benchmark, case1):
    """Initial mrDMD fit of case study 1 (paper: 12.49 s at full scale)."""
    config = PipelineConfig(mrdmd=MrDMDConfig(max_levels=6), baseline_range=case1.baseline_range)

    def run():
        pipeline = OnlineAnalysisPipeline.from_stream(case1.stream, config)
        pipeline.ingest(case1.initial_block())

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["paper_seconds"] = 12.49


def test_fig3_incremental_update(benchmark, case1):
    """Incremental update of case study 1 (paper: ~7.6 s at full scale)."""
    config = PipelineConfig(mrdmd=MrDMDConfig(max_levels=6), baseline_range=case1.baseline_range)
    pipeline = OnlineAnalysisPipeline.from_stream(case1.stream, config)
    pipeline.ingest(case1.initial_block())
    chunk = case1.streaming_block()

    benchmark.pedantic(lambda: pipeline.ingest(chunk), rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["paper_seconds"] = 7.6


def test_fig3_reconstruction_quality(benchmark, case1, case1_pipeline):
    """Fig. 3's claim: the I-mrDMD reconstruction removes high-frequency noise."""
    def run():
        return evaluate_reconstruction(
            case1_pipeline.model.tree,
            case1.stream.values,
            frequency_range=(0.0, 60.0),
        )

    report = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert report.noise_reduction > 0.2
    assert report.relative < 0.1
    benchmark.extra_info["frobenius_error"] = round(report.frobenius, 2)
    benchmark.extra_info["paper_frobenius_full_scale"] = 3958.58
    benchmark.extra_info["noise_reduction"] = round(report.noise_reduction, 3)


def test_fig5_spectrum_generation(benchmark, case1_pipeline):
    """Fig. 5: computing the (0-60 Hz filtered) mrDMD spectrum."""
    spectrum = benchmark.pedantic(
        lambda: case1_pipeline.spectrum(label="case 1"),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    assert spectrum.n_modes > 0
    # Case-study sampling is 15 s, so every resolvable frequency is far below
    # 60 Hz and the amplitude mass sits at the slow end of the axis.
    assert spectrum.dominant_frequency() < 0.05
    benchmark.extra_info["n_modes"] = spectrum.n_modes
    benchmark.extra_info["dominant_frequency_hz"] = float(spectrum.dominant_frequency())
    benchmark.extra_info["centroid_frequency_hz"] = float(spectrum.centroid_frequency())

"""Setup shim.

The container this reproduction targets has no network access and no
``wheel`` package, so PEP 517 editable installs (which build an editable
wheel) fail.  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``python setup.py develop``) fall back to
the legacy editable path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
